//! Umbrella crate re-exporting the GGS workspace.
pub use ggs_apps as apps;
pub use ggs_core as core;
pub use ggs_graph as graph;
pub use ggs_model as model;
pub use ggs_sim as sim;
