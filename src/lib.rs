//! Umbrella crate re-exporting the GGS workspace.
//!
//! Most code should `use gpu_graph_spec::prelude::*;` and work with the
//! types re-exported there; the per-crate modules remain available for
//! everything else.

#![forbid(unsafe_code)]

pub use ggs_apps as apps;
pub use ggs_core as core;
pub use ggs_graph as graph;
pub use ggs_model as model;
pub use ggs_sim as sim;
pub use ggs_trace as trace;

/// One-stop imports for the common experiment workflow.
///
/// # Example
///
/// ```
/// use gpu_graph_spec::prelude::*;
///
/// let graph = GraphBuilder::new(512)
///     .edges((0..511).map(|i| (i, i + 1)))
///     .symmetric(true)
///     .try_build()?;
/// let spec = ExperimentSpec::builder().scale(0.05).build()?;
/// let config: SystemConfig = "SGR".parse()?;
/// let stats = run_workload_traced(AppKind::Pr, &graph, config, &spec, Tracer::off())?;
/// assert!(stats.total_cycles() > 0);
/// # Ok::<(), GgsError>(())
/// ```
pub mod prelude {
    pub use ggs_apps::{AppKind, Workload};
    pub use ggs_core::error::GgsError;
    pub use ggs_core::experiment::{
        run_workload, run_workload_profiled, run_workload_profiled_traced, run_workload_traced,
        ExperimentSpec, ExperimentSpecBuilder,
    };
    pub use ggs_core::study::{ConfigSet, Study, WorkloadReport};
    pub use ggs_core::sweep::{baseline_config, figure5_configs, WorkloadSweep};
    pub use ggs_graph::synth::{GraphPreset, SynthConfig};
    pub use ggs_graph::{Csr, GraphBuilder, GraphError};
    pub use ggs_model::{predict_full, predict_partial, GraphProfile, SystemConfig};
    pub use ggs_sim::{
        ExecStats, HwConfig, SimBudget, Simulation, SimulationBuilder, StallClass, SystemParams,
    };
    pub use ggs_trace::{
        ChromeTraceSink, JsonlSink, MetricsRegistry, NoopSink, TraceEvent, TraceSink, Tracer,
    };
}
