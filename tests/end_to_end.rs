//! Cross-crate integration: graph generation → app trace generation →
//! simulation → model prediction, exercised through the public API the
//! way a downstream user would.

use ggs_apps::AppKind;
use ggs_core::experiment::{run_workload, ExperimentSpec};
use ggs_core::sweep::{baseline_config, figure5_configs, WorkloadSweep};
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_graph::GraphBuilder;
use ggs_model::{predict_full, GraphProfile, SystemConfig};

const SCALE: f64 = 0.02;

fn preset_graph(p: GraphPreset) -> ggs_graph::Csr {
    SynthConfig::preset(p).scale(SCALE).generate()
}

#[test]
fn full_pipeline_on_one_workload() {
    let graph = preset_graph(GraphPreset::Raj);
    let spec = ExperimentSpec::at_scale(SCALE);
    let profile = GraphProfile::measure(&graph, &spec.metric_params());
    let algo = AppKind::Sssp.algo_profile();
    let predicted = predict_full(&algo, &profile);
    // The prediction must be runnable directly.
    let stats = run_workload(AppKind::Sssp, &graph, predicted, &spec);
    assert!(stats.total_cycles() > 0);
    assert!(stats.kernels > 0);
}

#[test]
fn sweep_covers_every_figure5_config() {
    let graph = preset_graph(GraphPreset::Dct);
    let spec = ExperimentSpec::at_scale(SCALE);
    for app in AppKind::ALL {
        let configs = figure5_configs(app);
        let sweep = WorkloadSweep::run(app, "DCT", &graph, &configs, &spec);
        assert_eq!(sweep.results.len(), configs.len());
        let baseline = baseline_config(app);
        let norm = sweep.normalized_to(baseline);
        let base = norm
            .iter()
            .find(|(c, _)| *c == baseline)
            .expect("baseline present");
        assert!((base.1 - 1.0).abs() < 1e-12);
        // Best is no slower than any swept configuration.
        let best = sweep.best().stats.total_cycles();
        for r in &sweep.results {
            assert!(r.stats.total_cycles() >= best);
        }
    }
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let graph = preset_graph(GraphPreset::Wng);
    let spec = ExperimentSpec::at_scale(SCALE);
    let cfg: SystemConfig = "SGR".parse().expect("valid config");
    let a = run_workload(AppKind::Pr, &graph, cfg, &spec);
    let b = run_workload(AppKind::Pr, &graph, cfg, &spec);
    assert_eq!(a, b);
}

#[test]
fn custom_graphs_work_through_the_same_api() {
    // A user-provided graph (not a preset) drives everything the same
    // way.
    let graph = GraphBuilder::new(2048)
        .edges((0..2047).map(|i| (i, i + 1)))
        .edges(
            (0..2048)
                .map(|i| (i, (i * 97) % 2048))
                .filter(|&(a, b)| a != b),
        )
        .symmetric(true)
        .build();
    let spec = ExperimentSpec::at_scale(SCALE);
    let profile = GraphProfile::measure(&graph, &spec.metric_params());
    for app in AppKind::ALL {
        let cfg = predict_full(&app.algo_profile(), &profile);
        // CC's dynamic prediction is D*, static apps get T*/S*.
        let stats = run_workload(app, &graph, cfg, &spec);
        assert!(stats.total_cycles() > 0, "{app} failed");
    }
}

#[test]
fn stall_classes_cover_all_cycles() {
    let graph = preset_graph(GraphPreset::Eml);
    let spec = ExperimentSpec::at_scale(SCALE);
    for code in ["TG0", "SG1", "SGR", "SD1", "SDR"] {
        let cfg: SystemConfig = code.parse().expect("valid");
        let stats = run_workload(AppKind::Pr, &graph, cfg, &spec);
        assert_eq!(
            stats.breakdown.total(),
            stats.total_cycles() * spec.params.num_sms as u64,
            "{code}: every SM-cycle must be classified exactly once"
        );
    }
}
