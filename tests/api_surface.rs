//! Contract tests for the fallible public API surface: every
//! configuration code the paper's Figures 5–6 use round-trips through
//! `FromStr`, and malformed input is reported as a typed error — never
//! a panic.

use gpu_graph_spec::prelude::*;

/// The nine configuration codes shown in Figure 5 (five static bars,
/// four dynamic bars for CC).
const FIGURE5_CODES: [&str; 9] = [
    "TG0", "SG1", "SGR", "SD1", "SDR", // static workloads
    "DG1", "DGR", "DD1", "DDR", // CC
];

#[test]
fn figure5_codes_round_trip_through_fromstr() {
    for code in FIGURE5_CODES {
        let parsed: SystemConfig = code
            .parse()
            .unwrap_or_else(|e| panic!("{code} must parse: {e}"));
        assert_eq!(parsed.code(), code, "round-trip mismatch for {code}");
        // And through the unified error type.
        let via_ggs: Result<SystemConfig, GgsError> =
            code.parse::<SystemConfig>().map_err(GgsError::from);
        assert_eq!(via_ggs.unwrap().code(), code);
    }
}

#[test]
fn bad_config_codes_yield_errors_not_panics() {
    for bad in ["", "X", "SG", "SGX", "TGRR", "ZZ9", "S G R", "🦀🦀🦀"] {
        let err: GgsError = match bad.parse::<SystemConfig>() {
            Ok(cfg) => panic!("{bad:?} unexpectedly parsed as {cfg}"),
            Err(e) => e.into(),
        };
        // The error is printable and identifies itself as a config
        // parse failure.
        assert!(matches!(err, GgsError::Config(_)));
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn bad_inputs_surface_as_typed_errors_across_the_api() {
    // Application mnemonics.
    assert!("PAGE_RANK".parse::<AppKind>().is_err());
    assert!("PR".parse::<AppKind>().is_ok());
    // Graph presets.
    assert!("XYZ".parse::<GraphPreset>().is_err());
    // Experiment specs.
    assert!(ExperimentSpec::builder().scale(-1.0).build().is_err());
    assert!(ExperimentSpec::try_at_scale(f64::INFINITY).is_err());
    // System parameters.
    assert!(SystemParams::builder().line_bytes(48).build().is_err());
    assert!(SystemParams::builder().build().is_ok());
    // Graph construction.
    assert!(GraphBuilder::new(4).edge(0, 9).try_build().is_err());
}

#[test]
fn prelude_covers_the_experiment_workflow() {
    // Compile-time check that the prelude exports compose: build →
    // predict → simulate, all through `?`-able APIs.
    fn workflow() -> Result<u64, GgsError> {
        let graph = GraphBuilder::new(256)
            .edges((0..255).map(|i| (i, i + 1)))
            .symmetric(true)
            .try_build()?;
        let spec = ExperimentSpec::builder().scale(0.02).build()?;
        let profile = GraphProfile::measure(&graph, &spec.metric_params());
        let config = predict_full(&AppKind::Pr.algo_profile(), &profile);
        let stats = run_workload_traced(AppKind::Pr, &graph, config, &spec, Tracer::off())?;
        Ok(stats.total_cycles())
    }
    assert!(workflow().unwrap() > 0);
}
