//! Qualitative claims from the paper's evaluation (§VI), checked at a
//! reduced scale. These are the *shape* claims the reproduction must
//! preserve; the full-magnitude comparison lives in EXPERIMENTS.md and
//! the `repro` harness.

use ggs_apps::AppKind;
use ggs_core::experiment::{run_workload, ExperimentSpec};
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::SystemConfig;

const SCALE: f64 = 0.05;

fn cycles(app: AppKind, preset: GraphPreset, code: &str) -> u64 {
    cycles_at(SCALE, app, preset, code)
}

fn cycles_at(scale: f64, app: AppKind, preset: GraphPreset, code: &str) -> u64 {
    let graph = SynthConfig::preset(preset).scale(scale).generate();
    let spec = ExperimentSpec::at_scale(scale);
    let cfg: SystemConfig = code.parse().expect("valid config");
    run_workload(app, &graph, cfg, &spec).total_cycles()
}

/// §IV-A4 / Figure 5: Connected Components (dynamic traversal, racy
/// value-returning accesses) strongly prefers DeNovo — DD1 is far ahead
/// of the DG1 baseline.
#[test]
fn cc_strongly_prefers_denovo() {
    for preset in [GraphPreset::Dct, GraphPreset::Raj] {
        let dg1 = cycles(AppKind::Cc, preset, "DG1");
        let dd1 = cycles(AppKind::Cc, preset, "DD1");
        assert!(
            (dd1 as f64) < 0.7 * dg1 as f64,
            "{preset}: DD1 {dd1} should be well under DG1 {dg1}"
        );
    }
}

/// §IV-A4: relaxation cannot help CC — its racy accesses return values
/// that drive control flow, so DGR ≈ DG1.
#[test]
fn cc_gains_nothing_from_relaxation() {
    let dg1 = cycles(AppKind::Cc, GraphPreset::Dct, "DG1") as f64;
    let dgr = cycles(AppKind::Cc, GraphPreset::Dct, "DGR") as f64;
    assert!((dgr - dg1).abs() / dg1 < 0.02, "DGR {dgr} vs DG1 {dg1}");
}

/// §VI: DRFrlx's MLP pays off most on imbalanced inputs — on EML
/// (imbalance 1.0), push under DRFrlx is much faster than under DRF1.
#[test]
fn drfrlx_hides_imbalance_on_eml() {
    for app in [AppKind::Pr, AppKind::Sssp] {
        let sg1 = cycles(app, GraphPreset::Eml, "SG1");
        let sgr = cycles(app, GraphPreset::Eml, "SGR");
        assert!(
            (sgr as f64) < 0.8 * sg1 as f64,
            "{app}: SGR {sgr} should be well under SG1 {sg1}"
        );
    }
}

/// §VI: DRF0 push is uniformly poor (every atomic pays a full
/// invalidate + flush + blocking round trip) — the reason Figure 5
/// omits it.
#[test]
fn drf0_push_is_uniformly_poor() {
    // Scale 0.15 rather than the file-wide 0.05: since cache set counts
    // round *down* to a power of two (capacity must never exceed the
    // configured budget), tiny scales leave a degenerate few-set L1
    // where DRF0's per-atomic self-invalidation is nearly free and bank
    // contention noise dominates the DRF0/DRF1 gap. From 0.15 up the
    // gap points the paper's way and widens with scale (SG0/SG1 on OLS:
    // 1.015x at 0.15, 1.034x at 0.2, 1.084x at 0.25).
    for preset in [GraphPreset::Dct, GraphPreset::Ols] {
        let sg0 = cycles_at(0.15, AppKind::Pr, preset, "SG0");
        let sg1 = cycles_at(0.15, AppKind::Pr, preset, "SG1");
        assert!(sg0 > sg1, "{preset}: SG0 {sg0} must exceed SG1 {sg1}");
    }
}

/// §VI (Figure 5 caption): pull uses no fine-grained atomics, so its
/// execution time is exactly insensitive to the consistency model.
#[test]
fn pull_is_insensitive_to_consistency() {
    let tg0 = cycles(AppKind::Mis, GraphPreset::Dct, "TG0");
    let tg1 = cycles(AppKind::Mis, GraphPreset::Dct, "TG1");
    let tgr = cycles(AppKind::Mis, GraphPreset::Dct, "TGR");
    assert_eq!(tg0, tg1);
    assert_eq!(tg0, tgr);
}

/// Table V / §VI: SSSP (source control and information) always prefers
/// push — the frontier predicate elides entire inner loops.
#[test]
fn sssp_prefers_push_on_every_input() {
    for preset in GraphPreset::ALL {
        let tg0 = cycles(AppKind::Sssp, preset, "TG0");
        let sgr = cycles(AppKind::Sssp, preset, "SGR");
        assert!(
            sgr < tg0,
            "{preset}: push SGR {sgr} should beat pull TG0 {tg0}"
        );
    }
}

/// §VI interdependence: on RAJ (high reuse + high imbalance), DeNovo
/// beats GPU coherence for push under DRFrlx (atomics hit owned L1
/// lines), while on EML (no locality, hub contention) GPU coherence
/// wins (ownership would ping-pong).
#[test]
fn coherence_choice_depends_on_input() {
    let raj_sgr = cycles(AppKind::Pr, GraphPreset::Raj, "SGR");
    let raj_sdr = cycles(AppKind::Pr, GraphPreset::Raj, "SDR");
    assert!(
        raj_sdr < raj_sgr,
        "RAJ: SDR {raj_sdr} should beat SGR {raj_sgr}"
    );
    let eml_sgr = cycles(AppKind::Pr, GraphPreset::Eml, "SGR");
    let eml_sdr = cycles(AppKind::Pr, GraphPreset::Eml, "SDR");
    assert!(
        eml_sgr < eml_sdr,
        "EML: SGR {eml_sgr} should beat SDR {eml_sdr}"
    );
}
