//! Golden-file test for the ggs-trace event schema: the JSONL and
//! Chrome trace-event encodings of every event type are pinned so a
//! schema change is a deliberate, reviewed act (update
//! `tests/golden/trace_schema.txt` when extending the schema).
//!
//! The workload is deterministic (fixed synthetic-generator seed, fixed
//! scale), but the *timing values* inside events are not pinned — only
//! the per-event-type key sets and the category vocabulary, which is
//! what downstream consumers (Perfetto, scripts over JSONL) depend on.

use std::collections::{BTreeMap, BTreeSet};

use ggs_core::json::{self, Value};
use gpu_graph_spec::prelude::*;

const SCALE: f64 = 0.02;

/// Runs two PR configurations chosen to exercise every event type:
/// `SG0` (GPU coherence, DRF0 — acquire/release fences at every
/// atomic) and `SDR` (DeNovo — ownership registration), plus a
/// metrics-registry phase span.
fn emit_all_events(sink: &dyn TraceSink) {
    let graph = SynthConfig::preset(GraphPreset::Ols)
        .scale(SCALE)
        .generate();
    let spec = ExperimentSpec::builder().scale(SCALE).build().unwrap();
    let tracer = Tracer::new(sink, 50);
    for code in ["SG0", "SDR"] {
        let config: SystemConfig = code.parse().unwrap();
        run_workload_traced(AppKind::Pr, &graph, config, &spec, tracer).unwrap();
    }
    let metrics = MetricsRegistry::new();
    drop(metrics.phase("golden_phase"));
    metrics.emit_phases(sink);
    // Cell-lifecycle events come from the fault-tolerant study runner
    // (docs/robustness.md), not from a single traced workload; pin
    // their schema by emitting one of each directly.
    sink.emit(&TraceEvent::CellStart {
        app: "PR".into(),
        graph: "OLS".into(),
        config: "SG0".into(),
        start_us: 1,
    });
    sink.emit(&TraceEvent::CellFinish {
        app: "PR".into(),
        graph: "OLS".into(),
        config: "SG0".into(),
        status: "ok",
        attempts: 1,
        start_us: 1,
        dur_us: 2,
    });
    // Result-store events likewise come from the study runner's store
    // integration and from compaction (ggs_core::store); pin their
    // schema the same way.
    sink.emit(&TraceEvent::StoreHit {
        key: "PR/OLS/SG0".into(),
        at_us: 3,
    });
    sink.emit(&TraceEvent::StoreMiss {
        key: "PR/OLS/SDR".into(),
        at_us: 4,
    });
    sink.emit(&TraceEvent::StoreEvict {
        records: 2,
        bytes: 256,
        at_us: 5,
    });
    sink.emit(&TraceEvent::StoreCorruption {
        offset: 16,
        bytes: 44,
        at_us: 6,
    });
    // Sweep-level reuse events come from the study runner's shared
    // graph builds and trace cache (docs/performance.md, "Sweep-level
    // reuse"); pin their schema the same way.
    sink.emit(&TraceEvent::GraphBuild {
        graph: "OLS".into(),
        vertices: 1024,
        edges: 16384,
        at_us: 7,
    });
    sink.emit(&TraceEvent::TraceCacheMiss {
        key: "PR/OLS/push/256".into(),
        at_us: 8,
    });
    sink.emit(&TraceEvent::TraceCacheHit {
        key: "PR/OLS/push/256".into(),
        at_us: 9,
    });
    sink.emit(&TraceEvent::TraceCacheEvict {
        streams: 1,
        bytes: 65536,
        at_us: 10,
    });
}

fn sorted_keys(v: &Value) -> Vec<String> {
    match v {
        Value::Object(map) => map.keys().cloned().collect(),
        _ => panic!("expected a JSON object, got {v:?}"),
    }
}

#[test]
fn jsonl_schema_matches_golden_file() {
    let sink = JsonlSink::new(Vec::new());
    emit_all_events(&sink);
    let text = String::from_utf8(sink.into_inner()).unwrap();

    let mut keys_by_type: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut cat_by_type: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        let v = json::parse(line).expect("every JSONL line is valid JSON");
        let ty = v.get("type").and_then(Value::as_str).unwrap().to_owned();
        let cat = v.get("cat").and_then(Value::as_str).unwrap().to_owned();
        let keys = sorted_keys(&v);
        if let Some(prev) = keys_by_type.get(&ty) {
            assert_eq!(prev, &keys, "inconsistent keys within type {ty}");
        }
        keys_by_type.insert(ty.clone(), keys);
        cat_by_type.insert(ty, cat);
    }

    let mut rendered = String::new();
    for (ty, keys) in &keys_by_type {
        rendered.push_str(&format!("{ty} [{}]: {}\n", cat_by_type[ty], keys.join(",")));
    }
    let cats: BTreeSet<&String> = cat_by_type.values().collect();
    rendered.push_str(&format!(
        "categories: {}\n",
        cats.iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(",")
    ));

    let golden = include_str!("golden/trace_schema.txt");
    assert_eq!(
        rendered, golden,
        "trace schema drifted from tests/golden/trace_schema.txt;\n\
         if the change is intentional, update the golden file to:\n{rendered}"
    );

    // The acceptance vocabulary must always be present.
    for cat in ["kernel", "stall", "cache", "noc"] {
        assert!(
            cats.iter().any(|c| c.as_str() == cat),
            "missing category {cat}"
        );
    }
}

#[test]
fn chrome_trace_is_valid_json_with_all_categories() {
    let sink = ChromeTraceSink::new(Vec::new());
    emit_all_events(&sink);
    sink.finish().unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();

    let root = json::parse(&text).expect("chrome trace is one valid JSON document");
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 100, "expected a dense trace");

    let mut cats = BTreeSet::new();
    let mut phs = BTreeSet::new();
    for e in events {
        // Every event carries the mandatory Chrome trace-event fields.
        for key in ["name", "ph", "ts", "pid", "tid", "cat"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
        cats.insert(e.get("cat").and_then(Value::as_str).unwrap().to_owned());
        phs.insert(e.get("ph").and_then(Value::as_str).unwrap().to_owned());
    }
    for cat in ["kernel", "iter", "stall", "cache", "noc", "sync", "phase"] {
        assert!(cats.contains(cat), "missing category {cat} in {cats:?}");
    }
    // Duration pairs, counters, complete events, and instants all used.
    for ph in ["B", "E", "C", "X", "i"] {
        assert!(phs.contains(ph), "missing phase type {ph} in {phs:?}");
    }
}

#[test]
fn kernel_begin_end_events_are_balanced() {
    let sink = JsonlSink::new(Vec::new());
    emit_all_events(&sink);
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let begins = text.lines().filter(|l| l.contains("kernel_begin")).count();
    let ends = text.lines().filter(|l| l.contains("kernel_end")).count();
    assert_eq!(begins, ends);
    assert!(begins > 0);
}
