//! Golden-file test pinning the full `ExecStats` of one simulated cell
//! per (direction x coherence x consistency) combination.
//!
//! The memory-hierarchy hot path is performance-tuned under a
//! bit-identical-stats contract: any refactor of `ggs-sim`'s caches,
//! ownership tracking, or queues must leave every counter and cycle
//! count in this file unchanged. A diff here means simulated *behavior*
//! changed, which must be a deliberate, reviewed act — regenerate with
//!
//! ```text
//! GGS_REGEN_GOLDEN=1 cargo test --test golden_stats
//! ```
//!
//! and explain the change in the commit. The workload is fully
//! deterministic: fixed synthetic-graph seed, fixed scale, and a
//! simulator with no randomness.

use std::fmt::Write as _;

use gpu_graph_spec::prelude::*;

const SCALE: f64 = 0.05;

/// PR is a static app (Pull `T*` / Push `S*` directions); CC is the
/// dynamic app covering PushPull (`D*`). Together the first 18 cells
/// span every paper-grid (direction, coherence, consistency)
/// combination. The `H*` cells pin the frontier-adaptive hybrid
/// extension for both frontier apps: the realized per-kernel push/pull
/// schedule is a pure function of the graph, so these are as
/// deterministic as the static cells.
const CELLS: [(AppKind, &str); 26] = [
    (AppKind::Pr, "TG0"),
    (AppKind::Pr, "TG1"),
    (AppKind::Pr, "TGR"),
    (AppKind::Pr, "TD0"),
    (AppKind::Pr, "TD1"),
    (AppKind::Pr, "TDR"),
    (AppKind::Pr, "SG0"),
    (AppKind::Pr, "SG1"),
    (AppKind::Pr, "SGR"),
    (AppKind::Pr, "SD0"),
    (AppKind::Pr, "SD1"),
    (AppKind::Pr, "SDR"),
    (AppKind::Cc, "DG0"),
    (AppKind::Cc, "DG1"),
    (AppKind::Cc, "DGR"),
    (AppKind::Cc, "DD0"),
    (AppKind::Cc, "DD1"),
    (AppKind::Cc, "DDR"),
    (AppKind::Bfs, "HG1"),
    (AppKind::Bfs, "HGR"),
    (AppKind::Bfs, "HD1"),
    (AppKind::Bfs, "HDR"),
    (AppKind::Sssp, "HG1"),
    (AppKind::Sssp, "HGR"),
    (AppKind::Sssp, "HD1"),
    (AppKind::Sssp, "HDR"),
];

fn render_cell(app: AppKind, code: &str, s: &ExecStats) -> String {
    let mut out = String::new();
    writeln!(out, "{app} {code}").unwrap();
    writeln!(
        out,
        "  total_cycles={} kernels={}",
        s.total_cycles, s.kernels
    )
    .unwrap();
    writeln!(out, "  breakdown: {}", s.breakdown).unwrap();
    let m = &s.mem;
    writeln!(
        out,
        "  l1: hits={} misses={} atomics={}",
        m.l1_hits, m.l1_misses, m.l1_atomics
    )
    .unwrap();
    writeln!(
        out,
        "  l2: hits={} misses={} atomics={}",
        m.l2_hits, m.l2_misses, m.l2_atomics
    )
    .unwrap();
    writeln!(
        out,
        "  ownership: registrations={} remote_transfers={}",
        m.registrations, m.remote_transfers
    )
    .unwrap();
    writeln!(
        out,
        "  writes: write_throughs={} invalidations={}",
        m.write_throughs, m.invalidations
    )
    .unwrap();
    writeln!(
        out,
        "  stalls: mshr={} store_buffer={}",
        m.mshr_stalls, m.store_buffer_stalls
    )
    .unwrap();
    writeln!(
        out,
        "  noc: line_transfers={} control_messages={}",
        m.noc_line_transfers, m.noc_control_messages
    )
    .unwrap();
    out
}

fn render_all() -> String {
    let graph = SynthConfig::preset(GraphPreset::Ols)
        .scale(SCALE)
        .generate();
    let spec = ExperimentSpec::builder().scale(SCALE).build().unwrap();
    let mut out =
        String::from("# Golden ExecStats (OLS preset, scale 0.05) — ggs-sim behavior pin\n");
    for (app, code) in CELLS {
        let config: SystemConfig = code.parse().unwrap();
        let stats = run_workload_traced(app, &graph, config, &spec, Tracer::off()).unwrap();
        out.push_str(&render_cell(app, code, &stats));
    }
    out
}

#[test]
fn exec_stats_match_golden_file() {
    let rendered = render_all();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sim_stats.txt");
    if std::env::var_os("GGS_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_default();
    assert_eq!(
        rendered, golden,
        "simulated ExecStats drifted from tests/golden/sim_stats.txt.\n\
         If (and only if) a behavior change was intended, regenerate with\n\
         GGS_REGEN_GOLDEN=1 cargo test --test golden_stats"
    );
}
