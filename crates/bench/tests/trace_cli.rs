//! End-to-end test of the `repro trace` subcommand: the emitted file
//! must be valid Chrome trace-event JSON with the full category
//! vocabulary.

use ggs_core::json::{self, Value};

fn repro() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn trace_subcommand_writes_chrome_trace() {
    let out = std::env::temp_dir().join("ggs_repro_trace_cli.json");
    let _ = std::fs::remove_file(&out);
    let status = repro()
        .args([
            "trace",
            "bfs",
            "rmat10",
            "SDR",
            "--scale",
            "1.0",
            "--trace-stride",
            "200",
            "--trace-out",
        ])
        .arg(&out)
        .status()
        .expect("repro binary runs");
    assert!(status.success(), "repro trace exited with {status}");

    let text = std::fs::read_to_string(&out).expect("trace file written");
    let root = json::parse(&text).expect("trace is valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let cats: std::collections::BTreeSet<&str> = events
        .iter()
        .filter_map(|e| e.get("cat").and_then(Value::as_str))
        .collect();
    for cat in ["kernel", "stall", "cache", "noc"] {
        assert!(cats.contains(cat), "missing category {cat} in {cats:?}");
    }
    let _ = std::fs::remove_file(&out);
}

#[test]
fn trace_subcommand_rejects_bad_operands() {
    for args in [
        vec!["trace"],
        vec!["trace", "bfs", "rmat10"],
        vec!["trace", "nosuchapp", "rmat10", "SDR"],
        vec!["trace", "bfs", "nosuchgraph", "SDR"],
        vec!["trace", "bfs", "rmat10", "XYZ"],
        vec!["trace", "bfs", "rmat99", "SDR"],
    ] {
        let out = repro().args(&args).output().expect("repro binary runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected usage error for {args:?}, got {:?}\nstderr: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
