//! End-to-end tests of the `repro` binary's CLI (the cheap, static
//! sections; the simulation-study sections are covered by the library
//! tests and the paper-claims integration suite).

use std::process::Command;

fn repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn table1_lists_all_three_dimensions() {
    let out = repro(&["table1"]);
    for needle in [
        "Push vs. Pull",
        "Coherence",
        "Consistency",
        "DeNovo (D)",
        "DRFrlx (R)",
    ] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
}

#[test]
fn table2_reproduces_all_class_codes() {
    // Tiny scale keeps this fast; volume classes are scale-invariant by
    // construction, and reuse/imbalance presets are robust down to a few
    // thousand vertices.
    let out = repro(&["--scale", "0.125", "table2"]);
    for row in ["AMZ", "DCT", "EML", "OLS", "RAJ", "WNG"] {
        assert!(out.contains(row), "missing row {row}");
    }
    for class in ["HML", "MMM", "HLH", "MHL", "LHH", "MLL"] {
        assert!(out.contains(class), "missing class {class} in:\n{out}");
    }
}

#[test]
fn table3_matches_the_paper() {
    let out = repro(&["table3"]);
    assert!(out.contains("CC"));
    assert!(out.contains("Dynamic"));
    // SSSP row: Source control and information.
    let sssp = out.lines().find(|l| l.contains("SSSP")).expect("SSSP row");
    assert_eq!(sssp.matches("Source").count(), 2, "{sssp}");
}

#[test]
fn table5_matches_the_paper_cell_for_cell() {
    let out = repro(&["--scale", "0.125", "table5"]);
    let row = |g: &str| {
        out.lines()
            .find(|l| l.starts_with(g))
            .unwrap_or_else(|| panic!("row {g} missing:\n{out}"))
            .to_owned()
    };
    assert_eq!(
        row("OLS").split_whitespace().collect::<Vec<_>>(),
        ["OLS", "SDR", "SDR", "TG0", "TG0", "SDR", "DD1"]
    );
    assert_eq!(
        row("RAJ").split_whitespace().collect::<Vec<_>>(),
        ["RAJ", "SDR", "SDR", "SDR", "SDR", "SDR", "DD1"]
    );
    for g in ["AMZ", "DCT", "EML", "WNG"] {
        assert_eq!(
            row(g).split_whitespace().collect::<Vec<_>>(),
            [g, "SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]
        );
    }
}

#[test]
fn help_and_bad_flags() {
    let out = repro(&["--help"]);
    assert!(out.contains("usage"));
    let bad = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale"])
        .output()
        .expect("runs");
    assert!(!bad.status.success(), "missing --scale value must fail");
}

#[test]
fn study_isolates_injected_faults_and_resumes_from_its_journal() {
    let journal = std::env::temp_dir().join(format!("ggs-cli-study-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let journal = journal.to_str().expect("utf8 temp path");

    // An injected panic must not take the study down: exit 0, the cell
    // reported, everything else completed and checkpointed.
    let out = repro(&[
        "study",
        "--scale",
        "0.004",
        "--threads",
        "8",
        "--journal",
        journal,
        "--inject-fault",
        "PR/AMZ/SGR",
    ]);
    assert!(out.contains("FAILED  PR/AMZ/SGR"), "{out}");
    assert!(
        out.contains("study: 174 cells") && out.contains("173 ok, 1 failed, 0 timeout"),
        "{out}"
    );
    // The degraded Figure 5 still renders, minus the failed bar.
    assert!(out.contains("Figure 5"), "{out}");

    // Resuming re-runs only the missing cell.
    let out = repro(&[
        "study",
        "--scale",
        "0.004",
        "--threads",
        "8",
        "--resume",
        journal,
    ]);
    assert!(
        out.contains("1 ok, 0 failed, 0 timeout, 173 skipped"),
        "{out}"
    );
    let _ = std::fs::remove_file(journal);
}

#[test]
fn check_certifies_every_workload_clean() {
    // Small scale keeps the full static + dynamic sweep fast; the
    // contracts are scale-invariant. `--all` adds the extended app set.
    let out = repro(&["--scale", "0.02", "check", "--all"]);
    assert!(
        out.contains("all contracts certified, all protocol invariants hold"),
        "{out}"
    );
    // Every app appears in the dynamic grid, both directions for the
    // static apps, and no hardware point failed.
    for app in ["PR", "SSSP", "MIS", "CLR", "BC", "CC", "BFS"] {
        assert!(out.contains(app), "missing {app} in:\n{out}");
    }
    assert!(out.contains("pull") && out.contains("push") && out.contains("push+pull"));
    assert!(!out.contains("FAIL") && !out.contains("VIOLATION"), "{out}");
    // The exit gate really is wired: a violation-free run exits 0 (the
    // `repro` helper asserts success), and the DRF0 section shows the
    // fence accounting that DRF1/DRFrlx sections must not.
    let drf0_push = out
        .lines()
        .find(|l| l.contains("PR   push      DRF0"))
        .expect("DRF0 PR push line");
    assert!(!drf0_push.contains("(0 fence"), "{drf0_push}");
}
