//! Table V bench: the specialization decision tree (full design space
//! and the §IV-B partial variant) over the whole 36-workload matrix.
//!
//! The model is meant to be cheap enough to run per kernel launch in an
//! adaptive system; this bench quantifies that claim.

use criterion::{criterion_group, criterion_main, Criterion};

use ggs_apps::AppKind;
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{predict_full, predict_partial, GraphProfile, MetricParams};

fn bench_predictions(c: &mut Criterion) {
    let scale = 0.03;
    let params = MetricParams::default().scaled_caches(scale);
    let profiles: Vec<GraphProfile> = GraphPreset::ALL
        .into_iter()
        .map(|p| {
            let g = SynthConfig::preset(p).scale(scale).generate();
            GraphProfile::measure(&g, &params)
        })
        .collect();
    let algos: Vec<_> = AppKind::ALL.iter().map(|a| a.algo_profile()).collect();

    c.bench_function("table5/predict_full_36_workloads", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in &profiles {
                for a in &algos {
                    acc = acc.wrapping_add(predict_full(a, p).code().len() as u32);
                }
            }
            acc
        })
    });

    c.bench_function("table5/predict_partial_36_workloads", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in &profiles {
                for a in &algos {
                    acc = acc.wrapping_add(predict_partial(a, p).code().len() as u32);
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_predictions);
criterion_main!(benches);
