//! Figure 6 bench: the sweep + best-selection machinery that produces
//! the SGR-vs-BEST-vs-PRED comparison, on one workload.
//!
//! The `repro fig6` binary prints the figure's rows from the full study;
//! this bench tracks the cost of producing one row.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use ggs_apps::AppKind;
use ggs_core::experiment::ExperimentSpec;
use ggs_core::sweep::{baseline_config, figure5_configs, WorkloadSweep};
use ggs_graph::synth::{GraphPreset, SynthConfig};

fn bench_sweep_row(c: &mut Criterion) {
    let scale = 0.02;
    let spec = ExperimentSpec::at_scale(scale);
    let graph = SynthConfig::preset(GraphPreset::Raj)
        .scale(scale)
        .generate();
    let configs = figure5_configs(AppKind::Mis);

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("sweep_MIS-RAJ_and_pick_best", |b| {
        b.iter(|| {
            let sweep = WorkloadSweep::run(AppKind::Mis, "RAJ", &graph, &configs, &spec);
            let best = sweep.best().config;
            let norm = sweep.normalized_to(baseline_config(AppKind::Mis));
            (best, norm.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_row);
criterion_main!(benches);
