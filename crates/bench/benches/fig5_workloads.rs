//! Figure 5 bench: one simulated workload per (application ×
//! configuration) group, at a reduced scale.
//!
//! The `repro fig5` binary regenerates the figure's full data (36
//! workloads × 5 configurations with normalized stall breakdowns);
//! this bench tracks the simulation cost of each bar family so
//! regressions in the simulator's hot paths show up immediately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use ggs_apps::AppKind;
use ggs_core::experiment::{run_workload, ExperimentSpec};
use ggs_core::sweep::figure5_configs;
use ggs_graph::synth::{GraphPreset, SynthConfig};

const SCALE: f64 = 0.02;

fn bench_workloads(c: &mut Criterion) {
    let spec = ExperimentSpec::at_scale(SCALE);
    // DCT is the smallest medium-class input: representative and quick.
    let graph = SynthConfig::preset(GraphPreset::Dct)
        .scale(SCALE)
        .generate()
        .with_hashed_weights(64);

    for app in AppKind::ALL {
        let mut group = c.benchmark_group(format!("fig5/{app}-DCT"));
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(500));
        group.measurement_time(Duration::from_secs(2));
        for config in figure5_configs(app) {
            group.bench_with_input(
                BenchmarkId::from_parameter(config.code()),
                &config,
                |b, &config| b.iter(|| run_workload(app, &graph, config, &spec)),
            );
        }
        group.finish();
    }
}

fn bench_imbalanced_input(c: &mut Criterion) {
    // EML is the imbalance showcase (Figure 5's biggest DRF1-vs-DRFrlx
    // gaps); track the push pair explicitly.
    let spec = ExperimentSpec::at_scale(SCALE);
    let graph = SynthConfig::preset(GraphPreset::Eml)
        .scale(SCALE)
        .generate();
    let mut group = c.benchmark_group("fig5/PR-EML");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for code in ["SG1", "SGR"] {
        let config = code.parse().expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(code), &config, |b, &config| {
            b.iter(|| run_workload(AppKind::Pr, &graph, config, &spec))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_imbalanced_input);
criterion_main!(benches);
