//! Ablation microbenches on the simulator's design dimensions: each
//! bench isolates one mechanism (coalescing, atomic overlap, ownership
//! reuse vs. ping-pong, acquire invalidation) with a synthetic kernel,
//! so the cost attribution behind Figure 5 can be inspected directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};
use ggs_sim::engine::Simulation;
use ggs_sim::params::SystemParams;
use ggs_sim::trace::{KernelTrace, MicroOp};

fn params() -> SystemParams {
    SystemParams::default().scaled_caches(0.125)
}

/// Dense (coalesced) vs. scattered loads: the push-vs-pull access
/// pattern difference in isolation.
fn bench_coalescing(c: &mut Criterion) {
    let dense = KernelTrace::new(
        (0..4096u64)
            .map(|t| (0..8).map(|k| MicroOp::load((t * 8 + k) * 4)).collect())
            .collect(),
        256,
    );
    let scattered = KernelTrace::new(
        (0..4096u64)
            .map(|t| {
                (0..8)
                    .map(|k| MicroOp::load(((t * 8 + k) * 1103 % 32768) * 64))
                    .collect()
            })
            .collect(),
        256,
    );
    let mut group = c.benchmark_group("ablation/coalescing");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (name, kernel) in [("dense", &dense), ("scattered", &scattered)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), kernel, |b, k| {
            b.iter(|| {
                let hw = HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf0);
                let mut sim = Simulation::new(params(), hw);
                sim.run_kernel(k);
                sim.finish().total_cycles()
            })
        });
    }
    group.finish();
}

/// Atomic ordering ablation: the same atomic-heavy kernel under each
/// consistency model (the DRF0 → DRF1 → DRFrlx ladder of Table I).
fn bench_consistency_ladder(c: &mut Criterion) {
    let kernel = KernelTrace::new(
        (0..4096u64)
            .map(|t| {
                (0..8)
                    .map(|k| MicroOp::atomic(((t + k * 997) % 16384) * 4))
                    .collect()
            })
            .collect(),
        256,
    );
    let mut group = c.benchmark_group("ablation/consistency");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for model in ConsistencyModel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(model), &model, |b, &model| {
            b.iter(|| {
                let hw = HwConfig::new(CoherenceKind::Gpu, model);
                let mut sim = Simulation::new(params(), hw);
                sim.run_kernel(&kernel);
                sim.finish().total_cycles()
            })
        });
    }
    group.finish();
}

/// Ownership reuse vs. ping-pong: DeNovo with thread-block-local atomic
/// targets (each SM keeps ownership) versus fully-shared hot words
/// (ownership bounces between SMs).
fn bench_ownership(c: &mut Criterion) {
    let local = KernelTrace::new(
        (0..4096u64)
            .map(|t| {
                let block_base = (t / 256) * 256;
                (0..8)
                    .map(|k| MicroOp::atomic((block_base + (t + k * 37) % 256) * 4))
                    .collect()
            })
            .collect(),
        256,
    );
    let shared = KernelTrace::new(
        (0..4096u64)
            .map(|t| {
                (0..8)
                    .map(|k| MicroOp::atomic(((t + k) % 64) * 4))
                    .collect()
            })
            .collect(),
        256,
    );
    let mut group = c.benchmark_group("ablation/denovo_ownership");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (name, kernel) in [("block_local", &local), ("hot_shared", &shared)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), kernel, |b, k| {
            b.iter(|| {
                let hw = HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::DrfRlx);
                let mut sim = Simulation::new(params(), hw);
                sim.run_kernel(k);
                sim.finish().total_cycles()
            })
        });
    }
    group.finish();
}

/// Warp-scheduler ablation: greedy-then-oldest vs. round robin on a
/// store-locality kernel (the design choice GPGPU-Sim exposes).
fn bench_scheduler(c: &mut Criterion) {
    use ggs_sim::params::SchedulerPolicy;

    let threads: Vec<Vec<MicroOp>> = (0..2048u64)
        .map(|t| (0..16).map(|k| MicroOp::store((t * 16 + k) * 4)).collect())
        .collect();
    let kernel = KernelTrace::new(threads, 256);
    let mut group = c.benchmark_group("ablation/scheduler");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for policy in [
        SchedulerPolicy::GreedyThenOldest,
        SchedulerPolicy::RoundRobin,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let p = SystemParams {
                        scheduler: policy,
                        ..params()
                    };
                    let hw = HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::Drf1);
                    let mut sim = Simulation::new(p, hw);
                    sim.run_kernel(&kernel);
                    sim.finish().total_cycles()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coalescing,
    bench_consistency_ladder,
    bench_ownership,
    bench_scheduler
);
criterion_main!(benches);
