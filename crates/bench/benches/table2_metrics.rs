//! Table II bench: synthetic input generation and taxonomy metric
//! computation (volume, reuse, imbalance) for each of the six presets.
//!
//! The `repro table2` binary prints the actual table; this bench tracks
//! the cost of regenerating it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{GraphProfile, MetricParams};

const SCALE: f64 = 0.03;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/generate");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for preset in GraphPreset::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(preset),
            &preset,
            |b, &preset| {
                let cfg = SynthConfig::preset(preset).scale(SCALE);
                b.iter(|| cfg.generate());
            },
        );
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let params = MetricParams::default().scaled_caches(SCALE);
    let mut group = c.benchmark_group("table2/measure");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for preset in GraphPreset::ALL {
        let graph = SynthConfig::preset(preset).scale(SCALE).generate();
        group.bench_with_input(BenchmarkId::from_parameter(preset), &graph, |b, graph| {
            b.iter(|| GraphProfile::measure(graph, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_metrics);
criterion_main!(benches);
