//! `repro` — regenerates every table and figure of *Specializing
//! Coherence, Consistency, and Push/Pull for GPU Graph Analytics*
//! (ISPASS 2020).
//!
//! Usage:
//!
//! ```text
//! repro [--scale S] [--threads N] [--json PATH] [--svg PATH] [--all]
//!       [--trace-out PATH] [--trace-stride N]
//!       [table1|table2|table3|table4|table5|fig5|fig6|partial|flexible|traffic|gsi|summary|check|hybrid|all]
//! repro trace <app> <graph> <config> [--scale S] [--trace-out PATH] [--trace-stride N]
//! repro study [--scale S] [--threads N] [--json PATH]
//!             [--journal PATH] [--resume PATH] [--deadline-ms N]
//!             [--max-kernels N] [--max-sim-cycles N] [--retries N]
//!             [--inject-fault APP/GRAPH/CFG[=panic|hang|io]]...
//! repro bench [--iters N] [--smoke] [--out PATH]
//!             [--baseline PATH] [--threshold PCT] [--tier NAME]...
//! repro verify [--cell CODE]... [--smoke] [--mutations]
//! ```
//!
//! `repro bench` times the fixed ten-cell benchmark slice, the
//! twelve-configuration grid sweep through a shared trace cache, and
//! the `rmat14`/`rmat16`/`rmat18` scale tiers (see `ggs_bench::bench`
//! and docs/performance.md), then writes the `BENCH_sim.json`
//! perf-trajectory point. `--tier NAME` (repeatable) restricts the
//! tier arm. `--smoke` is the CI mode: best of five iterations per
//! cell, compared against `--baseline` with a throughput-regression
//! threshold (`--threshold`, default 25%; CI passes 20); the process
//! exits 1 when the gate fails. Simulated cycles, tier behavior, and
//! peak RSS are part of the baseline, so behavior drift and memory
//! blow-ups are also caught.
//!
//! `repro study` runs the 36-workload study through the fault-tolerant
//! runner (see docs/robustness.md): per-cell panic isolation, watchdog
//! budgets (`--max-kernels`, `--max-sim-cycles`, `--deadline-ms`),
//! bounded retries for transient I/O errors, and checkpoint/resume via
//! an append-only JSONL journal (`--journal` to write, `--resume` to
//! skip already-completed cells). Failed or timed-out cells are
//! reported individually and the partial Figure 5/6 output is rendered
//! from the surviving cells; the exit status is 0 as long as the study
//! itself completes. `--inject-fault` sabotages named cells for testing
//! the machinery.
//!
//! `repro trace` simulates one (application, graph, configuration)
//! point with full instrumentation and writes the event stream to
//! `--trace-out` (default `trace.json`): Chrome trace-event JSON
//! loadable in Perfetto / `chrome://tracing`, or JSON-lines if the path
//! ends in `.jsonl`. `<graph>` is a preset mnemonic (`OLS`, `EML`, …)
//! or `rmat<N>` for a synthetic power-law graph with 2^N vertices
//! (scaled by `--scale`). `--trace-stride` (default 1000 cycles)
//! bounds the per-SM stall-sample and ownership-event rate. When
//! `--trace-out` is given alongside study sections (`fig5`, `summary`,
//! …), a per-phase wall-clock profile of the study itself is written
//! instead (see docs/observability.md).
//!
//! Default scale is 0.125 (inputs and cache capacities scaled together,
//! preserving every Table II class — see DESIGN.md). The expensive
//! simulation study (fig5/fig6/summary/table5-empirical) is run once and
//! shared between sections.
//!
//! `repro verify` is the static companion to `check`: it model-checks
//! the coherence × consistency grid exhaustively (see `ggs-verify` and
//! the "Model checking" section of docs/checking.md). Every reachable
//! state of a small bounded configuration is enumerated per cell and the
//! protocol invariants are checked on each; the litmus suite enumerates
//! every interleaving of the classic message-passing / store-buffering /
//! CoRR / RMW-chain / release-acquire programs against per-model
//! forbidden and required outcome sets. `--cell G0` (repeatable)
//! restricts the grid, `--smoke` uses the smaller CI bounds, and
//! `--mutations` runs the self-test: ≥ 6 seeded protocol bugs that must
//! each be caught with a minimized, bridge-replayed counterexample.
//! Exits 1 on any violation, missed mutation, or truncated run.
//!
//! The `check` section is the CI gate (see `docs/checking.md`): it runs
//! the `ggs-check` static DRF/Table I certification over every
//! application × direction × consistency model, then the dynamic
//! coherence-protocol invariant checker over the coherence × consistency
//! hardware grid, and exits nonzero if anything is violated. `--all`
//! additionally certifies the extended application set (BFS). It is not
//! part of the `all` section (which reproduces the paper's artifacts).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use ggs_apps::AppKind;
use ggs_bench::render::TextTable;
use ggs_core::study::{ConfigSet, Study};
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::taxonomy::Traversal;
use ggs_model::{predict_full, GraphProfile};
use ggs_sim::SystemParams;

fn main() {
    let mut scale = 0.125f64;
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut json_path: Option<String> = None;
    let mut svg_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_stride = 1000u64;
    let mut check_extended = false;
    let mut journal_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_kernels: Option<u64> = None;
    let mut max_sim_cycles: Option<u64> = None;
    let mut retries: Option<u32> = None;
    let mut inject_faults: Vec<String> = Vec::new();
    let mut store_path: Option<String> = None;
    let mut store_compact = false;
    let mut lease_ttl_ms: Option<u64> = None;
    let mut inject_store_faults: Vec<String> = Vec::new();
    let mut bench_iters = 3u32;
    let mut bench_smoke = false;
    let mut bench_out: Option<String> = None;
    let mut bench_baseline: Option<String> = None;
    let mut bench_threshold = 25.0f64;
    let mut bench_tiers: Vec<String> = Vec::new();
    let mut verify_cells: Vec<String> = Vec::new();
    let mut verify_mutations = false;
    let mut sections: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .unwrap_or_else(|| die("--scale needs a positive number"));
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
            }
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--svg" => {
                svg_path = Some(args.next().unwrap_or_else(|| die("--svg needs a path")));
            }
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                );
            }
            "--trace-stride" => {
                trace_stride = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &u64| v > 0)
                    .unwrap_or_else(|| die("--trace-stride needs a positive integer"));
            }
            "--all" => {
                check_extended = true;
            }
            "--journal" => {
                journal_path = Some(args.next().unwrap_or_else(|| die("--journal needs a path")));
            }
            "--resume" => {
                resume_path = Some(args.next().unwrap_or_else(|| die("--resume needs a path")));
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &u64| v > 0)
                        .unwrap_or_else(|| die("--deadline-ms needs a positive integer")),
                );
            }
            "--max-kernels" => {
                max_kernels = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &u64| v > 0)
                        .unwrap_or_else(|| die("--max-kernels needs a positive integer")),
                );
            }
            "--max-sim-cycles" => {
                max_sim_cycles = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &u64| v > 0)
                        .unwrap_or_else(|| die("--max-sim-cycles needs a positive integer")),
                );
            }
            "--retries" => {
                retries = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &u32| v > 0)
                        .unwrap_or_else(|| die("--retries needs a positive integer")),
                );
            }
            "--iters" => {
                bench_iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &u32| v > 0)
                    .unwrap_or_else(|| die("--iters needs a positive integer"));
            }
            "--smoke" => {
                bench_smoke = true;
            }
            "--out" => {
                bench_out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--baseline" => {
                bench_baseline = Some(
                    args.next()
                        .unwrap_or_else(|| die("--baseline needs a path")),
                );
            }
            "--threshold" => {
                bench_threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .unwrap_or_else(|| die("--threshold needs a positive percentage"));
            }
            "--tier" => {
                bench_tiers.push(
                    args.next()
                        .unwrap_or_else(|| die("--tier needs a tier name like rmat16")),
                );
            }
            "--cell" => {
                verify_cells.push(
                    args.next()
                        .unwrap_or_else(|| die("--cell needs a config code like G0 or DR")),
                );
            }
            "--mutations" => {
                verify_mutations = true;
            }
            "--inject-fault" => {
                inject_faults.push(
                    args.next().unwrap_or_else(|| {
                        die("--inject-fault needs APP/GRAPH/CFG[=panic|hang|io]")
                    }),
                );
            }
            "--store" => {
                store_path = Some(args.next().unwrap_or_else(|| die("--store needs a path")));
            }
            "--store-compact" => {
                store_compact = true;
            }
            "--lease-ttl-ms" => {
                lease_ttl_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &u64| v > 0)
                        .unwrap_or_else(|| die("--lease-ttl-ms needs a positive integer")),
                );
            }
            "--inject-store-fault" => {
                inject_store_faults.push(args.next().unwrap_or_else(|| {
                    die("--inject-store-fault needs torn[:BYTES], short, crc, or lock")
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale S] [--threads N] [--json PATH] [--svg PATH] [--all] \
                     [--trace-out PATH] [--trace-stride N] \
                     [table1|table2|table3|table4|table5|fig5|fig6|partial|flexible|traffic|gsi|summary|check|hybrid|all]..."
                );
                println!(
                    "       repro trace <app> <graph> <config> [--scale S] [--trace-out PATH] \
                     [--trace-stride N]"
                );
                println!(
                    "  check    certify Table I contracts (static DRF) and protocol \
                     invariants (dynamic); --all includes the extended app set"
                );
                println!(
                    "  hybrid   sweep the frontier-adaptive hybrid push/pull cells \
                     (H*) against the 12 static configurations and report where \
                     dynamic direction switching beats the best static choice"
                );
                println!(
                    "  trace    simulate one workload with instrumentation; <graph> is a \
                     preset mnemonic or rmat<N> (2^N vertices, scaled by --scale); the \
                     trace is Chrome trace-event JSON (.jsonl for JSON lines)"
                );
                println!(
                    "       repro study [--scale S] [--threads N] [--json PATH] \
                     [--journal PATH] [--resume PATH] [--deadline-ms N] [--max-kernels N] \
                     [--max-sim-cycles N] [--retries N] \
                     [--inject-fault APP/GRAPH/CFG[=panic|hang|io]]... \
                     [--store PATH] [--store-compact] [--lease-ttl-ms N] \
                     [--inject-store-fault torn[:BYTES]|short|crc|lock]..."
                );
                println!(
                    "  study    run the 36-workload study fault-tolerantly: failed cells \
                     are isolated and reported, budgets bound runaway cells, completed \
                     cells checkpoint to --journal and --resume skips them; --store \
                     shares a crash-safe content-addressed result store across runs and \
                     processes (cells already solved are never re-simulated, leases \
                     partition concurrent sweeps, --store-compact rewrites the store \
                     after the run) (docs/robustness.md)"
                );
                println!(
                    "       repro bench [--iters N] [--smoke] [--out PATH] \
                     [--baseline PATH] [--threshold PCT] [--tier NAME]..."
                );
                println!(
                    "  bench    time the ten-cell slice, the 12-config shared-trace-cache \
                     grid, and the rmat14/16/18 scale tiers, then write the \
                     BENCH_sim.json perf baseline; --tier restricts the tier arm, \
                     --smoke (CI) runs best-of-5 per cell, and --baseline gates \
                     throughput, RSS, and behavior regressions beyond --threshold \
                     percent (docs/performance.md)"
                );
                println!("       repro verify [--cell CODE]... [--smoke] [--mutations]");
                println!(
                    "  verify   exhaustively model-check the coherence x consistency \
                     grid (ggs-verify): per-cell reachability with protocol \
                     invariants plus the all-interleavings litmus suite; --cell \
                     restricts to named cells (G0, D1, GR, ...), --smoke uses the CI \
                     bounds, --mutations runs the seeded-bug self-test with \
                     bridge-replayed counterexamples (docs/checking.md)"
                );
                return;
            }
            s => sections.push(s.to_owned()),
        }
    }
    if sections.first().map(String::as_str) == Some("trace") {
        let [_, app, graph, config] = sections.as_slice() else {
            die("trace needs exactly three operands: repro trace <app> <graph> <config>");
        };
        trace_cmd(
            app,
            graph,
            config,
            scale,
            trace_out.as_deref(),
            trace_stride,
        );
        return;
    }
    if sections.first().map(String::as_str) == Some("bench") {
        if sections.len() > 1 {
            die("bench takes no operands, only flags");
        }
        bench_cmd(
            bench_iters,
            bench_smoke,
            bench_out.as_deref(),
            bench_baseline.as_deref(),
            bench_threshold,
            &bench_tiers,
        );
        return;
    }
    if sections.first().map(String::as_str) == Some("verify") {
        if sections.len() > 1 {
            die("verify takes no operands, only flags");
        }
        verify_cmd(&verify_cells, bench_smoke, verify_mutations);
        return;
    }
    if sections.first().map(String::as_str) == Some("study") {
        if sections.len() > 1 {
            die("study takes no operands, only flags");
        }
        let opts = StudyCmd {
            scale,
            threads,
            json_path,
            trace_out,
            journal_path,
            resume_path,
            deadline_ms,
            max_kernels,
            max_sim_cycles,
            retries,
            inject_faults,
            store_path,
            store_compact,
            lease_ttl_ms,
            inject_store_faults,
        };
        study_cmd(&opts);
        return;
    }
    if sections.is_empty() {
        sections.push("all".to_owned());
    }
    const KNOWN: [&str; 15] = [
        "table1", "table2", "table3", "table4", "table5", "fig5", "fig6", "partial", "flexible",
        "traffic", "gsi", "summary", "check", "hybrid", "all",
    ];
    for s in &sections {
        if !KNOWN.contains(&s.as_str()) {
            die(&format!(
                "unknown section {s:?} (expected one of {})",
                KNOWN.join("|")
            ));
        }
    }
    let want = |name: &str| -> bool { sections.iter().any(|s| s == name || s == "all") };
    let needs_study = ["fig5", "fig6", "summary", "partial", "flexible"]
        .iter()
        .any(|s| want(s))
        || svg_path.is_some();

    // `check` is a gate, not a paper artifact: it runs only when named
    // explicitly, never as part of `all`.
    if sections.iter().any(|s| s == "check") {
        check(scale, check_extended);
    }
    // `hybrid` is this repo's extension beyond the paper's 12-point
    // grid; like `check`, it runs only when named explicitly.
    if sections.iter().any(|s| s == "hybrid") {
        hybrid(scale);
    }

    if want("traffic") {
        traffic(scale);
    }
    if want("gsi") {
        gsi(scale);
    }

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2(scale);
    }
    if want("table3") {
        table3();
    }
    if want("table4") {
        table4(scale);
    }
    if want("table5") {
        table5(scale);
    }

    if needs_study || json_path.is_some() {
        eprintln!("[repro] running the 36-workload study at scale {scale} on {threads} threads…");
        let start = std::time::Instant::now();
        let metrics = ggs_trace::MetricsRegistry::new();
        let study = Study::run_with_metrics(scale, ConfigSet::Figure5, threads, &metrics);
        eprintln!(
            "[repro] study finished in {:.1}s",
            start.elapsed().as_secs_f64()
        );
        if !study.failures.is_empty() {
            eprintln!(
                "[repro] warning: {} cell(s) failed; figures are rendered from the \
                 surviving cells (run `repro study` for the per-cell report)",
                study.failures.len()
            );
            for cell in &study.failures {
                eprintln!("[repro]   {} {}: {}", cell.status, cell.key(), cell.detail);
            }
        }
        if let Some(path) = &trace_out {
            write_phase_profile(path, &metrics);
        }
        if let Some(path) = &json_path {
            if let Err(e) = std::fs::write(path, study.to_json_pretty()) {
                die(&format!("cannot write {path}: {e}"));
            }
            eprintln!("[repro] wrote {path}");
        }
        if want("fig5") {
            fig5(&study);
        }
        if let Some(path) = &svg_path {
            let svg = fig5_svg(&study);
            if let Err(e) = std::fs::write(path, svg) {
                die(&format!("cannot write {path}: {e}"));
            }
            eprintln!("[repro] wrote {path}");
        }
        if want("fig6") {
            fig6(&study);
        }
        if want("partial") {
            partial(&study);
        }
        if want("flexible") {
            flexible(&study);
        }
        if want("summary") {
            summary(&study);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

type BoxedSink = Box<dyn ggs_trace::TraceSink>;

/// Opens `path` as a trace sink: JSON lines when the path ends in
/// `.jsonl`, Chrome trace-event JSON otherwise.
fn open_sink(path: &str) -> BoxedSink {
    let file = match std::fs::File::create(path) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => die(&format!("cannot create {path}: {e}")),
    };
    if path.ends_with(".jsonl") {
        Box::new(ggs_trace::JsonlSink::new(file))
    } else {
        Box::new(ggs_trace::ChromeTraceSink::new(file))
    }
}

fn close_sink(path: &str, sink: BoxedSink) {
    if let Err(e) = sink.finish() {
        die(&format!("cannot write {path}: {e}"));
    }
    eprintln!("[repro] wrote {path}");
}

/// Writes the study's wall-clock phase spans as a Chrome trace.
fn write_phase_profile(path: &str, metrics: &ggs_trace::MetricsRegistry) {
    let sink = open_sink(path);
    metrics.emit_phases(sink.as_ref());
    close_sink(path, sink);
}

/// `repro trace <app> <graph> <config>`: one fully-instrumented
/// simulation, streamed to a trace file.
fn trace_cmd(
    app: &str,
    graph_name: &str,
    config: &str,
    scale: f64,
    trace_out: Option<&str>,
    stride: u64,
) {
    use ggs_core::experiment::{run_workload_traced, ExperimentSpec};
    use ggs_trace::Tracer;

    let app: AppKind = match app.parse() {
        Ok(a) => a,
        Err(e) => die(&format!("{e}")),
    };
    let config: ggs_model::SystemConfig = match config.parse() {
        Ok(c) => c,
        Err(e) => die(&format!("{e}")),
    };
    let graph = trace_graph(graph_name, scale);
    let spec = match ExperimentSpec::builder().scale(scale).build() {
        Ok(s) => s,
        Err(e) => die(&format!("{e}")),
    };
    let path = trace_out.unwrap_or("trace.json");
    eprintln!(
        "[repro] tracing {app} on {graph_name} ({} vertices, {} edges) under {config}, \
         stride {stride}…",
        graph.num_vertices(),
        graph.num_edges()
    );
    let sink = open_sink(path);
    let tracer = Tracer::new(sink.as_ref(), stride);
    let stats = match run_workload_traced(app, &graph, config, &spec, tracer) {
        Ok(stats) => stats,
        Err(e) => die(&format!("{e}")),
    };
    close_sink(path, sink);
    println!(
        "{app} on {graph_name} under {config}: {} cycles over {} kernels",
        stats.total_cycles(),
        stats.kernels
    );
}

/// Flags of the `repro study` subcommand.
struct StudyCmd {
    scale: f64,
    threads: usize,
    json_path: Option<String>,
    trace_out: Option<String>,
    journal_path: Option<String>,
    resume_path: Option<String>,
    deadline_ms: Option<u64>,
    max_kernels: Option<u64>,
    max_sim_cycles: Option<u64>,
    retries: Option<u32>,
    inject_faults: Vec<String>,
    store_path: Option<String>,
    store_compact: bool,
    lease_ttl_ms: Option<u64>,
    inject_store_faults: Vec<String>,
}

/// `repro study`: the 36-workload study through the fault-tolerant
/// runner, with per-cell failure reporting and partial Figure 5/6
/// output. Exits 0 as long as the study itself completes, even when
/// individual cells fail — graceful degradation is the point.
fn study_cmd(cmd: &StudyCmd) {
    use ggs_core::runner::{run_study, FaultPlan, StudyOptions};
    use ggs_core::ExperimentSpec;

    let mut builder = ExperimentSpec::builder().scale(cmd.scale);
    if let Some(n) = cmd.max_kernels {
        builder = builder.max_kernels(n);
    }
    if let Some(n) = cmd.max_sim_cycles {
        builder = builder.max_sim_cycles(n);
    }
    let spec = match builder.build() {
        Ok(s) => s,
        Err(e) => die(&format!("{e}")),
    };

    let mut options = StudyOptions::new(ConfigSet::Figure5, cmd.threads);
    if let Some(n) = cmd.retries {
        options.retry.max_attempts = n;
    }
    options.cell_deadline = cmd.deadline_ms.map(std::time::Duration::from_millis);
    let mut faults = FaultPlan::new();
    for spec_str in &cmd.inject_faults {
        faults = match faults.parse_spec(spec_str) {
            Ok(f) => f,
            Err(e) => die(&format!("{e}")),
        };
    }
    options.faults = faults;
    options.journal_path = cmd.journal_path.as_ref().map(std::path::PathBuf::from);
    options.resume_from = cmd.resume_path.as_ref().map(std::path::PathBuf::from);

    if cmd.store_path.is_none() && (cmd.store_compact || !cmd.inject_store_faults.is_empty()) {
        die("--store-compact and --inject-store-fault require --store");
    }
    if let Some(ms) = cmd.lease_ttl_ms {
        options.lease_ttl = std::time::Duration::from_millis(ms);
    }
    let store_faults = ggs_core::StoreFaults::none();
    if let Some(path) = &cmd.store_path {
        let store =
            match ggs_core::Store::open_with(std::path::Path::new(path), store_faults.clone()) {
                Ok(s) => s,
                Err(e) => die(&format!("cannot open store {path}: {e}")),
            };
        options.store = Some(store);
    }
    // Arm injected store faults only after the store opened cleanly, so
    // they sabotage the run itself rather than setup (the fault handle
    // shares its counters with the store's clone).
    let mut armed = store_faults;
    for spec_str in &cmd.inject_store_faults {
        armed = match armed.parse_spec(spec_str) {
            Ok(f) => f,
            Err(e) => die(&format!("{e}")),
        };
    }

    // Cell panics are caught and reported by the runner; replace the
    // default hook so each one costs a single stderr line instead of a
    // full backtrace. Set RUST_BACKTRACE=1 to keep the default hook.
    if std::env::var_os("RUST_BACKTRACE").is_none() {
        std::panic::set_hook(Box::new(|info| {
            eprintln!("[repro] cell worker panicked: {info}");
        }));
    }
    eprintln!(
        "[repro] running the fault-tolerant study at scale {} on {} threads…",
        cmd.scale, cmd.threads
    );
    let start = std::time::Instant::now();
    let metrics = ggs_trace::MetricsRegistry::new();
    let outcome = if let Some(path) = &cmd.trace_out {
        let sink = open_sink(path);
        let outcome = run_study(&spec, &options, &metrics, sink.as_ref());
        metrics.emit_phases(sink.as_ref());
        close_sink(path, sink);
        outcome
    } else {
        run_study(&spec, &options, &metrics, &ggs_trace::NOOP)
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => die(&format!("{e}")),
    };
    eprintln!(
        "[repro] study finished in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    if let Some(e) = &outcome.journal_error {
        eprintln!("[repro] warning: journal degraded, checkpoints incomplete: {e}");
    }

    for cell in &outcome.study.failures {
        println!(
            "  {:7} {} (attempt {}): {}",
            cell.status.to_string().to_uppercase(),
            cell.key(),
            cell.attempts,
            cell.detail
        );
    }
    let (ok, failed, timeout, skipped) = outcome.counts();
    println!(
        "study: {} cells — {} ok, {} failed, {} timeout, {} skipped",
        outcome.cells.len(),
        ok,
        failed,
        timeout,
        skipped
    );
    if let Some((entries, skipped_lines)) = outcome.journal_loaded {
        println!("journal: {entries} entries, {skipped_lines} skipped");
    }
    if let Some(report) = &outcome.store_report {
        println!(
            "store: {} records, {} corrupt span(s) ({} bytes skipped)",
            report.records,
            report.corrupt.len(),
            report.corrupt_bytes()
        );
    }
    if cmd.store_compact {
        if let Some(store) = options.store.as_ref() {
            match store.compact() {
                Ok(report) => println!("store compacted: {report}"),
                Err(e) => eprintln!("[repro] warning: store compaction failed: {e}"),
            }
        }
    }
    println!();

    if let Some(path) = &cmd.json_path {
        if let Err(e) = std::fs::write(path, outcome.study.to_json_pretty()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("[repro] wrote {path}");
    }
    fig5(&outcome.study);
    fig6(&outcome.study);
}

/// `repro bench`: times the fixed benchmark slice, the shared-cache
/// grid sweep, and the scale tiers; writes/prints the
/// `BENCH_sim.json` report, and optionally gates against a committed
/// baseline (exit 1 on regression). See docs/performance.md.
fn bench_cmd(
    iters: u32,
    smoke: bool,
    out: Option<&str>,
    baseline: Option<&str>,
    threshold_pct: f64,
    tiers: &[String],
) {
    use ggs_bench::bench::{
        peak_rss_kb, run_grid, run_slice, run_tier, BenchReport, BENCH_GRAPH, BENCH_SCALE, SLICE,
        TIERS,
    };

    // Smoke pins best-of-5: one iteration is too exposed to a busy
    // CI runner for the throughput arm of the gate, and five keep the
    // per-cell minima stable enough for a 20% backstop while holding
    // the slice under a second of wall clock.
    let iters = if smoke { 5 } else { iters };
    eprintln!(
        "[repro] benchmarking the {}-cell slice ({BENCH_GRAPH}, scale {BENCH_SCALE}), \
         best of {iters} iteration(s) per cell…",
        SLICE.len()
    );
    let mut progress = |line: &str| eprintln!("[repro]   {line}");
    let mut report = run_slice(iters, &mut progress);
    eprintln!("[repro] sweeping the 12-configuration grid with a shared trace cache…");
    report.grid = Some(run_grid(&mut progress));
    let tier_names: Vec<&str> = if tiers.is_empty() {
        TIERS.to_vec()
    } else {
        tiers.iter().map(String::as_str).collect()
    };
    eprintln!(
        "[repro] running {} scale tier(s): {}…",
        tier_names.len(),
        tier_names.join(", ")
    );
    for tier in tier_names {
        match run_tier(tier, &mut progress) {
            Ok(t) => report.tiers.push(t),
            Err(e) => die(&e),
        }
    }
    // Re-sample the RSS high-water mark now that the big tiers ran —
    // the sweep path's memory footprint is the point of the gate.
    report.peak_rss_kb = peak_rss_kb();
    let grid_line = report
        .grid
        .as_ref()
        .map(|g| format!(", grid {:.3} cells/sec", g.cells_per_sec()))
        .unwrap_or_default();
    println!(
        "bench: {} cells in {:.2} s wall — {:.3} cells/sec{}, {} tier(s){}",
        report.cells.len(),
        report.total_wall().as_secs_f64(),
        report.cells_per_sec(),
        grid_line,
        report.tiers.len(),
        match report.peak_rss_kb {
            Some(kb) => format!(", peak RSS {kb} KiB"),
            None => String::new(),
        }
    );
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("[repro] wrote {path}");
    }
    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => die(&format!("cannot read baseline {path}: {e}")),
        };
        let base = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => die(&format!("cannot parse baseline {path}: {e}")),
        };
        let failures = ggs_bench::bench::regression_failures(&report, &base, threshold_pct);
        if failures.is_empty() {
            println!(
                "bench: within {threshold_pct}% of the {path} baseline ({:.3} cells/sec)",
                base.cells_per_sec()
            );
        } else {
            for f in &failures {
                eprintln!("repro: bench regression: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// `repro verify`: exhaustive explicit-state model checking of the
/// coherence × consistency grid (see `ggs-verify` and the "Model
/// checking" section of docs/checking.md). Exits 1 on any invariant
/// violation, forbidden litmus outcome, missing required outcome,
/// truncated run, or missed mutation.
fn verify_cmd(cells: &[String], smoke: bool, mutations: bool) {
    use ggs_sim::config::HwConfig;

    let cells: Vec<HwConfig> = cells
        .iter()
        .map(|c| {
            c.parse()
                .unwrap_or_else(|e| die(&format!("{e} (expected a cell code like G0 or DR)")))
        })
        .collect();
    eprintln!(
        "[repro] model-checking {} with {} bounds{}…",
        if cells.is_empty() {
            "the full coherence x consistency grid".to_owned()
        } else {
            format!("{} cell(s)", cells.len())
        },
        if smoke { "smoke" } else { "full" },
        if mutations {
            ", then hunting the seeded mutations"
        } else {
            ""
        },
    );
    let start = std::time::Instant::now();
    let report = ggs_verify::run_verify(&ggs_verify::VerifyOptions {
        cells,
        smoke,
        mutations,
    });
    eprintln!(
        "[repro] model check finished in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    print!("{report}");
    if !report.passed() {
        std::process::exit(1);
    }
}

/// Resolves a `repro trace` graph operand: a preset mnemonic, or
/// `rmat<N>` for a power-law graph with 2^N vertices (before `--scale`
/// is applied) and average degree 16.
fn trace_graph(name: &str, scale: f64) -> ggs_graph::Csr {
    if let Some(exp) = name
        .strip_prefix("rmat")
        .and_then(|s| s.parse::<u32>().ok())
    {
        if !(4..=28).contains(&exp) {
            die("rmat exponent must be between 4 and 28");
        }
        return ggs_bench::bench::rmat_graph(exp, scale);
    }
    match name.parse::<GraphPreset>() {
        Ok(preset) => SynthConfig::preset(preset).scale(scale).generate(),
        Err(e) => die(&format!("{e} (expected a preset mnemonic or rmat<N>)")),
    }
}

/// The `ggs-check` certification sweep (the CI gate; `docs/checking.md`):
///
/// 1. **Static** — every application × supported direction is traced on
///    the most irregular input family (EML) and run through the DRF race
///    detector and Table I contract checker, once per consistency model
///    (the race verdict is model-independent; the synchronization
///    counts are not).
/// 2. **Dynamic** — every workload is simulated with the
///    coherence-protocol invariant checker enabled, across the full
///    coherence × consistency hardware grid.
///
/// Exits with status 1 if any race, contract violation, or protocol
/// invariant violation is found.
fn check(scale: f64, extended: bool) {
    use ggs_check::certify::{certify_matrix, run_protocol_checked};
    use ggs_sim::config::{ConsistencyModel, HwConfig};

    let mut dirty = false;
    let graph = SynthConfig::preset(GraphPreset::Eml)
        .scale(scale)
        .generate();

    println!("== Check: static DRF + Table I contract certification (EML, scale {scale}) ==");
    for model in ConsistencyModel::ALL {
        for report in certify_matrix(&graph, model, extended) {
            println!("{}", report.summary_line());
            if !report.is_clean() {
                dirty = true;
                for v in &report.violations {
                    println!("    {v}");
                }
            }
        }
    }

    println!();
    println!("== Check: dynamic protocol invariants (coherence x consistency grid) ==");
    let params = SystemParams::default().scaled_caches(scale);
    let apps = AppKind::ALL
        .into_iter()
        .chain(extended.then_some(AppKind::EXTENDED).into_iter().flatten());
    for app in apps {
        for &prop in app.supported_propagations() {
            let mut line = format!("{:4} {:9}:", app.mnemonic(), prop.to_string());
            for hw in HwConfig::all() {
                let violations = run_protocol_checked(app, &graph, prop, hw, &params);
                if violations.is_empty() {
                    line.push_str(&format!(" {}=ok", hw.code()));
                } else {
                    dirty = true;
                    line.push_str(&format!(" {}=FAIL({})", hw.code(), violations.len()));
                    for v in violations.iter().take(5) {
                        eprintln!("    {v}");
                    }
                }
            }
            println!("{line}");
        }
    }

    if dirty {
        eprintln!("repro: check FAILED — violations listed above");
        std::process::exit(1);
    }
    println!();
    println!("check: all contracts certified, all protocol invariants hold");
}

/// The hybrid extension sweep: for every frontier app × graph preset,
/// simulate the four frontier-adaptive `H*` cells alongside the full
/// 12-point static grid and report where dynamic direction switching
/// beats the best static configuration (EXPERIMENTS.md, "Dynamic vs.
/// best-static direction").
fn hybrid(scale: f64) {
    use ggs_core::experiment::ExperimentSpec;
    use ggs_core::sweep::hybrid_configs;
    use ggs_core::WorkloadSweep;
    use ggs_model::SystemConfig;

    println!("== Hybrid: frontier-adaptive push/pull vs best static (scale {scale}) ==");
    let spec = ExperimentSpec::at_scale(scale);
    let mut t = TextTable::new([
        "Workload",
        "best static",
        "cycles",
        "best hybrid",
        "cycles",
        "hybrid/static",
        "winner",
    ]);
    let mut wins = 0usize;
    let mut total = 0usize;
    for app in [AppKind::Sssp, AppKind::Bfs] {
        let hybrid_cells = hybrid_configs(app);
        let static_cells = SystemConfig::all_for(app.algo_profile().traversal);
        for preset in GraphPreset::ALL {
            let graph = SynthConfig::preset(preset).scale(scale).generate();
            let best = |sweep: &WorkloadSweep| {
                sweep
                    .results
                    .iter()
                    .map(|r| (r.config, r.stats.total_cycles()))
                    .min_by_key(|&(_, cycles)| cycles)
                    .expect("sweep is non-empty")
            };
            let (s_cfg, s_cycles) = best(&WorkloadSweep::run(
                app,
                preset.mnemonic(),
                &graph,
                &static_cells,
                &spec,
            ));
            let (h_cfg, h_cycles) = best(&WorkloadSweep::run(
                app,
                preset.mnemonic(),
                &graph,
                &hybrid_cells,
                &spec,
            ));
            total += 1;
            let won = h_cycles < s_cycles;
            if won {
                wins += 1;
            }
            t.row([
                format!("{}-{}", app.mnemonic(), preset.mnemonic()),
                s_cfg.code(),
                s_cycles.to_string(),
                h_cfg.code(),
                h_cycles.to_string(),
                format!("{:.3}", h_cycles as f64 / s_cycles as f64),
                if won { "HYBRID".into() } else { String::new() },
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "dynamic direction switching beats the best static configuration on \
         {wins} of {total} frontier workloads (threshold {}, push below / pull above)\n",
        ggs_model::Propagation::HYBRID_DENSITY_THRESHOLD
    );
}

/// Table I: the design space (static text; the code itself is the
/// artifact).
fn table1() {
    println!("== Table I: implementation design space ==");
    let mut t = TextTable::new(["Dimension", "Option", "Salient features"]);
    t.row([
        "Push vs. Pull",
        "Pull (T)",
        "target outer loop; dense local updates; sparse remote reads; no atomics",
    ]);
    t.row([
        "",
        "Push (S)",
        "source outer loop; dense local reads; sparse remote atomics",
    ]);
    t.row([
        "",
        "Push+Pull (D)",
        "dynamic source/target; racy remote reads and updates",
    ]);
    t.row([
        "Coherence",
        "GPU (G)",
        "write-through + self-invalidate at sync; atomics at L2",
    ]);
    t.row([
        "",
        "DeNovo (D)",
        "ownership at L1; atomics at L1; good with update reuse",
    ]);
    t.row([
        "Consistency",
        "DRF0 (0)",
        "every atomic paired acquire/release; simplest to program",
    ]);
    t.row(["", "DRF1 (1)", "unpaired atomics overlap data accesses"]);
    t.row([
        "",
        "DRFrlx (R)",
        "relaxed atomics overlap each other; MLP hides imbalance",
    ]);
    println!("{}", t.render());
}

/// Table II: input graph statistics and taxonomy classes.
fn table2(scale: f64) {
    println!("== Table II: graph inputs at scale {scale} (classes must match the paper) ==");
    let params = ggs_model::MetricParams::default().scaled_caches(scale);
    let mut t = TextTable::new([
        "Graph",
        "Vertices",
        "Edges",
        "MaxDeg",
        "AvgDeg",
        "StdDev",
        "Volume(KB)",
        "ANL",
        "ANR",
        "Reuse",
        "Imbalance",
        "Classes",
    ]);
    for p in GraphPreset::ALL {
        let g = SynthConfig::preset(p).scale(scale).generate();
        let prof = GraphProfile::measure(&g, &params);
        t.row([
            p.mnemonic().to_owned(),
            prof.vertices.to_string(),
            prof.edges.to_string(),
            prof.degrees.max.to_string(),
            format!("{:.3}", prof.degrees.avg),
            format!("{:.3}", prof.degrees.std_dev),
            format!("{:.3} ({})", prof.volume_kb, prof.volume.letter()),
            format!("{:.3}", prof.anl),
            format!("{:.3}", prof.anr),
            format!("{:.3} ({})", prof.reuse, prof.reuse_class.letter()),
            format!("{:.3} ({})", prof.imbalance, prof.imbalance_class.letter()),
            prof.class_code(),
        ]);
    }
    println!("{}", t.render());
}

/// Table III: algorithmic properties.
fn table3() {
    println!("== Table III: algorithmic properties ==");
    let mut t = TextTable::new(["App", "Traversal", "Control", "Information"]);
    for app in AppKind::ALL {
        let p = app.algo_profile();
        let bias = |b: Option<ggs_model::AlgoBias>| match b {
            Some(ggs_model::AlgoBias::Source) => "Source",
            Some(ggs_model::AlgoBias::Target) => "Target",
            Some(ggs_model::AlgoBias::Symmetric) => "Symmetric",
            None => "-",
        };
        t.row([
            app.mnemonic(),
            match p.traversal {
                Traversal::Static => "Static",
                Traversal::Dynamic => "Dynamic",
            },
            bias(p.control),
            bias(p.information),
        ]);
    }
    println!("{}", t.render());
}

/// Table IV: simulated system parameters.
fn table4(scale: f64) {
    println!("== Table IV: simulated system parameters (scale {scale}) ==");
    let p = SystemParams::default().scaled_caches(scale);
    let mut t = TextTable::new(["Parameter", "Value"]);
    t.row(["GPU CUs (SMs)", &p.num_sms.to_string()]);
    t.row([
        "L1 size (8-way)",
        &format!("{} KB per SM", p.l1_bytes / 1024),
    ]);
    t.row([
        "L2 size (16 banks, NUCA)",
        &format!("{} KB shared", p.l2_bytes / 1024),
    ]);
    t.row([
        "Store buffer",
        &format!("{} entries", p.store_buffer_entries),
    ]);
    t.row(["L1 MSHRs", &format!("{} entries", p.mshr_entries)]);
    t.row(["L1 hit latency", "1 cycle"]);
    t.row(["Remote L1 latency", "35-83 cycles"]);
    t.row(["L2 hit latency", "29-59 cycles"]);
    t.row(["Memory latency", "197-255 cycles"]);
    println!("{}", t.render());
}

/// Table V: model predictions for every workload.
fn table5(scale: f64) {
    println!("== Table V: model-predicted best configuration per workload ==");
    let params = ggs_model::MetricParams::default().scaled_caches(scale);
    let mut rows: BTreeMap<GraphPreset, Vec<String>> = BTreeMap::new();
    for p in GraphPreset::ALL {
        let g = SynthConfig::preset(p).scale(scale).generate();
        let prof = GraphProfile::measure(&g, &params);
        let row: Vec<String> = AppKind::ALL
            .iter()
            .map(|a| predict_full(&a.algo_profile(), &prof).code())
            .collect();
        rows.insert(p, row);
    }
    let mut t = TextTable::new(["", "PR", "SSSP", "MIS", "CLR", "BC", "CC"]);
    for (p, row) in rows {
        let mut cells = vec![p.mnemonic().to_owned()];
        cells.extend(row);
        t.row(cells);
    }
    println!("{}", t.render());
}

/// Figure 5: normalized execution-time breakdown per workload.
fn fig5(study: &Study) {
    println!("== Figure 5: normalized execution time (to TG0; DG1 for CC) ==");
    println!("   columns: config = normalized-total [busy/comp/data/sync/idle %]");
    for report in &study.reports {
        let mut line = format!("{:4} {:4} |", report.app, report.graph);
        for row in &report.rows {
            // A degraded study can lose the baseline row; fall back to
            // raw cycles rather than panicking (docs/robustness.md).
            match report.try_normalized(&row.config) {
                Some(norm) => line.push_str(&format!(" {}={:.2}", row.config, norm)),
                None => line.push_str(&format!(" {}={}cyc", row.config, row.total_cycles)),
            }
        }
        let best = report.best.clone();
        let pred = report.predicted.clone();
        line.push_str(&format!("  BEST={best} PRED={pred}"));
        println!("{line}");
    }
    println!();
    // Geomean BEST and PRED per app, as the extra Figure 5 bars.
    let mut t = TextTable::new(["App", "geomean BEST/base", "geomean PRED/base"]);
    for app in AppKind::ALL {
        let reports: Vec<_> = study
            .reports
            .iter()
            .filter(|r| r.app == app.mnemonic())
            .collect();
        let geo = |f: &dyn Fn(&ggs_core::WorkloadReport) -> Option<f64>| -> f64 {
            let norms: Vec<f64> = reports.iter().filter_map(|r| f(r)).collect();
            (norms.iter().map(|v| v.ln()).sum::<f64>() / norms.len() as f64).exp()
        };
        let best = geo(&|r| r.try_normalized(&r.best));
        let pred = geo(&|r| r.try_normalized(&r.predicted));
        t.row([
            app.mnemonic().to_owned(),
            format!("{best:.3}"),
            format!("{pred:.3}"),
        ]);
    }
    println!("{}", t.render());
}

/// Renders Figure 5 as a standalone SVG: one group per workload, one
/// stacked bar per configuration (normalized to TG0/DG1), stacked by
/// the five stall classes.
fn fig5_svg(study: &Study) -> String {
    use ggs_bench::svg::{Bar, BarGroup, GroupedBarChart};
    let groups = study
        .reports
        .iter()
        .map(|r| BarGroup {
            label: format!("{}-{}", r.app, r.graph),
            bars: r
                .rows
                .iter()
                .filter_map(|row| {
                    let norm = r.try_normalized(&row.config)?;
                    Some(Bar {
                        label: row.config.clone(),
                        segments: row.fractions.iter().map(|f| f * norm).collect(),
                    })
                })
                .collect(),
        })
        .collect();
    GroupedBarChart {
        title: format!(
            "Figure 5: GPU execution time, normalized to TG0 (DG1 for CC) — scale {}",
            study.scale
        ),
        legend: ["Busy", "Comp", "Data", "Sync", "Idle"]
            .into_iter()
            .map(str::to_owned)
            .collect(),
        groups,
    }
    .render()
}

/// Figure 6: workloads where the default (SGR / DGR) is not best.
fn fig6(study: &Study) {
    println!("== Figure 6: SGR (DGR for CC) vs BEST vs PRED ==");
    let mut t = TextTable::new([
        "Workload",
        "Default",
        "BEST",
        "PRED",
        "reduction(BEST vs default)",
        "PRED within",
    ]);
    for (r, reduction) in study.figure6_rows() {
        let pred_within = match r.try_prediction_slowdown() {
            Some(s) => format!("{:.1}%", s * 100.0),
            None => "n/a".to_owned(),
        };
        t.row([
            format!("{}-{}", r.app, r.graph),
            r.default_config().to_owned(),
            r.best.clone(),
            r.predicted.clone(),
            format!("{:.0}%", reduction * 100.0),
            pred_within,
        ]);
    }
    println!("{}", t.render());
}

/// NoC traffic analysis: line payloads and control messages per
/// configuration — the communication-volume view of the coherence
/// tradeoff (DeNovo trades L2 atomic round-trips for registrations and
/// ownership transfers).
fn traffic(scale: f64) {
    use ggs_apps::AppKind;
    use ggs_core::experiment::{run_workload, ExperimentSpec};

    println!("== NoC traffic per configuration (PR on OLS and EML) ==");
    let spec = ExperimentSpec::at_scale(scale);
    let mut t = TextTable::new([
        "Workload",
        "Config",
        "line transfers",
        "control msgs",
        "~KB moved",
    ]);
    for preset in [GraphPreset::Ols, GraphPreset::Eml] {
        let graph = SynthConfig::preset(preset).scale(scale).generate();
        for code in ["TG0", "SGR", "SDR"] {
            let cfg = code.parse().expect("valid config");
            let stats = run_workload(AppKind::Pr, &graph, cfg, &spec);
            let kb =
                (stats.mem.noc_line_transfers * 64 + stats.mem.noc_control_messages * 8) / 1024;
            t.row([
                format!("PR-{preset}"),
                code.to_owned(),
                stats.mem.noc_line_transfers.to_string(),
                stats.mem.noc_control_messages.to_string(),
                kb.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}

/// GSI-style per-data-structure attribution for two contrasting
/// workloads: where each array's accesses execute and what they cost
/// under the model-predicted configuration.
fn gsi(scale: f64) {
    use ggs_apps::AppKind;
    use ggs_core::experiment::{run_workload_profiled, ExperimentSpec};

    println!("== Per-data-structure attribution (GSI-style) ==");
    let spec = ExperimentSpec::at_scale(scale);
    for (app, preset, code) in [
        (AppKind::Pr, GraphPreset::Eml, "SGR"),
        (AppKind::Cc, GraphPreset::Raj, "DD1"),
    ] {
        let graph = SynthConfig::preset(preset).scale(scale).generate();
        let cfg = code.parse().expect("valid config");
        let (stats, regions) = run_workload_profiled(app, &graph, cfg, &spec);
        println!(
            "{app}-{preset} under {code}: {} cycles",
            stats.total_cycles()
        );
        let mut t = TextTable::new(["array", "loads", "stores", "atomics", "L1 hit%", "avg lat"]);
        for (name, s) in &regions {
            if s.accesses() == 0 {
                continue;
            }
            let hit = if s.loads > 0 {
                100.0 * s.l1_hits as f64 / s.loads as f64
            } else {
                0.0
            };
            t.row([
                name.clone(),
                s.loads.to_string(),
                s.stores.to_string(),
                s.atomics.to_string(),
                format!("{hit:.1}"),
                format!("{:.1}", s.avg_latency()),
            ]);
        }
        println!("{}", t.render());
    }
}

/// §IV-B / §VI: the partial design space (hardware without DRFrlx).
///
/// For each static workload: the empirically best configuration when
/// DRFrlx is unavailable, whether the push/pull choice *flips* relative
/// to the full design space, and whether the partial model (Figure 4
/// extension) predicts the restricted best.
fn partial(study: &Study) {
    println!("== Partial design space (no DRFrlx hardware, §IV-B) ==");
    let mut t = TextTable::new([
        "Workload",
        "BEST(full)",
        "BEST(no-rlx)",
        "PRED(partial)",
        "flip?",
        "pred ok?",
    ]);
    let mut flips = 0;
    let mut flips_predicted = 0;
    let mut exact = 0;
    let mut total = 0;
    for r in &study.reports {
        if r.app == "CC" {
            continue; // CC's recommendation (DD1) never uses DRFrlx
        }
        // A degraded study can lose every non-rlx row of a workload;
        // skip it rather than panicking.
        let Some(best_norlx) = r
            .rows
            .iter()
            .filter(|row| !row.config.ends_with('R'))
            .min_by_key(|row| row.total_cycles)
            .map(|row| row.config.clone())
        else {
            continue;
        };
        total += 1;
        let flip = r.best.starts_with('S') && best_norlx.starts_with('T');
        if flip {
            flips += 1;
            if r.predicted_partial.starts_with('T') {
                flips_predicted += 1;
            }
        }
        let ok = r.predicted_partial == best_norlx;
        if ok {
            exact += 1;
        }
        t.row([
            format!("{}-{}", r.app, r.graph),
            r.best.clone(),
            best_norlx,
            r.predicted_partial.clone(),
            if flip { "PULL".into() } else { String::new() },
            if ok { "yes".into() } else { "no".into() },
        ]);
    }
    println!("{}", t.render());
    println!(
        "workloads flipping to pull without DRFrlx: {flips} (paper: 7);          partial model predicts the flip for {flips_predicted} of them (paper: 4 of 7)"
    );
    println!("partial model exact on {exact}/{total} static workloads\n");
}

/// Quantifies the paper's flexibility motivation: how much a system
/// locked to one configuration loses versus per-workload BEST and
/// versus following the model's per-workload prediction.
fn flexible(study: &Study) {
    println!("== Flexibility: fixed configurations vs adaptive selection ==");
    let geomean = |norms: &[f64]| -> f64 {
        (norms.iter().map(|v| v.ln()).sum::<f64>() / norms.len() as f64).exp()
    };
    let static_reports: Vec<_> = study.reports.iter().filter(|r| r.app != "CC").collect();
    let mut t = TextTable::new(["Strategy", "geomean time / BEST (static workloads)"]);
    for code in ["TG0", "SG1", "SGR", "SD1", "SDR"] {
        let norms: Vec<f64> = static_reports
            .iter()
            .filter_map(|r| Some(r.cycles_of(code)? as f64 / r.cycles_of(&r.best)? as f64))
            .collect();
        t.row([format!("always {code}"), format!("{:.3}", geomean(&norms))]);
    }
    let pred_norms: Vec<f64> = static_reports
        .iter()
        .filter_map(|r| Some(r.cycles_of(&r.predicted)? as f64 / r.cycles_of(&r.best)? as f64))
        .collect();
    t.row([
        "model-predicted per workload".to_owned(),
        format!("{:.3}", geomean(&pred_norms)),
    ]);
    t.row(["oracle BEST per workload".to_owned(), "1.000".to_owned()]);
    println!("{}", t.render());
}

/// §VI headline numbers.
fn summary(study: &Study) {
    println!("== Summary (paper §VI headline claims vs this reproduction) ==");
    let fig6 = study.figure6_rows();
    let reductions: Vec<f64> = fig6.iter().map(|(_, r)| *r).collect();
    let avg = if reductions.is_empty() {
        0.0
    } else {
        reductions.iter().sum::<f64>() / reductions.len() as f64
    };
    let max = reductions.iter().copied().fold(0.0, f64::max);
    println!(
        "workloads where the default config (SGR/DGR) is not best: {} (paper: 12)",
        fig6.len()
    );
    println!(
        "execution-time reduction of BEST vs default on those: avg {:.0}%, max {:.0}% (paper: avg 44%, max 87%)",
        avg * 100.0,
        max * 100.0
    );
    println!(
        "model picks the exact best configuration for {}/36 workloads (paper: 28/36)",
        study.exact_predictions()
    );
    println!(
        "worst model misprediction costs {:.1}% over best (paper: <= 3.5%)",
        study.worst_prediction_slowdown() * 100.0
    );
    // Interdependence: workloads whose best flips to pull without DRFrlx.
    let flips = study
        .reports
        .iter()
        .filter(|r| {
            r.app != "CC" && {
                let best_no_rlx = r
                    .rows
                    .iter()
                    .filter(|row| !row.config.ends_with('R'))
                    .min_by_key(|row| row.total_cycles);
                best_no_rlx.is_some_and(|b| b.config == "TG0") && r.best.starts_with('S')
            }
        })
        .count();
    println!(
        "workloads preferring push with DRFrlx but pull without it: {} (paper: 7)",
        flips
    );
}
