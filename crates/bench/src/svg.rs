//! Minimal dependency-free SVG rendering for the reproduction's
//! figures: grouped, stacked bar charts in the style of the paper's
//! Figure 5 (per-configuration execution time, stacked by stall class,
//! normalized to a baseline).

/// One bar: a label plus stacked segment heights (already normalized;
/// the segment order is the caller's legend order).
#[derive(Debug, Clone)]
pub struct Bar {
    /// Label under the bar (configuration code).
    pub label: String,
    /// Stacked segment values, bottom-up, in legend order.
    pub segments: Vec<f64>,
}

/// A group of bars sharing an x-axis label (one workload).
#[derive(Debug, Clone)]
pub struct BarGroup {
    /// Group label (e.g. `PR-AMZ`).
    pub label: String,
    /// Bars in display order.
    pub bars: Vec<Bar>,
}

/// A grouped, stacked bar chart.
#[derive(Debug, Clone)]
pub struct GroupedBarChart {
    /// Chart title.
    pub title: String,
    /// Legend entries, one per stacked segment, in stacking order.
    pub legend: Vec<String>,
    /// Bar groups in display order.
    pub groups: Vec<BarGroup>,
}

const SEGMENT_COLORS: [&str; 6] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
];
const BAR_W: f64 = 14.0;
const BAR_GAP: f64 = 2.0;
const GROUP_GAP: f64 = 18.0;
const PLOT_H: f64 = 260.0;
const MARGIN_L: f64 = 46.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 64.0;

impl GroupedBarChart {
    /// Renders the chart as a standalone SVG document.
    ///
    /// The y-axis is scaled to the tallest bar (min 1.0 so the baseline
    /// gridline is always visible).
    pub fn render(&self) -> String {
        let max_total = self
            .groups
            .iter()
            .flat_map(|g| g.bars.iter())
            .map(|b| b.segments.iter().sum::<f64>())
            .fold(1.0f64, f64::max);

        let group_w = |g: &BarGroup| g.bars.len() as f64 * (BAR_W + BAR_GAP);
        let plot_w: f64 =
            self.groups.iter().map(group_w).sum::<f64>() + GROUP_GAP * self.groups.len() as f64;
        let width = MARGIN_L + plot_w + 140.0; // legend space
        let height = MARGIN_T + PLOT_H + MARGIN_B;

        let mut s = String::new();
        s.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" font-family="sans-serif" font-size="10">"#
        ));
        s.push('\n');
        s.push_str(&format!(
            r#"<text x="{:.0}" y="20" font-size="14">{}</text>"#,
            MARGIN_L,
            xml_escape(&self.title)
        ));
        s.push('\n');

        // Gridlines + y labels at 0, 0.5, 1.0 ... up to max.
        let mut yv = 0.0;
        while yv <= max_total + 1e-9 {
            let y = MARGIN_T + PLOT_H - yv / max_total * PLOT_H;
            s.push_str(&format!(
                r##"<line x1="{MARGIN_L:.0}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/><text x="{:.0}" y="{:.1}" text-anchor="end">{yv:.1}</text>"##,
                MARGIN_L + plot_w,
                MARGIN_L - 4.0,
                y + 3.0
            ));
            s.push('\n');
            yv += 0.5;
        }

        // Bars.
        let mut x = MARGIN_L + GROUP_GAP / 2.0;
        for group in &self.groups {
            let gx = x;
            for bar in &group.bars {
                let mut y = MARGIN_T + PLOT_H;
                for (i, &v) in bar.segments.iter().enumerate() {
                    let h = v / max_total * PLOT_H;
                    y -= h;
                    let color = SEGMENT_COLORS[i % SEGMENT_COLORS.len()];
                    s.push_str(&format!(
                        r#"<rect x="{x:.1}" y="{y:.1}" width="{BAR_W}" height="{h:.1}" fill="{color}"/>"#
                    ));
                }
                s.push('\n');
                s.push_str(&format!(
                    r#"<text x="{:.1}" y="{:.1}" text-anchor="start" transform="rotate(60 {:.1} {:.1})" font-size="8">{}</text>"#,
                    x + BAR_W / 2.0,
                    MARGIN_T + PLOT_H + 8.0,
                    x + BAR_W / 2.0,
                    MARGIN_T + PLOT_H + 8.0,
                    xml_escape(&bar.label)
                ));
                s.push('\n');
                x += BAR_W + BAR_GAP;
            }
            let gw = x - gx;
            s.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="9" font-weight="bold">{}</text>"#,
                gx + gw / 2.0,
                MARGIN_T + PLOT_H + 44.0,
                xml_escape(&group.label)
            ));
            s.push('\n');
            x += GROUP_GAP;
        }

        // Legend.
        let lx = MARGIN_L + plot_w + 16.0;
        for (i, entry) in self.legend.iter().enumerate() {
            let ly = MARGIN_T + 14.0 * i as f64;
            let color = SEGMENT_COLORS[i % SEGMENT_COLORS.len()];
            s.push_str(&format!(
                r#"<rect x="{lx:.0}" y="{ly:.0}" width="10" height="10" fill="{color}"/><text x="{:.0}" y="{:.0}">{}</text>"#,
                lx + 14.0,
                ly + 9.0,
                xml_escape(entry)
            ));
            s.push('\n');
        }
        s.push_str("</svg>\n");
        s
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> GroupedBarChart {
        GroupedBarChart {
            title: "Figure 5".into(),
            legend: vec!["Busy".into(), "Data".into()],
            groups: vec![BarGroup {
                label: "PR-AMZ".into(),
                bars: vec![
                    Bar {
                        label: "TG0".into(),
                        segments: vec![0.2, 0.8],
                    },
                    Bar {
                        label: "SGR".into(),
                        segments: vec![0.1, 0.3],
                    },
                ],
            }],
        }
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("PR-AMZ"));
        assert!(svg.contains("TG0"));
        assert!(svg.contains("Figure 5"));
        // One rect per segment (4) + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 6);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = chart();
        c.title = "a<b&c>d".into();
        let svg = c.render();
        assert!(svg.contains("a&lt;b&amp;c&gt;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn empty_chart_still_renders() {
        let c = GroupedBarChart {
            title: "empty".into(),
            legend: vec![],
            groups: vec![],
        };
        let svg = c.render();
        assert!(svg.contains("</svg>"));
    }
}
