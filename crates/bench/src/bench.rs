//! The `repro bench` performance baseline: wall-clock timing of a
//! fixed small study slice, serialized to `BENCH_sim.json`.
//!
//! The report has three arms (`ggs-bench-v2` schema):
//!
//! * **Slice** — nine (application, configuration) cells on a
//!   synthetic rmat14 graph at scale 0.125, chosen to exercise both
//!   coherence protocols, all three consistency models, and all three
//!   traversal directions. Each cell is timed cold (best of `--iters`
//!   runs through the shim-criterion `Bencher`): this is the
//!   per-cell simulation canary.
//! * **Grid** — the twelve static configurations of one application
//!   (PR) on the same graph, sharing one [`TraceCache`]: the
//!   sweep-path canary. Traces are built once per traversal direction
//!   and replayed for every coherence × consistency cell, so this arm
//!   regresses when cross-cell reuse stops paying (see
//!   docs/performance.md, "Sweep-level reuse").
//! * **Tiers** — one representative cell (PR under SGR) per graph
//!   scale tier (`rmat14`/`rmat16`/`rmat18`), each under a
//!   [`TIER_BUDGET_CYCLES`] simulation budget: the big-graph canary.
//!   A tier that breaches its budget or exhausts the interned-ID
//!   table fails the run.
//!
//! Simulated cycle counts are recorded alongside the wall-clock
//! numbers: cycles are deterministic, so a cycles mismatch against the
//! baseline means simulator *behavior* changed (intentionally or not)
//! and the baseline needs a refresh in the same change. Peak RSS is
//! recorded and gated too, so a memory blow-up in the sweep path is
//! caught even when throughput survives.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Bencher;
use ggs_apps::AppKind;
use ggs_core::experiment::{
    produce_trace_stream, run_stream_budgeted, run_workload_budgeted, run_workload_traced,
    ExperimentSpec,
};
use ggs_core::json::{self, Value};
use ggs_core::{graph_fingerprint, StreamKey, TraceCache};
use ggs_graph::synth::{DegreeModel, SynthConfig};
use ggs_graph::Csr;
use ggs_model::SystemConfig;
use ggs_trace::Tracer;

/// Scale factor of the benchmark slice (inputs and caches together,
/// matching the study default).
pub const BENCH_SCALE: f64 = 0.125;

/// Graph of the benchmark slice: `rmat14` (2^14 vertices before
/// scaling, average degree 16, hubbed power-law tail).
pub const BENCH_GRAPH: &str = "rmat14";

/// The ten benchmark cells: three applications, each under three
/// configurations spanning coherence × consistency × direction, plus
/// one frontier-adaptive hybrid cell (`H*`) so the per-iteration
/// direction-switching path is on the perf-regression radar.
/// CC is a dynamic (push+pull) traversal, so its cells use `D*` codes.
pub const SLICE: [(AppKind, &str); 10] = [
    (AppKind::Pr, "TD0"),
    (AppKind::Pr, "TDR"),
    (AppKind::Pr, "SGR"),
    (AppKind::Bfs, "TD0"),
    (AppKind::Bfs, "TDR"),
    (AppKind::Bfs, "SGR"),
    (AppKind::Bfs, "HDR"),
    (AppKind::Cc, "DG1"),
    (AppKind::Cc, "DD1"),
    (AppKind::Cc, "DGR"),
];

/// Application of the twelve-configuration grid arm.
pub const GRID_APP: AppKind = AppKind::Pr;

/// The full static configuration grid: two traversal directions ×
/// two coherence protocols × three consistency models. Six cells per
/// direction share one kernel-trace stream through the [`TraceCache`].
pub const GRID_CONFIGS: [&str; 12] = [
    "TG0", "TG1", "TGR", "TD0", "TD1", "TDR", "SG0", "SG1", "SGR", "SD0", "SD1", "SDR",
];

/// The graph scale tiers: each tier quadruples the vertex count of
/// the previous one (before `BENCH_SCALE` is applied).
pub const TIERS: [&str; 3] = ["rmat14", "rmat16", "rmat18"];

/// Simulation-cycle budget of one tier cell. Generous — a healthy
/// tier finishes far below it — but a runaway simulation (or an
/// interned-ID table that stops scaling) trips it instead of hanging
/// the bench.
pub const TIER_BUDGET_CYCLES: u64 = 1_000_000_000;

/// Generates an `rmat<exp>` synthetic power-law graph (2^exp vertices
/// before scaling, average degree 16), as used by `repro trace` and
/// the benchmark slice.
pub fn rmat_graph(exp: u32, scale: f64) -> Csr {
    let model = DegreeModel::log_normal(1.0).with_hubs(0.05, 256.0, 2048.0, 1.5);
    SynthConfig::custom(format!("rmat{exp}"), 1u32 << exp, 16.0, model, 0.5)
        .scale(scale)
        .generate()
}

/// Timing of one benchmark cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Application mnemonic (`PR`, `BFS`, `CC`).
    pub app: String,
    /// Configuration code (`TD0`, `SGR`, …).
    pub config: String,
    /// Best wall-clock time over the measured iterations.
    pub wall: Duration,
    /// Simulated GPU cycles the cell produced (deterministic).
    pub cycles: u64,
    /// Kernels the cell launched (deterministic).
    pub kernels: u64,
}

/// Timing of the twelve-configuration grid arm: one application swept
/// across the full static grid, once rebuilding the kernel trace per
/// cell (the pre-reuse sweep path) and once through a shared
/// [`TraceCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridTiming {
    /// Application mnemonic (`PR`).
    pub app: String,
    /// Number of grid cells swept.
    pub configs: u32,
    /// Wall-clock time of the shared-cache sweep, trace builds
    /// included.
    pub wall: Duration,
    /// Wall-clock time of the same sweep rebuilding the trace for
    /// every cell.
    pub uncached_wall: Duration,
    /// Trace-cache hits over the cached sweep (expected: configs −
    /// builds).
    pub cache_hits: u64,
    /// Trace-cache misses over the cached sweep (one per traversal
    /// direction).
    pub cache_misses: u64,
}

impl GridTiming {
    /// Grid cells swept per second of wall-clock time (cached sweep)
    /// — the sweep-path throughput number gated against the baseline.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            f64::from(self.configs) / secs
        } else {
            0.0
        }
    }

    /// Sweep-level reuse factor: uncached wall over cached wall. The
    /// honest measure of what cross-cell trace memoization buys on
    /// this host (bounded by the trace producer's share of cell
    /// cost).
    pub fn speedup(&self) -> f64 {
        let cached = self.wall.as_secs_f64();
        if cached > 0.0 {
            self.uncached_wall.as_secs_f64() / cached
        } else {
            0.0
        }
    }
}

/// Timing of one scale-tier cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TierTiming {
    /// Tier name (`rmat14`, `rmat16`, `rmat18`).
    pub tier: String,
    /// Vertices of the generated graph (after `BENCH_SCALE`).
    pub vertices: u64,
    /// Edges of the generated graph (after `BENCH_SCALE`).
    pub edges: u64,
    /// Wall-clock time of the single measured run.
    pub wall: Duration,
    /// Simulated GPU cycles (deterministic).
    pub cycles: u64,
    /// Kernels launched (deterministic).
    pub kernels: u64,
}

/// One `repro bench` measurement: the slice, the grid, the tiers, and
/// the aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Scale factor of the run.
    pub scale: f64,
    /// Iterations measured per slice cell (the best is kept).
    pub iters: u32,
    /// Per-cell slice timings, in slice order.
    pub cells: Vec<CellTiming>,
    /// The shared-trace-cache grid sweep, when it was run.
    pub grid: Option<GridTiming>,
    /// Per-tier timings, in ascending tier order.
    pub tiers: Vec<TierTiming>,
    /// Peak resident set size in KiB, when the platform exposes it.
    pub peak_rss_kb: Option<u64>,
}

impl BenchReport {
    /// Sum of the per-cell best wall-clock times (slice only).
    pub fn total_wall(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }

    /// Slice cells simulated per second of wall-clock time — the
    /// per-cell perf-trajectory number.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.total_wall().as_secs_f64();
        if secs > 0.0 {
            self.cells.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Serializes the report as pretty-printed JSON (the
    /// `BENCH_sim.json` schema, `ggs-bench-v2`).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"ggs-bench-v2\",\n");
        out.push_str(&format!("  \"graph\": \"{BENCH_GRAPH}\",\n"));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"iters\": {},\n", self.iters));
        out.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n",
            self.total_wall().as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  \"cells_per_sec\": {:.4},\n",
            self.cells_per_sec()
        ));
        match self.peak_rss_kb {
            Some(kb) => out.push_str(&format!("  \"peak_rss_kb\": {kb},\n")),
            None => out.push_str("  \"peak_rss_kb\": null,\n"),
        }
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"app\": \"{}\", \"config\": \"{}\", \"wall_ms\": {:.3}, \
                 \"cycles\": {}, \"kernels\": {}}}{}\n",
                c.app,
                c.config,
                c.wall.as_secs_f64() * 1e3,
                c.cycles,
                c.kernels,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        match &self.grid {
            Some(g) => out.push_str(&format!(
                "  \"grid\": {{\"app\": \"{}\", \"configs\": {}, \"wall_ms\": {:.3}, \
                 \"uncached_wall_ms\": {:.3}, \"cells_per_sec\": {:.4}, \
                 \"speedup\": {:.4}, \"cache_hits\": {}, \"cache_misses\": {}}},\n",
                g.app,
                g.configs,
                g.wall.as_secs_f64() * 1e3,
                g.uncached_wall.as_secs_f64() * 1e3,
                g.cells_per_sec(),
                g.speedup(),
                g.cache_hits,
                g.cache_misses,
            )),
            None => out.push_str("  \"grid\": null,\n"),
        }
        out.push_str("  \"tiers\": [\n");
        for (i, t) in self.tiers.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"tier\": \"{}\", \"vertices\": {}, \"edges\": {}, \
                 \"wall_ms\": {:.3}, \"cycles\": {}, \"kernels\": {}}}{}\n",
                t.tier,
                t.vertices,
                t.edges,
                t.wall.as_secs_f64() * 1e3,
                t.cycles,
                t.kernels,
                if i + 1 < self.tiers.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by
    /// [`BenchReport::to_json_pretty`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != "ggs-bench-v2" {
            return Err(format!("unsupported bench schema {schema:?}"));
        }
        let field_f64 = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let cells = v
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("missing cells array")?
            .iter()
            .map(|c| -> Result<CellTiming, String> {
                let s = |k: &str| {
                    c.get(k)
                        .and_then(Value::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| format!("cell missing {k:?}"))
                };
                let n = |k: &str| {
                    c.get(k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("cell missing {k:?}"))
                };
                Ok(CellTiming {
                    app: s("app")?,
                    config: s("config")?,
                    wall: Duration::from_secs_f64(n("wall_ms")? / 1e3),
                    cycles: n("cycles")? as u64,
                    kernels: n("kernels")? as u64,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let grid = match v.get("grid") {
            Some(g @ Value::Object(_)) => {
                let n = |k: &str| {
                    g.get(k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("grid missing {k:?}"))
                };
                Some(GridTiming {
                    app: g
                        .get("app")
                        .and_then(Value::as_str)
                        .map(str::to_owned)
                        .ok_or("grid missing \"app\"")?,
                    configs: n("configs")? as u32,
                    wall: Duration::from_secs_f64(n("wall_ms")? / 1e3),
                    uncached_wall: Duration::from_secs_f64(n("uncached_wall_ms")? / 1e3),
                    cache_hits: n("cache_hits")? as u64,
                    cache_misses: n("cache_misses")? as u64,
                })
            }
            _ => None,
        };
        let tiers = v
            .get("tiers")
            .and_then(Value::as_array)
            .map(|arr| {
                arr.iter()
                    .map(|t| -> Result<TierTiming, String> {
                        let n = |k: &str| {
                            t.get(k)
                                .and_then(Value::as_f64)
                                .ok_or_else(|| format!("tier missing {k:?}"))
                        };
                        Ok(TierTiming {
                            tier: t
                                .get("tier")
                                .and_then(Value::as_str)
                                .map(str::to_owned)
                                .ok_or("tier missing \"tier\"")?,
                            vertices: n("vertices")? as u64,
                            edges: n("edges")? as u64,
                            wall: Duration::from_secs_f64(n("wall_ms")? / 1e3),
                            cycles: n("cycles")? as u64,
                            kernels: n("kernels")? as u64,
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(Self {
            scale: field_f64("scale")?,
            iters: field_f64("iters")? as u32,
            cells,
            grid,
            tiers,
            peak_rss_kb: v.get("peak_rss_kb").and_then(Value::as_u64),
        })
    }
}

/// Runs the benchmark slice: each cell is timed `iters` times through
/// the shim-criterion [`Bencher`] and the best iteration is kept.
/// `progress` receives one human-readable line per cell. The grid and
/// tier arms are separate ([`run_grid`], [`run_tier`]); the returned
/// report carries none until the caller fills them in.
pub fn run_slice(iters: u32, progress: &mut dyn FnMut(&str)) -> BenchReport {
    let graph = rmat_graph(14, BENCH_SCALE);
    let spec = ExperimentSpec::at_scale(BENCH_SCALE);
    let mut cells = Vec::with_capacity(SLICE.len());
    for (app, code) in SLICE {
        let config: SystemConfig = code.parse().expect("slice config codes are valid");
        let mut best = Duration::MAX;
        let mut stats = None;
        for _ in 0..iters.max(1) {
            let mut b = Bencher::default();
            b.iter_custom(|_| {
                let start = Instant::now();
                let s = run_workload_traced(app, &graph, config, &spec, Tracer::off())
                    .expect("slice cells are supported app/config pairs");
                let wall = start.elapsed();
                stats = Some(s);
                wall
            });
            best = best.min(b.mean().expect("iter_custom always measures"));
        }
        let stats = stats.expect("at least one iteration ran");
        progress(&format!(
            "{:4} {code}: {:8.1} ms  ({} cycles, {} kernels)",
            app.mnemonic(),
            best.as_secs_f64() * 1e3,
            stats.total_cycles(),
            stats.kernels
        ));
        cells.push(CellTiming {
            app: app.mnemonic().to_owned(),
            config: code.to_owned(),
            wall: best,
            cycles: stats.total_cycles(),
            kernels: stats.kernels,
        });
    }
    BenchReport {
        scale: BENCH_SCALE,
        iters: iters.max(1),
        cells,
        grid: None,
        tiers: Vec::new(),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Sweeps [`GRID_APP`] across the full twelve-configuration static
/// grid with one shared [`TraceCache`]: the kernel-trace stream is
/// built once per traversal direction and replayed for every
/// coherence × consistency cell of that direction, exactly as the
/// study runner does (docs/performance.md, "Sweep-level reuse").
pub fn run_grid(progress: &mut dyn FnMut(&str)) -> GridTiming {
    let graph = rmat_graph(14, BENCH_SCALE);
    let spec = ExperimentSpec::at_scale(BENCH_SCALE);
    let graph_fp = graph_fingerprint(&graph);
    let configs: Vec<SystemConfig> = GRID_CONFIGS
        .iter()
        .map(|code| code.parse().expect("grid config codes are valid"))
        .collect();
    let run_cell = |stream: &[Arc<ggs_sim::trace::KernelTrace>], config: SystemConfig| {
        run_stream_budgeted(stream, GRID_APP, config, &spec, Tracer::off(), None)
            .expect("grid cells are supported app/config pairs")
    };
    // Warm the allocator and page tables outside both measured passes.
    let warmup = produce_trace_stream(
        GRID_APP,
        &graph,
        configs[0].propagation,
        spec.params.tb_size,
    );
    run_cell(&warmup, configs[0]);
    drop(warmup);

    // Pass 1: the pre-reuse sweep path — every cell rebuilds its
    // kernel-trace stream.
    let start = Instant::now();
    for &config in &configs {
        let stream =
            produce_trace_stream(GRID_APP, &graph, config.propagation, spec.params.tb_size);
        run_cell(&stream, config);
    }
    let uncached_wall = start.elapsed();

    // Pass 2: the shared-cache sweep path — one build per direction.
    let cache = TraceCache::new(256 << 20);
    let start = Instant::now();
    for &config in &configs {
        let key = StreamKey {
            app: GRID_APP,
            graph_fp,
            prop: config.propagation,
            tb_size: spec.params.tb_size,
            // The grid sweeps static directions only; static props have
            // no direction policy, so the fingerprint is zero.
            policy_fp: 0,
        };
        let stream = cache.get_or_build(
            key,
            BENCH_GRAPH,
            &ggs_trace::NOOP,
            || 0,
            || {
                Arc::new(produce_trace_stream(
                    GRID_APP,
                    &graph,
                    config.propagation,
                    spec.params.tb_size,
                ))
            },
        );
        run_cell(&stream, config);
    }
    let wall = start.elapsed();
    let stats = cache.stats();
    let timing = GridTiming {
        app: GRID_APP.mnemonic().to_owned(),
        configs: GRID_CONFIGS.len() as u32,
        wall,
        uncached_wall,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    };
    progress(&format!(
        "grid {}x{}: {:8.1} ms cached vs {:8.1} ms uncached  \
         ({:.1} cells/sec, {:.2}x reuse, {} trace builds, {} hits)",
        timing.app,
        timing.configs,
        wall.as_secs_f64() * 1e3,
        uncached_wall.as_secs_f64() * 1e3,
        timing.cells_per_sec(),
        timing.speedup(),
        stats.misses,
        stats.hits,
    ));
    timing
}

/// Runs one scale tier: PR under SGR on the named `rmat<N>` graph
/// (scaled by [`BENCH_SCALE`]), bounded by [`TIER_BUDGET_CYCLES`].
/// Returns an error for an unknown tier name or a budget breach —
/// a tier that cannot finish inside the budget is a regression, not
/// a measurement.
pub fn run_tier(tier: &str, progress: &mut dyn FnMut(&str)) -> Result<TierTiming, String> {
    let exp: u32 = tier
        .strip_prefix("rmat")
        .and_then(|s| s.parse().ok())
        .filter(|e| (4..=28).contains(e))
        .ok_or_else(|| format!("unknown tier {tier:?} (expected rmat<N>, 4 <= N <= 28)"))?;
    let graph = rmat_graph(exp, BENCH_SCALE);
    let spec = ExperimentSpec::builder()
        .scale(BENCH_SCALE)
        .max_sim_cycles(TIER_BUDGET_CYCLES)
        .build()
        .map_err(|e| e.to_string())?;
    let config: SystemConfig = "SGR".parse().expect("tier config code is valid");
    let start = Instant::now();
    let stats = run_workload_budgeted(AppKind::Pr, &graph, config, &spec, Tracer::off(), None)
        .map_err(|e| format!("tier {tier} breached its simulation budget: {e}"))?;
    let wall = start.elapsed();
    let timing = TierTiming {
        tier: tier.to_owned(),
        vertices: graph.num_vertices() as u64,
        edges: graph.num_edges(),
        wall,
        cycles: stats.total_cycles(),
        kernels: stats.kernels,
    };
    progress(&format!(
        "tier {:6}: {:8.1} ms  ({} vertices, {} edges, {} cycles, {} kernels)",
        timing.tier,
        wall.as_secs_f64() * 1e3,
        timing.vertices,
        timing.edges,
        timing.cycles,
        timing.kernels,
    ));
    Ok(timing)
}

/// Compares a fresh measurement against a committed baseline.
///
/// Returns the list of failures (empty when the gate passes):
/// * slice throughput (cells/sec) dropped more than `threshold_pct`
///   percent;
/// * grid (shared-trace-cache sweep) throughput dropped more than
///   `threshold_pct` percent, when both reports carry a grid arm;
/// * peak RSS grew more than `threshold_pct` percent, when both
///   reports carry one — the memory gate for the sweep path;
/// * any slice cell's simulated cycle count changed — cycles are
///   deterministic, so a mismatch means simulator behavior changed and
///   `BENCH_sim.json` must be refreshed in the same change
///   (`repro bench --out BENCH_sim.json`);
/// * any tier measured by both reports drifted in cycles or kernels
///   (tiers missing from one side are skipped, so `--tier`-restricted
///   runs can still gate against a full baseline).
pub fn regression_failures(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let base = baseline.cells_per_sec();
    let now = current.cells_per_sec();
    if base > 0.0 && now < base * (1.0 - threshold_pct / 100.0) {
        failures.push(format!(
            "throughput regressed more than {threshold_pct}%: {now:.3} cells/sec vs baseline {base:.3}"
        ));
    }
    if let (Some(g), Some(gb)) = (&current.grid, &baseline.grid) {
        let (now, base) = (g.cells_per_sec(), gb.cells_per_sec());
        if base > 0.0 && now < base * (1.0 - threshold_pct / 100.0) {
            failures.push(format!(
                "grid throughput regressed more than {threshold_pct}%: {now:.3} cells/sec \
                 vs baseline {base:.3}"
            ));
        }
    }
    if let (Some(now), Some(base)) = (current.peak_rss_kb, baseline.peak_rss_kb) {
        if now as f64 > base as f64 * (1.0 + threshold_pct / 100.0) {
            failures.push(format!(
                "peak RSS regressed more than {threshold_pct}%: {now} KiB vs baseline {base} KiB \
                 (refresh BENCH_sim.json if intentional)"
            ));
        }
    }
    for b in &baseline.cells {
        let Some(c) = current
            .cells
            .iter()
            .find(|c| c.app == b.app && c.config == b.config)
        else {
            failures.push(format!(
                "cell {}/{} missing from the current run",
                b.app, b.config
            ));
            continue;
        };
        if c.cycles != b.cycles || c.kernels != b.kernels {
            failures.push(format!(
                "cell {}/{} changed behavior: {} cycles / {} kernels vs baseline {} / {} \
                 (refresh BENCH_sim.json if intentional)",
                b.app, b.config, c.cycles, c.kernels, b.cycles, b.kernels
            ));
        }
    }
    for b in &baseline.tiers {
        let Some(t) = current.tiers.iter().find(|t| t.tier == b.tier) else {
            continue; // `--tier`-restricted run: absent tiers are not gated
        };
        if t.cycles != b.cycles || t.kernels != b.kernels {
            failures.push(format!(
                "tier {} changed behavior: {} cycles / {} kernels vs baseline {} / {} \
                 (refresh BENCH_sim.json if intentional)",
                b.tier, t.cycles, t.kernels, b.cycles, b.kernels
            ));
        }
    }
    failures
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`);
/// `None` on platforms without procfs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(wall_ms: &[(u64, u64)]) -> BenchReport {
        // (wall_ms, cycles) pairs become synthetic cells.
        BenchReport {
            scale: BENCH_SCALE,
            iters: 1,
            cells: wall_ms
                .iter()
                .enumerate()
                .map(|(i, &(ms, cycles))| CellTiming {
                    app: format!("A{i}"),
                    config: "TD0".to_owned(),
                    wall: Duration::from_millis(ms),
                    cycles,
                    kernels: 3,
                })
                .collect(),
            grid: None,
            tiers: Vec::new(),
            peak_rss_kb: Some(1024),
        }
    }

    fn full_report() -> BenchReport {
        let mut r = report(&[(100, 5000), (250, 7000)]);
        r.grid = Some(GridTiming {
            app: "PR".to_owned(),
            configs: 12,
            wall: Duration::from_millis(60),
            uncached_wall: Duration::from_millis(90),
            cache_hits: 10,
            cache_misses: 2,
        });
        r.tiers = vec![
            TierTiming {
                tier: "rmat14".to_owned(),
                vertices: 2048,
                edges: 32768,
                wall: Duration::from_millis(40),
                cycles: 900_000,
                kernels: 12,
            },
            TierTiming {
                tier: "rmat16".to_owned(),
                vertices: 8192,
                edges: 131072,
                wall: Duration::from_millis(170),
                cycles: 3_600_000,
                kernels: 12,
            },
        ];
        r
    }

    #[test]
    fn json_round_trips() {
        let r = full_report();
        let parsed = BenchReport::from_json(&r.to_json_pretty()).unwrap();
        assert_eq!(parsed.cells.len(), 2);
        assert_eq!(parsed.cells[1].cycles, 7000);
        assert_eq!(parsed.peak_rss_kb, Some(1024));
        assert!((parsed.cells_per_sec() - r.cells_per_sec()).abs() < 1e-3);
        let grid = parsed.grid.as_ref().unwrap();
        assert_eq!(grid.configs, 12);
        assert_eq!(grid.cache_hits, 10);
        assert_eq!(grid.cache_misses, 2);
        assert!((grid.cells_per_sec() - 200.0).abs() < 1e-6);
        assert!((grid.speedup() - 1.5).abs() < 1e-6);
        assert_eq!(parsed.tiers.len(), 2);
        assert_eq!(parsed.tiers[1].tier, "rmat16");
        assert_eq!(parsed.tiers[1].cycles, 3_600_000);
        assert_eq!(parsed.tiers[1].edges, 131072);
    }

    #[test]
    fn json_round_trips_without_grid_or_tiers() {
        let r = report(&[(100, 5000)]);
        let parsed = BenchReport::from_json(&r.to_json_pretty()).unwrap();
        assert_eq!(parsed.grid, None);
        assert!(parsed.tiers.is_empty());
    }

    #[test]
    fn rejects_foreign_schema() {
        assert!(BenchReport::from_json("{\"schema\": \"other\"}").is_err());
        assert!(BenchReport::from_json("{\"schema\": \"ggs-bench-v1\"}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn regression_gate_passes_when_no_worse() {
        let base = report(&[(100, 5000)]);
        let same = report(&[(110, 5000)]); // 10% slower: within 25%
        assert_eq!(
            regression_failures(&same, &base, 25.0),
            Vec::<String>::new()
        );
    }

    #[test]
    fn regression_gate_fails_on_big_slowdown() {
        let base = report(&[(100, 5000)]);
        let slow = report(&[(200, 5000)]); // 2x slower
        let failures = regression_failures(&slow, &base, 25.0);
        assert!(
            failures.iter().any(|f| f.contains("throughput regressed")),
            "{failures:?}"
        );
    }

    #[test]
    fn regression_gate_fails_on_cycle_drift() {
        let base = report(&[(100, 5000)]);
        let drifted = report(&[(100, 5001)]);
        let failures = regression_failures(&drifted, &base, 25.0);
        assert!(
            failures.iter().any(|f| f.contains("changed behavior")),
            "{failures:?}"
        );
    }

    #[test]
    fn regression_gate_fails_on_rss_growth() {
        let base = report(&[(100, 5000)]);
        let mut bloated = report(&[(100, 5000)]);
        bloated.peak_rss_kb = Some(2048); // 2x the baseline's 1024
        let failures = regression_failures(&bloated, &base, 25.0);
        assert!(
            failures.iter().any(|f| f.contains("peak RSS regressed")),
            "{failures:?}"
        );
        // Shrinking (or an unmeasurable platform) never fails.
        let mut slim = report(&[(100, 5000)]);
        slim.peak_rss_kb = Some(512);
        assert!(regression_failures(&slim, &base, 25.0).is_empty());
        slim.peak_rss_kb = None;
        assert!(regression_failures(&slim, &base, 25.0).is_empty());
    }

    #[test]
    fn regression_gate_fails_on_grid_slowdown() {
        let base = full_report();
        let mut slow = full_report();
        slow.grid.as_mut().unwrap().wall = Duration::from_millis(120); // 2x
        let failures = regression_failures(&slow, &base, 25.0);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("grid throughput regressed")),
            "{failures:?}"
        );
    }

    #[test]
    fn regression_gate_fails_on_tier_drift_but_skips_absent_tiers() {
        let base = full_report();
        let mut drifted = full_report();
        drifted.tiers[1].cycles += 1;
        let failures = regression_failures(&drifted, &base, 25.0);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("tier rmat16 changed behavior")),
            "{failures:?}"
        );
        // A `--tier`-restricted run gates only the tiers it measured.
        let mut restricted = full_report();
        restricted.tiers.truncate(1);
        assert!(regression_failures(&restricted, &base, 25.0).is_empty());
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }

    #[test]
    fn slice_cells_are_supported_pairings() {
        for (app, code) in SLICE {
            let config: SystemConfig = code.parse().expect("valid code");
            assert!(
                app.supported_propagations().contains(&config.propagation),
                "{app}/{code} is not a runnable cell"
            );
        }
    }

    #[test]
    fn grid_configs_cover_the_full_static_grid() {
        let mut seen = std::collections::BTreeSet::new();
        for code in GRID_CONFIGS {
            let config: SystemConfig = code.parse().expect("valid code");
            assert!(
                GRID_APP
                    .supported_propagations()
                    .contains(&config.propagation),
                "{code} is not runnable for {GRID_APP:?}"
            );
            assert!(seen.insert(code), "duplicate grid config {code}");
        }
        assert_eq!(seen.len(), 12);
    }
}
