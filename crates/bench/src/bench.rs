//! The `repro bench` performance baseline: wall-clock timing of a
//! fixed small study slice, serialized to `BENCH_sim.json`.
//!
//! The slice is the simulator's perf canary: nine (application,
//! configuration) cells on a synthetic rmat14 graph at scale 0.125,
//! chosen to exercise both coherence protocols, all three consistency
//! models, and all three traversal directions. `repro bench` times
//! each cell (best of `--iters` runs, through the shim-criterion
//! `Bencher`), writes the report as JSON, and can compare it against a
//! committed baseline to gate regressions in CI (see
//! `docs/performance.md`).
//!
//! Simulated cycle counts are recorded alongside the wall-clock
//! numbers: cycles are deterministic, so a cycles mismatch against the
//! baseline means simulator *behavior* changed (intentionally or not)
//! and the baseline needs a refresh in the same change.

use std::time::{Duration, Instant};

use criterion::Bencher;
use ggs_apps::AppKind;
use ggs_core::experiment::{run_workload_traced, ExperimentSpec};
use ggs_core::json::{self, Value};
use ggs_graph::synth::{DegreeModel, SynthConfig};
use ggs_graph::Csr;
use ggs_model::SystemConfig;
use ggs_trace::Tracer;

/// Scale factor of the benchmark slice (inputs and caches together,
/// matching the study default).
pub const BENCH_SCALE: f64 = 0.125;

/// Graph of the benchmark slice: `rmat14` (2^14 vertices before
/// scaling, average degree 16, hubbed power-law tail).
pub const BENCH_GRAPH: &str = "rmat14";

/// The nine benchmark cells: three applications, each under three
/// configurations spanning coherence × consistency × direction.
/// CC is a dynamic (push+pull) traversal, so its cells use `D*` codes.
pub const SLICE: [(AppKind, &str); 9] = [
    (AppKind::Pr, "TD0"),
    (AppKind::Pr, "TDR"),
    (AppKind::Pr, "SGR"),
    (AppKind::Bfs, "TD0"),
    (AppKind::Bfs, "TDR"),
    (AppKind::Bfs, "SGR"),
    (AppKind::Cc, "DG1"),
    (AppKind::Cc, "DD1"),
    (AppKind::Cc, "DGR"),
];

/// Generates an `rmat<exp>` synthetic power-law graph (2^exp vertices
/// before scaling, average degree 16), as used by `repro trace` and
/// the benchmark slice.
pub fn rmat_graph(exp: u32, scale: f64) -> Csr {
    let model = DegreeModel::log_normal(1.0).with_hubs(0.05, 256.0, 2048.0, 1.5);
    SynthConfig::custom(format!("rmat{exp}"), 1u32 << exp, 16.0, model, 0.5)
        .scale(scale)
        .generate()
}

/// Timing of one benchmark cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Application mnemonic (`PR`, `BFS`, `CC`).
    pub app: String,
    /// Configuration code (`TD0`, `SGR`, …).
    pub config: String,
    /// Best wall-clock time over the measured iterations.
    pub wall: Duration,
    /// Simulated GPU cycles the cell produced (deterministic).
    pub cycles: u64,
    /// Kernels the cell launched (deterministic).
    pub kernels: u64,
}

/// One `repro bench` measurement: the whole slice plus aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Scale factor of the run.
    pub scale: f64,
    /// Iterations measured per cell (the best is kept).
    pub iters: u32,
    /// Per-cell timings, in slice order.
    pub cells: Vec<CellTiming>,
    /// Peak resident set size in KiB, when the platform exposes it.
    pub peak_rss_kb: Option<u64>,
}

impl BenchReport {
    /// Sum of the per-cell best wall-clock times.
    pub fn total_wall(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }

    /// Cells simulated per second of wall-clock time — the headline
    /// perf-trajectory number.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.total_wall().as_secs_f64();
        if secs > 0.0 {
            self.cells.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Serializes the report as pretty-printed JSON (the
    /// `BENCH_sim.json` schema, `ggs-bench-v1`).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"ggs-bench-v1\",\n");
        out.push_str(&format!("  \"graph\": \"{BENCH_GRAPH}\",\n"));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"iters\": {},\n", self.iters));
        out.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n",
            self.total_wall().as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  \"cells_per_sec\": {:.4},\n",
            self.cells_per_sec()
        ));
        match self.peak_rss_kb {
            Some(kb) => out.push_str(&format!("  \"peak_rss_kb\": {kb},\n")),
            None => out.push_str("  \"peak_rss_kb\": null,\n"),
        }
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"app\": \"{}\", \"config\": \"{}\", \"wall_ms\": {:.3}, \
                 \"cycles\": {}, \"kernels\": {}}}{}\n",
                c.app,
                c.config,
                c.wall.as_secs_f64() * 1e3,
                c.cycles,
                c.kernels,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by
    /// [`BenchReport::to_json_pretty`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != "ggs-bench-v1" {
            return Err(format!("unsupported bench schema {schema:?}"));
        }
        let field_f64 = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let cells = v
            .get("cells")
            .and_then(Value::as_array)
            .ok_or("missing cells array")?
            .iter()
            .map(|c| -> Result<CellTiming, String> {
                let s = |k: &str| {
                    c.get(k)
                        .and_then(Value::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| format!("cell missing {k:?}"))
                };
                let n = |k: &str| {
                    c.get(k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("cell missing {k:?}"))
                };
                Ok(CellTiming {
                    app: s("app")?,
                    config: s("config")?,
                    wall: Duration::from_secs_f64(n("wall_ms")? / 1e3),
                    cycles: n("cycles")? as u64,
                    kernels: n("kernels")? as u64,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            scale: field_f64("scale")?,
            iters: field_f64("iters")? as u32,
            cells,
            peak_rss_kb: v.get("peak_rss_kb").and_then(Value::as_u64),
        })
    }
}

/// Runs the benchmark slice: each cell is timed `iters` times through
/// the shim-criterion [`Bencher`] and the best iteration is kept.
/// `progress` receives one human-readable line per cell.
pub fn run_slice(iters: u32, progress: &mut dyn FnMut(&str)) -> BenchReport {
    let graph = rmat_graph(14, BENCH_SCALE);
    let spec = ExperimentSpec::at_scale(BENCH_SCALE);
    let mut cells = Vec::with_capacity(SLICE.len());
    for (app, code) in SLICE {
        let config: SystemConfig = code.parse().expect("slice config codes are valid");
        let mut best = Duration::MAX;
        let mut stats = None;
        for _ in 0..iters.max(1) {
            let mut b = Bencher::default();
            b.iter_custom(|_| {
                let start = Instant::now();
                let s = run_workload_traced(app, &graph, config, &spec, Tracer::off())
                    .expect("slice cells are supported app/config pairs");
                let wall = start.elapsed();
                stats = Some(s);
                wall
            });
            best = best.min(b.mean().expect("iter_custom always measures"));
        }
        let stats = stats.expect("at least one iteration ran");
        progress(&format!(
            "{:4} {code}: {:8.1} ms  ({} cycles, {} kernels)",
            app.mnemonic(),
            best.as_secs_f64() * 1e3,
            stats.total_cycles(),
            stats.kernels
        ));
        cells.push(CellTiming {
            app: app.mnemonic().to_owned(),
            config: code.to_owned(),
            wall: best,
            cycles: stats.total_cycles(),
            kernels: stats.kernels,
        });
    }
    BenchReport {
        scale: BENCH_SCALE,
        iters: iters.max(1),
        cells,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Compares a fresh measurement against a committed baseline.
///
/// Returns the list of failures (empty when the gate passes):
/// * throughput (cells/sec) dropped more than `threshold_pct` percent;
/// * any cell's simulated cycle count changed — cycles are
///   deterministic, so a mismatch means simulator behavior changed and
///   `BENCH_sim.json` must be refreshed in the same change
///   (`repro bench --out BENCH_sim.json`).
pub fn regression_failures(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let base = baseline.cells_per_sec();
    let now = current.cells_per_sec();
    if base > 0.0 && now < base * (1.0 - threshold_pct / 100.0) {
        failures.push(format!(
            "throughput regressed more than {threshold_pct}%: {now:.3} cells/sec vs baseline {base:.3}"
        ));
    }
    for b in &baseline.cells {
        let Some(c) = current
            .cells
            .iter()
            .find(|c| c.app == b.app && c.config == b.config)
        else {
            failures.push(format!(
                "cell {}/{} missing from the current run",
                b.app, b.config
            ));
            continue;
        };
        if c.cycles != b.cycles || c.kernels != b.kernels {
            failures.push(format!(
                "cell {}/{} changed behavior: {} cycles / {} kernels vs baseline {} / {} \
                 (refresh BENCH_sim.json if intentional)",
                b.app, b.config, c.cycles, c.kernels, b.cycles, b.kernels
            ));
        }
    }
    failures
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`);
/// `None` on platforms without procfs.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(wall_ms: &[(u64, u64)]) -> BenchReport {
        // (wall_ms, cycles) pairs become synthetic cells.
        BenchReport {
            scale: BENCH_SCALE,
            iters: 1,
            cells: wall_ms
                .iter()
                .enumerate()
                .map(|(i, &(ms, cycles))| CellTiming {
                    app: format!("A{i}"),
                    config: "TD0".to_owned(),
                    wall: Duration::from_millis(ms),
                    cycles,
                    kernels: 3,
                })
                .collect(),
            peak_rss_kb: Some(1024),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(&[(100, 5000), (250, 7000)]);
        let parsed = BenchReport::from_json(&r.to_json_pretty()).unwrap();
        assert_eq!(parsed.cells.len(), 2);
        assert_eq!(parsed.cells[1].cycles, 7000);
        assert_eq!(parsed.peak_rss_kb, Some(1024));
        assert!((parsed.cells_per_sec() - r.cells_per_sec()).abs() < 1e-3);
    }

    #[test]
    fn rejects_foreign_schema() {
        assert!(BenchReport::from_json("{\"schema\": \"other\"}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn regression_gate_passes_when_no_worse() {
        let base = report(&[(100, 5000)]);
        let same = report(&[(110, 5000)]); // 10% slower: within 25%
        assert_eq!(
            regression_failures(&same, &base, 25.0),
            Vec::<String>::new()
        );
    }

    #[test]
    fn regression_gate_fails_on_big_slowdown() {
        let base = report(&[(100, 5000)]);
        let slow = report(&[(200, 5000)]); // 2x slower
        let failures = regression_failures(&slow, &base, 25.0);
        assert!(
            failures.iter().any(|f| f.contains("throughput regressed")),
            "{failures:?}"
        );
    }

    #[test]
    fn regression_gate_fails_on_cycle_drift() {
        let base = report(&[(100, 5000)]);
        let drifted = report(&[(100, 5001)]);
        let failures = regression_failures(&drifted, &base, 25.0);
        assert!(
            failures.iter().any(|f| f.contains("changed behavior")),
            "{failures:?}"
        );
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }

    #[test]
    fn slice_cells_are_supported_pairings() {
        for (app, code) in SLICE {
            let config: SystemConfig = code.parse().expect("valid code");
            assert!(
                app.supported_propagations().contains(&config.propagation),
                "{app}/{code} is not a runnable cell"
            );
        }
    }
}
