//! Plain-text table rendering for the reproduction harness.

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.lines().count() >= 3);
    }
}
