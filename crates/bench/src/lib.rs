//! Benchmark and reproduction harness for the GGS workspace.
//!
//! The library surface is minimal: shared helpers for the `repro`
//! binary (which regenerates every table and figure of the paper) and
//! the Criterion benches. See the `repro` binary (`src/bin/repro.rs`)
//! and `benches/` for the entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod render;
pub mod svg;
