//! Property-based tests of the taxonomy metrics and the decision tree.

use proptest::prelude::*;

use ggs_graph::GraphBuilder;
use ggs_model::classes::Level;
use ggs_model::metrics::{imbalance, kmeans2, reuse};
use ggs_model::profile::GraphProfile;
use ggs_model::taxonomy::{AlgoBias, AlgoProfile, Propagation, Traversal};
use ggs_model::{predict_full, predict_partial, MetricParams};
use ggs_sim::ConsistencyModel;

fn levels() -> impl Strategy<Value = Level> {
    prop_oneof![Just(Level::Low), Just(Level::Medium), Just(Level::High)]
}

fn biases() -> impl Strategy<Value = AlgoBias> {
    prop_oneof![
        Just(AlgoBias::Source),
        Just(AlgoBias::Target),
        Just(AlgoBias::Symmetric)
    ]
}

fn algo_profiles() -> impl Strategy<Value = AlgoProfile> {
    prop_oneof![
        (biases(), biases()).prop_map(|(c, i)| AlgoProfile::new_static(c, i)),
        Just(AlgoProfile::new_dynamic()),
    ]
}

fn edge_lists(max_v: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_v).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..300);
        (Just(n), edges)
    })
}

proptest! {
    /// The Reuse metric is always in [0, 1], and ANL + ANR equals the
    /// average degree.
    #[test]
    fn reuse_is_bounded((n, edges) in edge_lists(1024)) {
        let g = GraphBuilder::new(n).edges(edges).symmetric(true).build();
        let r = reuse(&g, &MetricParams::default());
        prop_assert!((0.0..=1.0).contains(&r.reuse), "reuse = {}", r.reuse);
        if g.num_edges() > 0 {
            let avg = g.num_edges() as f64 / n as f64;
            prop_assert!((r.anl + r.anr - avg).abs() < 1e-9);
        }
    }

    /// The Imbalance metric is a fraction of thread blocks.
    #[test]
    fn imbalance_is_a_fraction((n, edges) in edge_lists(1024)) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let i = imbalance(&g, &MetricParams::default());
        prop_assert!((0.0..=1.0).contains(&i));
    }

    /// k-means centroids bracket the data and are ordered.
    #[test]
    fn kmeans_centroids_bracket(values in prop::collection::vec(0.0f64..1e6, 1..64)) {
        let (lo, hi) = kmeans2(&values);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= hi);
        prop_assert!(lo >= min - 1e-9 && hi <= max + 1e-9);
    }

    /// Level classification is monotone in the value.
    #[test]
    fn level_classification_monotone(a in 0.0f64..100.0, b in 0.0f64..100.0, lo in 0.0f64..50.0, span in 0.0f64..50.0) {
        let hi = lo + span;
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Level::classify(x, lo, hi) <= Level::classify(y, lo, hi));
    }

    /// The full decision tree always emits a valid configuration:
    /// dynamic traversal gets DD1, static traversal gets push or pull
    /// with pull always paired with GPU coherence + DRF0.
    #[test]
    fn full_tree_output_is_well_formed(
        algo in algo_profiles(),
        v in levels(), r in levels(), i in levels(),
    ) {
        let g = GraphProfile::from_classes(v, r, i);
        let cfg = predict_full(&algo, &g);
        match algo.traversal {
            Traversal::Dynamic => prop_assert_eq!(cfg.code(), "DD1"),
            Traversal::Static => {
                prop_assert_ne!(cfg.propagation, Propagation::PushPull);
                if cfg.propagation == Propagation::Pull {
                    prop_assert_eq!(cfg.code(), "TG0");
                }
            }
        }
    }

    /// The partial tree never recommends DRFrlx, and it only disagrees
    /// with the full tree on the push/pull split or by weakening the
    /// consistency.
    #[test]
    fn partial_tree_respects_restriction(
        algo in algo_profiles(),
        v in levels(), r in levels(), i in levels(),
    ) {
        let g = GraphProfile::from_classes(v, r, i);
        let partial = predict_partial(&algo, &g);
        prop_assert_ne!(partial.consistency, ConsistencyModel::DrfRlx);
        let full = predict_full(&algo, &g);
        if full.propagation == partial.propagation
            && full.propagation == Propagation::Push
        {
            // Same propagation: the partial model keeps the coherence
            // choice and only collapses the consistency dimension.
            prop_assert_eq!(partial.coherence, full.coherence);
        }
    }

    /// When either algorithmic property favors the source, both trees
    /// recommend push (§IV-A1, §IV-B) for static traversals.
    #[test]
    fn source_bias_forces_push(
        info in biases(),
        v in levels(), r in levels(), i in levels(),
    ) {
        let algo = AlgoProfile::new_static(AlgoBias::Source, info);
        let g = GraphProfile::from_classes(v, r, i);
        prop_assert_eq!(predict_full(&algo, &g).propagation, Propagation::Push);
        prop_assert_eq!(predict_partial(&algo, &g).propagation, Propagation::Push);
    }

    /// Measuring a profile and classifying it agrees with the class
    /// thresholds (internal consistency of GraphProfile).
    #[test]
    fn profile_classes_match_thresholds((n, edges) in edge_lists(512)) {
        let g = GraphBuilder::new(n).edges(edges).symmetric(true).build();
        let params = MetricParams::default();
        let p = GraphProfile::measure(&g, &params);
        prop_assert_eq!(
            p.volume,
            Level::classify(p.volume_kb, params.volume_low_kb(), params.volume_high_kb())
        );
        prop_assert_eq!(
            p.reuse_class,
            Level::classify(p.reuse, params.reuse_low, params.reuse_high)
        );
        prop_assert_eq!(
            p.imbalance_class,
            Level::classify(p.imbalance, params.imb_low, params.imb_high)
        );
    }
}
