//! Calibration: the six synthetic presets must land in the same
//! Table II metric classes as the paper's SuiteSparse inputs, at the
//! reduced scale the reproduction harness runs at (with cache
//! capacities scaled by the same factor).

use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{GraphProfile, MetricParams};

const SCALE: f64 = 0.125;

fn profile(preset: GraphPreset) -> GraphProfile {
    let graph = SynthConfig::preset(preset).scale(SCALE).generate();
    GraphProfile::measure(&graph, &MetricParams::default().scaled_caches(SCALE))
}

/// Expected (volume, reuse, imbalance) classes from Table II.
///
/// Note: WNG's printed Reuse value in Table II is a typesetting artifact
/// (see `GraphPreset` docs); its class is (L), which is what we check.
const EXPECTED: [(GraphPreset, &str); 6] = [
    (GraphPreset::Amz, "HML"),
    (GraphPreset::Dct, "MMM"),
    (GraphPreset::Eml, "HLH"),
    (GraphPreset::Ols, "MHL"),
    (GraphPreset::Raj, "LHH"),
    (GraphPreset::Wng, "MLL"),
];

#[test]
fn presets_reproduce_table2_classes() {
    for (preset, want) in EXPECTED {
        let p = profile(preset);
        assert_eq!(
            p.class_code(),
            want,
            "{preset:?}: vol={:.1}KB reuse={:.3} imb={:.3}",
            p.volume_kb,
            p.reuse,
            p.imbalance
        );
    }
}

#[test]
fn presets_reproduce_table2_degree_shapes() {
    // Average degree is scale-invariant and must track Table II closely.
    let want_avg = [
        (GraphPreset::Amz, 16.265),
        (GraphPreset::Dct, 3.382),
        (GraphPreset::Eml, 3.159),
        (GraphPreset::Ols, 7.740),
        (GraphPreset::Raj, 7.906),
        (GraphPreset::Wng, 3.919),
    ];
    for (preset, avg) in want_avg {
        let p = profile(preset);
        assert!(
            (p.degrees.avg - avg).abs() / avg < 0.05,
            "{preset:?}: avg degree {} vs Table II {avg}",
            p.degrees.avg
        );
    }
}

#[test]
fn heavy_tailed_presets_have_heavy_tails() {
    // EML and RAJ are the power-law/hub inputs: their max degree must be
    // far above their average even at reduced scale.
    for preset in [GraphPreset::Eml, GraphPreset::Raj] {
        let p = profile(preset);
        assert!(
            (p.degrees.max as f64) > 15.0 * p.degrees.avg,
            "{preset:?}: max {} avg {}",
            p.degrees.max,
            p.degrees.avg
        );
    }
    // WNG is a constant-degree mesh.
    let wng = profile(GraphPreset::Wng);
    assert!(wng.degrees.std_dev < 0.5);
    assert!(wng.degrees.max <= 6);
}

#[test]
fn model_predictions_match_table5_on_synthetic_inputs() {
    use ggs_model::predict_full;
    use ggs_model::taxonomy::{AlgoBias, AlgoProfile};

    let apps = [
        AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Source), // PR
        AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Source),    // SSSP
        AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Symmetric), // MIS
        AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Target), // CLR
        AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Symmetric), // BC
        AlgoProfile::new_dynamic(),                                     // CC
    ];
    let expected: [(GraphPreset, [&str; 6]); 6] = [
        (GraphPreset::Amz, ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
        (GraphPreset::Dct, ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
        (GraphPreset::Eml, ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
        (GraphPreset::Ols, ["SDR", "SDR", "TG0", "TG0", "SDR", "DD1"]),
        (GraphPreset::Raj, ["SDR", "SDR", "SDR", "SDR", "SDR", "DD1"]),
        (GraphPreset::Wng, ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
    ];
    for (preset, row) in expected {
        let p = profile(preset);
        for (app, want) in apps.iter().zip(row.iter()) {
            assert_eq!(predict_full(app, &p).code(), *want, "{preset:?} {app:?}");
        }
    }
}
