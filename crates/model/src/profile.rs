//! Graph-structure profile: the measured + classified metric triple of
//! one input graph (one row of the paper's Table II).

use ggs_graph::{Csr, DegreeStats};

use crate::classes::Level;
use crate::metrics;
use crate::params::MetricParams;

/// Measured and classified structural metrics of an input graph.
///
/// # Example
///
/// ```
/// use ggs_graph::synth::{GraphPreset, SynthConfig};
/// use ggs_model::{GraphProfile, MetricParams, Level};
///
/// let g = SynthConfig::preset(GraphPreset::Ols).scale(0.05).generate();
/// let p = GraphProfile::measure(&g, &MetricParams::default().scaled_caches(0.05));
/// assert_eq!(p.reuse_class, Level::High); // OLS is the high-locality input
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProfile {
    /// Vertex count.
    pub vertices: u32,
    /// Directed edge count.
    pub edges: u64,
    /// Degree statistics (Table II's Max/Avg/Std Dev columns).
    pub degrees: DegreeStats,
    /// Volume in KB (Equation 1).
    pub volume_kb: f64,
    /// Discretized volume.
    pub volume: Level,
    /// Average number of thread-block-local neighbors (Equation 4).
    pub anl: f64,
    /// Average number of thread-block-remote neighbors (Equation 5).
    pub anr: f64,
    /// Reuse metric (Equation 6).
    pub reuse: f64,
    /// Discretized reuse.
    pub reuse_class: Level,
    /// Imbalance metric (Equation 7).
    pub imbalance: f64,
    /// Discretized imbalance.
    pub imbalance_class: Level,
}

impl GraphProfile {
    /// Measures every metric of `graph` and classifies them against
    /// `params`' thresholds.
    pub fn measure(graph: &Csr, params: &MetricParams) -> Self {
        let volume_kb = metrics::volume_kb(graph, params);
        let r = metrics::reuse(graph, params);
        let imbalance = metrics::imbalance(graph, params);
        Self {
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            degrees: graph.degree_stats(),
            volume_kb,
            volume: Level::classify(volume_kb, params.volume_low_kb(), params.volume_high_kb()),
            anl: r.anl,
            anr: r.anr,
            reuse: r.reuse,
            reuse_class: Level::classify(r.reuse, params.reuse_low, params.reuse_high),
            imbalance,
            imbalance_class: Level::classify(imbalance, params.imb_low, params.imb_high),
        }
    }

    /// Builds a profile directly from classified levels (useful for
    /// exploring the decision tree without a concrete graph).
    pub fn from_classes(volume: Level, reuse_class: Level, imbalance_class: Level) -> Self {
        Self {
            vertices: 0,
            edges: 0,
            degrees: DegreeStats::default(),
            volume_kb: 0.0,
            volume,
            anl: 0.0,
            anr: 0.0,
            reuse: 0.0,
            reuse_class,
            imbalance: 0.0,
            imbalance_class,
        }
    }

    /// The three-letter class string, e.g. `"HML"` for high volume,
    /// medium reuse, low imbalance (Table II order).
    pub fn class_code(&self) -> String {
        format!(
            "{}{}{}",
            self.volume.letter(),
            self.reuse_class.letter(),
            self.imbalance_class.letter()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    #[test]
    fn measure_small_graph() {
        let g = GraphBuilder::new(512)
            .edges((0..511u32).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let p = GraphProfile::measure(&g, &MetricParams::default());
        assert_eq!(p.vertices, 512);
        assert_eq!(p.edges, 1022);
        assert_eq!(p.volume, Level::Low);
        // A chain is almost entirely block-local.
        assert_eq!(p.reuse_class, Level::High);
        assert_eq!(p.imbalance_class, Level::Low);
        assert_eq!(p.class_code(), "LHL");
    }

    #[test]
    fn from_classes_roundtrip() {
        let p = GraphProfile::from_classes(Level::High, Level::Medium, Level::Low);
        assert_eq!(p.class_code(), "HML");
    }
}
