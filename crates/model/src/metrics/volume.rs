//! Volume metric (Equation 1): per-core working-set proxy.

use ggs_graph::Csr;

use crate::params::MetricParams;

/// Computes the Volume metric in kilobytes:
/// `(|V| + |E|) × bytes_per_element / 1024 / |SM|` (Equation 1, scaled to
/// KB as in Table II).
///
/// # Example
///
/// ```
/// use ggs_graph::Csr;
/// use ggs_model::{metrics::volume_kb, MetricParams};
///
/// let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
/// let v = volume_kb(&g, &MetricParams::default());
/// assert!((v - 5.0 * 4.0 / 1024.0 / 15.0).abs() < 1e-12);
/// ```
pub fn volume_kb(graph: &Csr, params: &MetricParams) -> f64 {
    let elements = graph.num_vertices() as f64 + graph.num_edges() as f64;
    elements * params.bytes_per_element / 1024.0 / params.num_sms as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::Level;

    #[test]
    fn table2_amz_volume() {
        // AMZ: (410236 + 6713648) * 4 / 1024 / 15 = 1855.2 KB (Table II
        // prints 1855.178).
        let p = MetricParams::default();
        let elements: f64 = 410_236.0 + 6_713_648.0;
        let v = elements * 4.0 / 1024.0 / 15.0;
        assert!((v - 1855.17).abs() < 0.1);
        assert_eq!(
            Level::classify(v, p.volume_low_kb(), p.volume_high_kb()),
            Level::High
        );
    }

    #[test]
    fn table2_raj_volume_is_low() {
        let p = MetricParams::default();
        let v: f64 = (20_640.0 + 163_178.0) * 4.0 / 1024.0 / 15.0;
        assert!((v - 47.87).abs() < 0.05);
        assert_eq!(
            Level::classify(v, p.volume_low_kb(), p.volume_high_kb()),
            Level::Low
        );
    }

    #[test]
    fn empty_graph_has_zero_volume() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(volume_kb(&g, &MetricParams::default()), 0.0);
    }
}
