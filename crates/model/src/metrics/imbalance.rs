//! Imbalance metric (Equation 7): k-means clustering of per-warp max
//! degrees.

use ggs_graph::Csr;

use crate::params::MetricParams;

/// Two-cluster one-dimensional k-means.
///
/// Centroids are initialized at the minimum and maximum of `values` and
/// iterated to convergence (deterministic — no random restarts are
/// needed in one dimension). Returns `(low_centroid, high_centroid)`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn kmeans2(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "k-means needs at least one value");
    let mut lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let mut hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        return (lo, hi);
    }
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        let (mut s_lo, mut n_lo, mut s_hi, mut n_hi) = (0.0, 0u32, 0.0, 0u32);
        for &v in values {
            if v <= mid {
                s_lo += v;
                n_lo += 1;
            } else {
                s_hi += v;
                n_hi += 1;
            }
        }
        let new_lo = if n_lo > 0 { s_lo / n_lo as f64 } else { lo };
        let new_hi = if n_hi > 0 { s_hi / n_hi as f64 } else { hi };
        if (new_lo - lo).abs() < 1e-9 && (new_hi - hi).abs() < 1e-9 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    (lo, hi)
}

/// Computes the Imbalance metric (Equation 7): the fraction of thread
/// blocks classified imbalanced.
///
/// For each thread block, the maximum out-degree processed by each of
/// its warps is collected; the block is *marked* when the two k-means
/// centroids of those per-warp maxima differ by more than
/// `params.kmeans_gap` (§III-A3).
///
/// # Example
///
/// ```
/// use ggs_graph::Csr;
/// use ggs_model::{metrics::imbalance, MetricParams};
///
/// // A uniform ring has no imbalance.
/// let edges: Vec<(u32, u32)> = (0..512u32)
///     .flat_map(|i| [(i, (i + 1) % 512), ((i + 1) % 512, i)])
///     .collect();
/// let g = Csr::from_edges(512, &edges);
/// assert_eq!(imbalance(&g, &MetricParams::default()), 0.0);
/// ```
pub fn imbalance(graph: &Csr, params: &MetricParams) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let tb = params.tb_size;
    let warp = params.warp_size;
    let num_blocks = n.div_ceil(tb);
    let mut marked = 0u64;
    let mut warp_maxes: Vec<f64> = Vec::with_capacity((tb / warp) as usize);
    for b in 0..num_blocks {
        warp_maxes.clear();
        let lo = b * tb;
        let hi = ((b + 1) * tb).min(n);
        let mut v = lo;
        while v < hi {
            let w_hi = (v + warp).min(hi);
            let max_deg = (v..w_hi).map(|x| graph.out_degree(x)).max().unwrap_or(0);
            warp_maxes.push(max_deg as f64);
            v = w_hi;
        }
        let (c_lo, c_hi) = kmeans2(&warp_maxes);
        if c_hi - c_lo > params.kmeans_gap {
            marked += 1;
        }
    }
    marked as f64 / num_blocks as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MetricParams {
        MetricParams::default()
    }

    #[test]
    fn kmeans_separates_two_groups() {
        let (lo, hi) = kmeans2(&[1.0, 2.0, 1.5, 100.0, 101.0]);
        assert!((lo - 1.5).abs() < 0.1);
        assert!((hi - 100.5).abs() < 0.1);
    }

    #[test]
    fn kmeans_uniform_values_have_zero_gap() {
        let (lo, hi) = kmeans2(&[5.0; 8]);
        assert_eq!(lo, hi);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn kmeans_rejects_empty() {
        let _ = kmeans2(&[]);
    }

    #[test]
    fn hub_in_every_block_gives_full_imbalance() {
        // 2 blocks of 256; one vertex per block with degree 64, rest 1.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for b in 0..2u32 {
            let hub = b * 256;
            for i in 1..=64u32 {
                edges.push((hub, (hub + i) % 512));
            }
            for v in (b * 256)..(b * 256 + 256) {
                edges.push((v, (v + 1) % 512));
            }
        }
        let g = Csr::from_edges(512, &edges);
        assert_eq!(imbalance(&g, &params()), 1.0);
    }

    #[test]
    fn hub_in_half_the_blocks_gives_half() {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for v in 0..512u32 {
            edges.push((v, (v + 1) % 512));
        }
        // Hub only in block 0.
        for i in 1..=64u32 {
            edges.push((0, i));
        }
        let g = Csr::from_edges(512, &edges);
        assert_eq!(imbalance(&g, &params()), 0.5);
    }

    #[test]
    fn small_degree_variation_is_not_imbalance() {
        // Degrees alternate 1 and 4: gap well under the threshold of 10.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for v in 0..256u32 {
            let d = if v % 2 == 0 { 1 } else { 4 };
            for i in 1..=d {
                edges.push((v, (v + i) % 256));
            }
        }
        let g = Csr::from_edges(256, &edges);
        assert_eq!(imbalance(&g, &params()), 0.0);
    }

    #[test]
    fn empty_graph_is_balanced() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(imbalance(&g, &params()), 0.0);
    }
}
