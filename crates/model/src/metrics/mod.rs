//! The three graph-structure metrics of the paper's taxonomy (§III-A).

mod imbalance;
mod reuse;
mod volume;

pub use imbalance::{imbalance, kmeans2};
pub use reuse::{reuse, ReuseStats};
pub use volume::volume_kb;
