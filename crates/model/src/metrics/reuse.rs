//! Reuse metric (Equations 2–6): intra-thread-block locality.

use ggs_graph::Csr;

use crate::params::MetricParams;

/// The locality quantities of Figure 3: average numbers of local and
/// remote neighbors (ANL/ANR) and the combined Reuse value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseStats {
    /// Average number of neighbors in the *same* thread block
    /// (Equation 4).
    pub anl: f64,
    /// Average number of neighbors in a *different* thread block
    /// (Equation 5).
    pub anr: f64,
    /// The Reuse metric in `[0, 1]` (Equation 6): 0 = all-remote
    /// connectivity, 1 = all-local.
    pub reuse: f64,
}

/// Computes ANL, ANR, and Reuse for `graph` with the thread-block size
/// from `params`.
///
/// Vertices `v1`, `v2` share a thread block when
/// `v1 / tb_size == v2 / tb_size` (Equations 2–3); self-edges contribute
/// to neither count. An empty or edgeless graph yields a neutral reuse
/// of 0.5.
///
/// # Example
///
/// ```
/// use ggs_graph::Csr;
/// use ggs_model::{metrics::reuse, MetricParams};
///
/// // Both edges stay inside thread block 0: fully local.
/// let g = Csr::from_edges(4, &[(0, 1), (1, 0)]);
/// let r = reuse(&g, &MetricParams::default());
/// assert!((r.reuse - 1.0).abs() < 1e-12);
/// ```
pub fn reuse(graph: &Csr, params: &MetricParams) -> ReuseStats {
    let n = graph.num_vertices();
    if n == 0 || graph.num_edges() == 0 {
        return ReuseStats {
            anl: 0.0,
            anr: 0.0,
            reuse: 0.5,
        };
    }
    let tb = params.tb_size;
    let mut local = 0u64;
    let mut remote = 0u64;
    for v in 0..n {
        let block = v / tb;
        for &t in graph.neighbors(v) {
            if t == v {
                continue;
            }
            if t / tb == block {
                local += 1;
            } else {
                remote += 1;
            }
        }
    }
    let anl = local as f64 / n as f64;
    let anr = remote as f64 / n as f64;
    let avg_deg = graph.num_edges() as f64 / n as f64;
    let reuse = 0.5 * (1.0 + (anl - anr) / avg_deg);
    ReuseStats { anl, anr, reuse }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MetricParams {
        MetricParams::default()
    }

    #[test]
    fn fully_remote_graph_has_zero_reuse() {
        // Edges cross thread-block boundary 0..256 | 256..512.
        let edges: Vec<(u32, u32)> = (0..256).map(|i| (i, i + 256)).collect();
        let mut sym = edges.clone();
        sym.extend(edges.iter().map(|&(a, b)| (b, a)));
        let g = Csr::from_edges(512, &sym);
        let r = reuse(&g, &params());
        assert_eq!(r.anl, 0.0);
        assert!((r.reuse - 0.0).abs() < 1e-12);
    }

    #[test]
    fn anl_plus_anr_equals_avg_degree() {
        let edges: Vec<(u32, u32)> = (0..300u32)
            .flat_map(|i| [(i, (i + 1) % 300), ((i + 1) % 300, i)])
            .collect();
        let g = Csr::from_edges(300, &edges);
        let r = reuse(&g, &params());
        let avg = g.num_edges() as f64 / 300.0;
        assert!((r.anl + r.anr - avg).abs() < 1e-9);
    }

    #[test]
    fn mixed_graph_is_intermediate() {
        // Ring within block plus one remote edge per vertex.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for i in 0..256u32 {
            edges.push((i, (i + 1) % 256));
            edges.push(((i + 1) % 256, i));
            edges.push((i, 256 + i));
            edges.push((256 + i, i));
        }
        let g = Csr::from_edges(512, &edges);
        let r = reuse(&g, &params());
        assert!(r.reuse > 0.2 && r.reuse < 0.8, "reuse = {}", r.reuse);
    }

    #[test]
    fn empty_graph_is_neutral() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(reuse(&g, &params()).reuse, 0.5);
    }

    #[test]
    fn reuse_is_bounded() {
        let edges: Vec<(u32, u32)> = (1..100).map(|i| (0, i)).collect();
        let g = Csr::from_edges(100, &edges);
        let r = reuse(&g, &params());
        assert!((0.0..=1.0).contains(&r.reuse));
    }
}
