//! Discretized metric levels (the H/M/L letters of the paper's
//! Table II).

use std::fmt;

/// A discretized metric value: low, medium, or high.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Below the low threshold.
    Low,
    /// Between the thresholds.
    Medium,
    /// Above the high threshold.
    High,
}

impl Level {
    /// Classifies `value` against `[low, high)` thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn classify(value: f64, low: f64, high: f64) -> Level {
        assert!(low <= high, "thresholds must be ordered");
        if value < low {
            Level::Low
        } else if value > high {
            Level::High
        } else {
            Level::Medium
        }
    }

    /// The Table II letter (`L`, `M`, or `H`).
    pub fn letter(self) -> char {
        match self {
            Level::Low => 'L',
            Level::Medium => 'M',
            Level::High => 'H',
        }
    }

    /// `true` for [`Level::Low`] or [`Level::Medium`].
    pub fn at_most_medium(self) -> bool {
        self != Level::High
    }

    /// `true` for [`Level::Medium`] or [`Level::High`].
    pub fn at_least_medium(self) -> bool {
        self != Level::Low
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(Level::classify(0.1, 0.15, 0.40), Level::Low);
        assert_eq!(Level::classify(0.15, 0.15, 0.40), Level::Medium);
        assert_eq!(Level::classify(0.40, 0.15, 0.40), Level::Medium);
        assert_eq!(Level::classify(0.41, 0.15, 0.40), Level::High);
    }

    #[test]
    fn letters_and_predicates() {
        assert_eq!(Level::Low.letter(), 'L');
        assert_eq!(Level::High.to_string(), "H");
        assert!(Level::Medium.at_most_medium());
        assert!(Level::Medium.at_least_medium());
        assert!(!Level::High.at_most_medium());
        assert!(!Level::Low.at_least_medium());
    }

    #[test]
    fn ordering_is_low_to_high() {
        assert!(Level::Low < Level::Medium && Level::Medium < Level::High);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn rejects_inverted_thresholds() {
        let _ = Level::classify(0.0, 1.0, 0.5);
    }
}
