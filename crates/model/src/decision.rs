//! The specialization decision tree (Figure 4 and §IV of the paper).

use std::fmt;
use std::str::FromStr;

use ggs_sim::{CoherenceKind, ConsistencyModel, HwConfig};

use crate::classes::Level;
use crate::profile::GraphProfile;
use crate::taxonomy::{AlgoProfile, Propagation, Traversal};

/// A full system configuration point: update propagation (software),
/// coherence, and consistency (hardware) — one of the paper's 12
/// configurations, named by its three-letter code (e.g. `SGR` = push +
/// GPU coherence + DRFrlx, `TG0` = pull + GPU coherence + DRF0, `DD1` =
/// dynamic + DeNovo + DRF1).
///
/// # Example
///
/// ```
/// use ggs_model::SystemConfig;
///
/// let cfg: SystemConfig = "SGR".parse()?;
/// assert_eq!(cfg.code(), "SGR");
/// # Ok::<(), ggs_model::decision::ParseConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SystemConfig {
    /// Update propagation strategy (software).
    pub propagation: Propagation,
    /// Coherence protocol (hardware).
    pub coherence: CoherenceKind,
    /// Consistency model (hardware).
    pub consistency: ConsistencyModel,
}

impl SystemConfig {
    /// Creates a configuration point.
    pub fn new(
        propagation: Propagation,
        coherence: CoherenceKind,
        consistency: ConsistencyModel,
    ) -> Self {
        Self {
            propagation,
            coherence,
            consistency,
        }
    }

    /// All 12 configuration points of the design space for a given
    /// traversal kind: static traversals choose pull (`T*`) or push
    /// (`S*`); dynamic traversals are always `D*`.
    pub fn all_for(traversal: Traversal) -> Vec<SystemConfig> {
        let props: &[Propagation] = match traversal {
            Traversal::Static => &[Propagation::Pull, Propagation::Push],
            Traversal::Dynamic => &[Propagation::PushPull],
        };
        let mut v = Vec::new();
        for &p in props {
            for c in CoherenceKind::ALL {
                for m in ConsistencyModel::ALL {
                    v.push(SystemConfig::new(p, c, m));
                }
            }
        }
        v
    }

    /// The three-letter code (`SGR`, `TG0`, `DD1`, …).
    pub fn code(&self) -> String {
        format!(
            "{}{}{}",
            self.propagation.letter(),
            self.coherence.letter(),
            self.consistency.letter()
        )
    }

    /// The hardware half of the configuration.
    pub fn hw(&self) -> HwConfig {
        HwConfig::new(self.coherence, self.consistency)
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.code())
    }
}

/// Error parsing a configuration code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError(String);

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid system config {:?} (expected <T|S|D|H><G|D><0|1|R>, e.g. \"SGR\")",
            self.0
        )
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for SystemConfig {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseConfigError(s.to_owned());
        let chars: Vec<char> = s.chars().collect();
        let [p, c, m] = chars[..] else {
            return Err(err());
        };
        let propagation = match p.to_ascii_uppercase() {
            'T' => Propagation::Pull,
            'S' => Propagation::Push,
            'D' => Propagation::PushPull,
            'H' => Propagation::Hybrid,
            _ => return Err(err()),
        };
        let hw: HwConfig = format!("{c}{m}").parse().map_err(|_| err())?;
        Ok(SystemConfig::new(propagation, hw.coherence, hw.consistency))
    }
}

/// Predicts the best configuration over the **full** design space
/// (Figure 4).
///
/// * Dynamic traversal → `DD1` (DeNovo exploits convergence-driven
///   reuse; DRF1 keeps programmability since relaxation cannot help
///   value-returning racy accesses — §IV-A4).
/// * Static traversal: push when control or information favors the
///   source, or when the input has medium/low reuse, high/medium
///   imbalance, or high volume; otherwise pull paired with `G0`
///   (pull needs neither atomics optimizations nor relaxation).
/// * Push coherence: GPU when reuse is medium/low or volume high
///   (ownership would not pay off / would thrash), else DeNovo.
/// * Push consistency: DRFrlx when imbalance is high or volume is
///   high/medium (MLP hides long-latency atomics), else DRF1.
pub fn predict_full(algo: &AlgoProfile, graph: &GraphProfile) -> SystemConfig {
    if algo.traversal == Traversal::Dynamic {
        return SystemConfig::new(
            Propagation::PushPull,
            CoherenceKind::DeNovo,
            ConsistencyModel::Drf1,
        );
    }
    let input_wants_push = graph.reuse_class.at_most_medium()
        || graph.imbalance_class.at_least_medium()
        || graph.volume == Level::High;
    if algo.favors_source() || input_wants_push {
        push_config(graph)
    } else {
        SystemConfig::new(
            Propagation::Pull,
            CoherenceKind::Gpu,
            ConsistencyModel::Drf0,
        )
    }
}

/// The secondary (coherence + consistency) decision for a push
/// implementation (Figure 4, right half), exposed separately so
/// adaptive systems can re-evaluate the *hardware* half per kernel with
/// runtime-updated volume/imbalance classes while the propagation
/// choice stays fixed (the paper's §VI outlook).
pub fn push_hardware(graph: &GraphProfile) -> ggs_sim::HwConfig {
    push_config(graph).hw()
}

/// The secondary (coherence + consistency) decision for a push
/// implementation (Figure 4, right half).
fn push_config(graph: &GraphProfile) -> SystemConfig {
    let coherence = if graph.reuse_class.at_most_medium() || graph.volume == Level::High {
        CoherenceKind::Gpu
    } else {
        CoherenceKind::DeNovo
    };
    let consistency = if graph.imbalance_class == Level::High || graph.volume.at_least_medium() {
        ConsistencyModel::DrfRlx
    } else {
        ConsistencyModel::Drf1
    };
    SystemConfig::new(Propagation::Push, coherence, consistency)
}

/// The hybrid (frontier-adaptive push/pull) configuration point for a
/// graph: propagation `H` paired with the push sub-tree's hardware half
/// (Figure 4, right) — any hybrid iteration may realize the push
/// variant, so the hardware must still service its fine-grained
/// atomics, while pull iterations are simply over-provisioned.
pub fn hybrid_config(graph: &GraphProfile) -> SystemConfig {
    let push = push_config(graph);
    SystemConfig::new(Propagation::Hybrid, push.coherence, push.consistency)
}

/// Extends the decision tree with the frontier-adaptive hybrid point
/// (this repo's 13th configuration dimension, beyond Figure 4).
///
/// Returns `Some` only for frontier-driven algorithms — static
/// traversals whose *control* property favors the source, i.e. the
/// active-set predicate lives at the update source (BFS, SSSP), which
/// is exactly what a per-iteration frontier-density switch exploits.
/// Symmetric- or target-control apps and dynamic traversals get `None`:
/// they have no sparse frontier for push iterations to win on.
///
/// Callers must still intersect with the application's
/// `supported_propagations` table — an algorithm may be frontier-driven
/// on paper yet not expose its active set in this repo's producer.
pub fn predict_hybrid(algo: &AlgoProfile, graph: &GraphProfile) -> Option<SystemConfig> {
    if algo.traversal == Traversal::Static
        && algo.control == Some(crate::taxonomy::AlgoBias::Source)
    {
        Some(hybrid_config(graph))
    } else {
        None
    }
}

/// Predicts the best configuration when the hardware does **not**
/// support DRFrlx (§IV-B).
///
/// The consistency dimension collapses (push uses DRF1), and the
/// push/pull decision becomes more conservative:
///
/// * control favors source → push;
/// * otherwise, if information favors source, the full model's input
///   gate applies (medium volume still suffices for push);
/// * otherwise push requires medium/low reuse, high/medium imbalance,
///   or **high** volume — medium volume is no longer sufficient because
///   the atomics can no longer be relaxed.
pub fn predict_partial(algo: &AlgoProfile, graph: &GraphProfile) -> SystemConfig {
    if algo.traversal == Traversal::Dynamic {
        return SystemConfig::new(
            Propagation::PushPull,
            CoherenceKind::DeNovo,
            ConsistencyModel::Drf1,
        );
    }
    let control_source = algo.control == Some(crate::taxonomy::AlgoBias::Source);
    let info_source = algo.information == Some(crate::taxonomy::AlgoBias::Source);
    let base_gate = graph.reuse_class.at_most_medium() || graph.imbalance_class.at_least_medium();
    let choose_push = if control_source {
        true
    } else if info_source {
        base_gate || graph.volume.at_least_medium()
    } else {
        base_gate || graph.volume == Level::High
    };
    if choose_push {
        let full = push_config(graph);
        SystemConfig::new(Propagation::Push, full.coherence, ConsistencyModel::Drf1)
    } else {
        SystemConfig::new(
            Propagation::Pull,
            CoherenceKind::Gpu,
            ConsistencyModel::Drf0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::AlgoBias;

    fn profile(volume: Level, reuse: Level, imbalance: Level) -> GraphProfile {
        GraphProfile::from_classes(volume, reuse, imbalance)
    }

    // Table II classes: AMZ=HML(vol,reuse,imb order: volume H, reuse M,
    // imb L), DCT=MMM, EML=HLH, OLS=MHL, RAJ=LHH, WNG=MLL.
    fn amz() -> GraphProfile {
        profile(Level::High, Level::Medium, Level::Low)
    }
    fn dct() -> GraphProfile {
        profile(Level::Medium, Level::Medium, Level::Medium)
    }
    fn eml() -> GraphProfile {
        profile(Level::High, Level::Low, Level::High)
    }
    fn ols() -> GraphProfile {
        profile(Level::Medium, Level::High, Level::Low)
    }
    fn raj() -> GraphProfile {
        profile(Level::Low, Level::High, Level::High)
    }
    fn wng() -> GraphProfile {
        profile(Level::Medium, Level::Low, Level::Low)
    }

    // Table III profiles.
    fn pr() -> AlgoProfile {
        AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Source)
    }
    fn sssp() -> AlgoProfile {
        AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Source)
    }
    fn mis() -> AlgoProfile {
        AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Symmetric)
    }
    fn clr() -> AlgoProfile {
        AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Target)
    }
    fn bc() -> AlgoProfile {
        AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Symmetric)
    }
    fn cc() -> AlgoProfile {
        AlgoProfile::new_dynamic()
    }

    /// The model must reproduce the paper's Table V exactly.
    #[test]
    fn reproduces_table_v() {
        let apps = [pr(), sssp(), mis(), clr(), bc(), cc()];
        let expected = [
            (amz(), ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
            (dct(), ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
            (eml(), ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
            (ols(), ["SDR", "SDR", "TG0", "TG0", "SDR", "DD1"]),
            (raj(), ["SDR", "SDR", "SDR", "SDR", "SDR", "DD1"]),
            (wng(), ["SGR", "SGR", "SGR", "SGR", "SGR", "DD1"]),
        ];
        for (graph, row) in &expected {
            for (app, want) in apps.iter().zip(row.iter()) {
                let got = predict_full(app, graph);
                assert_eq!(
                    got.code(),
                    *want,
                    "graph {:?} app {:?}",
                    graph.class_code(),
                    app
                );
            }
        }
    }

    #[test]
    fn partial_model_keeps_push_for_source_control() {
        // SSSP elides at source: push even without DRFrlx.
        let got = predict_partial(&sssp(), &raj());
        assert_eq!(got.propagation, Propagation::Push);
        assert_eq!(got.consistency, ConsistencyModel::Drf1);
    }

    #[test]
    fn partial_model_flips_symmetric_apps_to_pull_on_medium_volume() {
        // WNG is medium volume, low reuse: full model pushes (reuse L).
        // A hypothetical graph with high reuse, low imbalance, medium
        // volume and a symmetric app must flip to pull without DRFrlx.
        let g = profile(Level::Medium, Level::High, Level::Low);
        assert_eq!(predict_full(&pr(), &g).code(), "SDR"); // info source
        assert_eq!(predict_partial(&mis(), &g).code(), "TG0");
        // With info=source, medium volume still justifies push.
        assert_eq!(predict_partial(&pr(), &g).code(), "SD1");
    }

    #[test]
    fn partial_model_never_emits_drfrlx() {
        for app in [pr(), sssp(), mis(), clr(), bc(), cc()] {
            for g in [amz(), dct(), eml(), ols(), raj(), wng()] {
                let cfg = predict_partial(&app, &g);
                assert_ne!(cfg.consistency, ConsistencyModel::DrfRlx);
            }
        }
    }

    #[test]
    fn dynamic_always_dd1() {
        for g in [amz(), raj(), wng()] {
            assert_eq!(predict_full(&cc(), &g).code(), "DD1");
            assert_eq!(predict_partial(&cc(), &g).code(), "DD1");
        }
    }

    #[test]
    fn config_codes_roundtrip() {
        for t in [Traversal::Static, Traversal::Dynamic] {
            for cfg in SystemConfig::all_for(t) {
                let parsed: SystemConfig = cfg.code().parse().unwrap();
                assert_eq!(parsed, cfg);
            }
        }
    }

    #[test]
    fn twelve_static_and_six_dynamic_points() {
        assert_eq!(SystemConfig::all_for(Traversal::Static).len(), 12);
        assert_eq!(SystemConfig::all_for(Traversal::Dynamic).len(), 6);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("XGR".parse::<SystemConfig>().is_err());
        assert!("SG".parse::<SystemConfig>().is_err());
        assert!("SGRR".parse::<SystemConfig>().is_err());
    }

    #[test]
    fn hybrid_codes_roundtrip() {
        for coh in CoherenceKind::ALL {
            for cons in ConsistencyModel::ALL {
                let cfg = SystemConfig::new(Propagation::Hybrid, coh, cons);
                assert!(cfg.code().starts_with('H'));
                let parsed: SystemConfig = cfg.code().parse().unwrap();
                assert_eq!(parsed, cfg);
            }
        }
    }

    #[test]
    fn hybrid_predictor_gates_on_source_control() {
        for g in [amz(), dct(), eml(), ols(), raj(), wng()] {
            // Frontier-driven apps (source control) get the hybrid
            // point, with the push sub-tree's hardware half.
            let h = predict_hybrid(&sssp(), &g).expect("SSSP is frontier-driven");
            assert_eq!(h.propagation, Propagation::Hybrid);
            assert_eq!(h.hw(), push_hardware(&g));
            // Symmetric control and dynamic traversal have no frontier.
            assert_eq!(predict_hybrid(&pr(), &g), None);
            assert_eq!(predict_hybrid(&mis(), &g), None);
            assert_eq!(predict_hybrid(&cc(), &g), None);
        }
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use crate::taxonomy::AlgoBias;

    fn all_levels() -> [Level; 3] {
        [Level::Low, Level::Medium, Level::High]
    }

    /// The full tree over all 27 input-class combinations for a
    /// symmetric-property app: pull appears exactly on the Figure 4
    /// "else" region (high reuse AND low imbalance AND volume not
    /// high); every push cell follows the coherence/consistency arms.
    #[test]
    fn full_tree_exhaustive_for_symmetric_apps() {
        let algo = AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Symmetric);
        for v in all_levels() {
            for r in all_levels() {
                for i in all_levels() {
                    let g = GraphProfile::from_classes(v, r, i);
                    let cfg = predict_full(&algo, &g);
                    let expect_pull = r == Level::High && i == Level::Low && v != Level::High;
                    assert_eq!(
                        cfg.propagation == Propagation::Pull,
                        expect_pull,
                        "classes {v:?}/{r:?}/{i:?} -> {cfg}"
                    );
                    if cfg.propagation == Propagation::Push {
                        let want_gpu = r != Level::High || v == Level::High;
                        assert_eq!(
                            cfg.coherence == CoherenceKind::Gpu,
                            want_gpu,
                            "classes {v:?}/{r:?}/{i:?} -> {cfg}"
                        );
                        let want_rlx = i == Level::High || v != Level::Low;
                        assert_eq!(
                            cfg.consistency == ConsistencyModel::DrfRlx,
                            want_rlx,
                            "classes {v:?}/{r:?}/{i:?} -> {cfg}"
                        );
                    }
                }
            }
        }
    }

    /// Source-favoring apps are push on all 27 combinations, and the
    /// hardware half matches the symmetric app's push cells exactly
    /// (the push sub-tree is independent of the algorithm).
    #[test]
    fn push_subtree_is_algorithm_independent() {
        let src = AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Source);
        let sym = AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Symmetric);
        for v in all_levels() {
            for r in all_levels() {
                for i in all_levels() {
                    let g = GraphProfile::from_classes(v, r, i);
                    let a = predict_full(&src, &g);
                    assert_eq!(a.propagation, Propagation::Push);
                    let b = predict_full(&sym, &g);
                    if b.propagation == Propagation::Push {
                        assert_eq!(a.hw(), b.hw(), "classes {v:?}/{r:?}/{i:?}");
                    }
                }
            }
        }
    }

    /// `push_hardware` agrees with the full tree's hardware half on
    /// every class combination (the adaptive path cannot diverge).
    #[test]
    fn push_hardware_matches_full_tree() {
        let src = AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Source);
        for v in all_levels() {
            for r in all_levels() {
                for i in all_levels() {
                    let g = GraphProfile::from_classes(v, r, i);
                    assert_eq!(push_hardware(&g), predict_full(&src, &g).hw());
                }
            }
        }
    }
}
