//! The workload taxonomy and specialization model of *Specializing
//! Coherence, Consistency, and Push/Pull for GPU Graph Analytics*
//! (ISPASS 2020), §III–§IV.
//!
//! Three graph-structure metrics characterize an input graph:
//!
//! * **Volume** (Equation 1) — average working-set size per GPU core,
//!   discretized against the L1/L2 capacities;
//! * **Reuse** (Equations 2–6) — intra-thread-block locality from the
//!   average numbers of local (ANL) and remote (ANR) neighbors;
//! * **Imbalance** (Equation 7) — fraction of thread blocks whose
//!   per-warp maximum degrees split into two k-means clusters more than
//!   a threshold apart.
//!
//! Three algorithmic properties characterize an application
//! ([`taxonomy`]): traversal (static/dynamic), control (which predicate
//! elides work), and information (which side hoists property loads).
//!
//! [`decision`] implements the paper's Figure 4 decision tree over these
//! six inputs, predicting the best system configuration — update
//! propagation (push/pull), coherence (GPU/DeNovo), and consistency
//! (DRF0/DRF1/DRFrlx) — plus the §IV-B variant for hardware without
//! DRFrlx support.
//!
//! # Example
//!
//! ```
//! use ggs_graph::synth::{GraphPreset, SynthConfig};
//! use ggs_model::{decision, profile::GraphProfile, params::MetricParams, taxonomy};
//!
//! let graph = SynthConfig::preset(GraphPreset::Raj).scale(0.05).generate();
//! let params = MetricParams::default().scaled_caches(0.05);
//! let profile = GraphProfile::measure(&graph, &params);
//!
//! // SSSP elides work at sources: the model recommends push.
//! let algo = taxonomy::AlgoProfile::STATIC_SSSP_LIKE;
//! let cfg = decision::predict_full(&algo, &profile);
//! assert_eq!(cfg.propagation, taxonomy::Propagation::Push);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classes;
pub mod decision;
pub mod metrics;
pub mod params;
pub mod profile;
pub mod taxonomy;

pub use classes::Level;
pub use decision::{predict_full, predict_partial, SystemConfig};
pub use params::MetricParams;
pub use profile::GraphProfile;
pub use taxonomy::{AlgoBias, AlgoProfile, Propagation, Traversal};
