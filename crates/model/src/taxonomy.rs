//! Algorithmic properties (§III-B) and the update-propagation
//! vocabulary.

use std::fmt;

/// Update propagation strategy — the software dimension of the design
/// space (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Propagation {
    /// Target-centric: each vertex pulls updates from its in-neighbors
    /// with plain loads and a single local update (no atomics).
    Pull,
    /// Source-centric: each vertex pushes updates to its out-neighbors
    /// with fine-grained atomics.
    Push,
    /// Dynamic traversal using racy push *and* pull updates in the same
    /// kernel (e.g. Connected Components); the direction is determined
    /// at run time.
    PushPull,
}

impl Propagation {
    /// All three strategies.
    pub const ALL: [Propagation; 3] = [Propagation::Pull, Propagation::Push, Propagation::PushPull];

    /// The letter used in the paper's configuration names: `T`arget
    /// (pull), `S`ource (push), or `D`ynamic (push+pull).
    pub fn letter(self) -> char {
        match self {
            Propagation::Pull => 'T',
            Propagation::Push => 'S',
            Propagation::PushPull => 'D',
        }
    }

    /// `true` if this strategy issues fine-grained atomics.
    pub fn uses_atomics(self) -> bool {
        !matches!(self, Propagation::Pull)
    }
}

impl fmt::Display for Propagation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Propagation::Pull => "pull",
            Propagation::Push => "push",
            Propagation::PushPull => "push+pull",
        };
        f.write_str(s)
    }
}

/// Algorithmic traversal (§III-B1): where updates propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traversal {
    /// Source and target of every update are neighbors in the input
    /// graph; push/pull variants exist.
    Static,
    /// Update endpoints are data-dependent (e.g. transitive closure);
    /// the implementation is inherently push+pull.
    Dynamic,
}

/// Which side of an edge an algorithmic property favors (§III-B2,
/// §III-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoBias {
    /// Push elides/hoists more work.
    Source,
    /// Pull elides/hoists more work.
    Target,
    /// Push and pull elide/hoist equal work.
    Symmetric,
}

/// The algorithmic-property triple of one application (one row of the
/// paper's Table III).
///
/// `control`/`information` are `None` for dynamic-traversal algorithms
/// (the paper's "−" entries): with racy push and pull updates in the
/// same loop there is no asymmetry to exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoProfile {
    /// Traversal kind.
    pub traversal: Traversal,
    /// Algorithmic control: which predicate elides more work.
    pub control: Option<AlgoBias>,
    /// Algorithmic information: which side hoists more loads.
    pub information: Option<AlgoBias>,
}

impl AlgoProfile {
    /// A static-traversal profile.
    pub const fn new_static(control: AlgoBias, information: AlgoBias) -> Self {
        Self {
            traversal: Traversal::Static,
            control: Some(control),
            information: Some(information),
        }
    }

    /// A dynamic-traversal profile (control/information not applicable).
    pub const fn new_dynamic() -> Self {
        Self {
            traversal: Traversal::Dynamic,
            control: None,
            information: None,
        }
    }

    /// PageRank-like profile: symmetric control, source information.
    pub const STATIC_PR_LIKE: Self = Self::new_static(AlgoBias::Symmetric, AlgoBias::Source);

    /// SSSP-like profile: source control, source information.
    pub const STATIC_SSSP_LIKE: Self = Self::new_static(AlgoBias::Source, AlgoBias::Source);

    /// `true` when either property favors the source side, which is
    /// sufficient for the model to recommend push (§IV-A1).
    pub fn favors_source(&self) -> bool {
        self.control == Some(AlgoBias::Source) || self.information == Some(AlgoBias::Source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters() {
        assert_eq!(Propagation::Pull.letter(), 'T');
        assert_eq!(Propagation::Push.letter(), 'S');
        assert_eq!(Propagation::PushPull.letter(), 'D');
    }

    #[test]
    fn atomics_usage() {
        assert!(!Propagation::Pull.uses_atomics());
        assert!(Propagation::Push.uses_atomics());
        assert!(Propagation::PushPull.uses_atomics());
    }

    #[test]
    fn favors_source() {
        assert!(AlgoProfile::STATIC_SSSP_LIKE.favors_source());
        assert!(AlgoProfile::STATIC_PR_LIKE.favors_source());
        let mis = AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Symmetric);
        assert!(!mis.favors_source());
        assert!(!AlgoProfile::new_dynamic().favors_source());
    }

    #[test]
    fn dynamic_profile_has_no_biases() {
        let cc = AlgoProfile::new_dynamic();
        assert_eq!(cc.traversal, Traversal::Dynamic);
        assert_eq!(cc.control, None);
        assert_eq!(cc.information, None);
    }

    #[test]
    fn display() {
        assert_eq!(Propagation::PushPull.to_string(), "push+pull");
    }
}
