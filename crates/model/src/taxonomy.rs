//! Algorithmic properties (§III-B) and the update-propagation
//! vocabulary.

use std::fmt;

/// Update propagation strategy — the software dimension of the design
/// space (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Propagation {
    /// Target-centric: each vertex pulls updates from its in-neighbors
    /// with plain loads and a single local update (no atomics).
    Pull,
    /// Source-centric: each vertex pushes updates to its out-neighbors
    /// with fine-grained atomics.
    Push,
    /// Dynamic traversal using racy push *and* pull updates in the same
    /// kernel (e.g. Connected Components); the direction is determined
    /// at run time.
    PushPull,
    /// Frontier-adaptive direction switching for frontier-driven static
    /// traversals (BFS, SSSP): every iteration runs the push variant
    /// while the active frontier is sparse and the pull variant once it
    /// grows past [`Propagation::HYBRID_DENSITY_THRESHOLD`]. Each
    /// emitted kernel is a pure push or pull kernel — only the
    /// per-iteration choice is dynamic.
    Hybrid,
}

impl Propagation {
    /// The paper's three strategies (Table I). [`Propagation::Hybrid`]
    /// is this repo's extension axis and deliberately not part of the
    /// paper-faithful grid.
    pub const ALL: [Propagation; 3] = [Propagation::Pull, Propagation::Push, Propagation::PushPull];

    /// Frontier density (active vertices / total vertices) at which a
    /// hybrid traversal switches from push to pull, following the
    /// direction-optimizing BFS literature (Beamer et al.; Besta et
    /// al., "To Push or To Pull"): sparse frontiers touch few edges and
    /// favor push, dense frontiers favor the atomic-free pull sweep.
    pub const HYBRID_DENSITY_THRESHOLD: f64 = 0.05;

    /// The letter used in the paper's configuration names: `T`arget
    /// (pull), `S`ource (push), or `D`ynamic (push+pull) — plus `H` for
    /// this repo's frontier-adaptive hybrid extension.
    pub fn letter(self) -> char {
        match self {
            Propagation::Pull => 'T',
            Propagation::Push => 'S',
            Propagation::PushPull => 'D',
            Propagation::Hybrid => 'H',
        }
    }

    /// `true` if this strategy issues fine-grained atomics.
    /// Hybrid counts as atomic-issuing: any of its iterations may run
    /// the push variant.
    pub fn uses_atomics(self) -> bool {
        !matches!(self, Propagation::Pull)
    }

    /// The concrete direction a hybrid iteration realizes at frontier
    /// `density` (active vertices / total vertices): push below the
    /// [`Propagation::HYBRID_DENSITY_THRESHOLD`], pull at or above it.
    pub fn hybrid_direction_for_density(density: f64) -> Propagation {
        if density < Self::HYBRID_DENSITY_THRESHOLD {
            Propagation::Push
        } else {
            Propagation::Pull
        }
    }
}

impl fmt::Display for Propagation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Propagation::Pull => "pull",
            Propagation::Push => "push",
            Propagation::PushPull => "push+pull",
            Propagation::Hybrid => "hybrid",
        };
        f.write_str(s)
    }
}

/// Algorithmic traversal (§III-B1): where updates propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traversal {
    /// Source and target of every update are neighbors in the input
    /// graph; push/pull variants exist.
    Static,
    /// Update endpoints are data-dependent (e.g. transitive closure);
    /// the implementation is inherently push+pull.
    Dynamic,
}

/// Which side of an edge an algorithmic property favors (§III-B2,
/// §III-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoBias {
    /// Push elides/hoists more work.
    Source,
    /// Pull elides/hoists more work.
    Target,
    /// Push and pull elide/hoist equal work.
    Symmetric,
}

/// The algorithmic-property triple of one application (one row of the
/// paper's Table III).
///
/// `control`/`information` are `None` for dynamic-traversal algorithms
/// (the paper's "−" entries): with racy push and pull updates in the
/// same loop there is no asymmetry to exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoProfile {
    /// Traversal kind.
    pub traversal: Traversal,
    /// Algorithmic control: which predicate elides more work.
    pub control: Option<AlgoBias>,
    /// Algorithmic information: which side hoists more loads.
    pub information: Option<AlgoBias>,
}

impl AlgoProfile {
    /// A static-traversal profile.
    pub const fn new_static(control: AlgoBias, information: AlgoBias) -> Self {
        Self {
            traversal: Traversal::Static,
            control: Some(control),
            information: Some(information),
        }
    }

    /// A dynamic-traversal profile (control/information not applicable).
    pub const fn new_dynamic() -> Self {
        Self {
            traversal: Traversal::Dynamic,
            control: None,
            information: None,
        }
    }

    /// PageRank-like profile: symmetric control, source information.
    pub const STATIC_PR_LIKE: Self = Self::new_static(AlgoBias::Symmetric, AlgoBias::Source);

    /// SSSP-like profile: source control, source information.
    pub const STATIC_SSSP_LIKE: Self = Self::new_static(AlgoBias::Source, AlgoBias::Source);

    /// `true` when either property favors the source side, which is
    /// sufficient for the model to recommend push (§IV-A1).
    pub fn favors_source(&self) -> bool {
        self.control == Some(AlgoBias::Source) || self.information == Some(AlgoBias::Source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters() {
        assert_eq!(Propagation::Pull.letter(), 'T');
        assert_eq!(Propagation::Push.letter(), 'S');
        assert_eq!(Propagation::PushPull.letter(), 'D');
        assert_eq!(Propagation::Hybrid.letter(), 'H');
    }

    #[test]
    fn atomics_usage() {
        assert!(!Propagation::Pull.uses_atomics());
        assert!(Propagation::Push.uses_atomics());
        assert!(Propagation::PushPull.uses_atomics());
        assert!(Propagation::Hybrid.uses_atomics());
    }

    #[test]
    fn paper_grid_excludes_hybrid() {
        // ALL is the paper-faithful Table I axis; the hybrid extension
        // must never leak into it.
        assert_eq!(Propagation::ALL.len(), 3);
        assert!(!Propagation::ALL.contains(&Propagation::Hybrid));
    }

    #[test]
    fn hybrid_switches_at_density_threshold() {
        let t = Propagation::HYBRID_DENSITY_THRESHOLD;
        assert_eq!(
            Propagation::hybrid_direction_for_density(0.0),
            Propagation::Push
        );
        assert_eq!(
            Propagation::hybrid_direction_for_density(t / 2.0),
            Propagation::Push
        );
        assert_eq!(
            Propagation::hybrid_direction_for_density(t),
            Propagation::Pull
        );
        assert_eq!(
            Propagation::hybrid_direction_for_density(1.0),
            Propagation::Pull
        );
    }

    #[test]
    fn favors_source() {
        assert!(AlgoProfile::STATIC_SSSP_LIKE.favors_source());
        assert!(AlgoProfile::STATIC_PR_LIKE.favors_source());
        let mis = AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Symmetric);
        assert!(!mis.favors_source());
        assert!(!AlgoProfile::new_dynamic().favors_source());
    }

    #[test]
    fn dynamic_profile_has_no_biases() {
        let cc = AlgoProfile::new_dynamic();
        assert_eq!(cc.traversal, Traversal::Dynamic);
        assert_eq!(cc.control, None);
        assert_eq!(cc.information, None);
    }

    #[test]
    fn display() {
        assert_eq!(Propagation::PushPull.to_string(), "push+pull");
        assert_eq!(Propagation::Hybrid.to_string(), "hybrid");
    }
}
