//! Thresholds and hardware constants used by the taxonomy metrics
//! (§V-A of the paper).

use ggs_sim::SystemParams;

/// Parameters of the metric computation and classification.
///
/// Defaults follow the paper: thread blocks of 256 threads, 32-thread
/// warps, 15 SMs, 32 KB L1 / 4 MB L2; volume thresholds 1.5×L1 (low) and
/// L2/|SM| (high); reuse thresholds 0.15/0.40; imbalance thresholds
/// 0.05/0.25; k-means centroid-gap threshold 10.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricParams {
    /// Threads per thread block (|TB| in Equations 2–5).
    pub tb_size: u32,
    /// Threads per warp (imbalance clusters per-warp max degrees).
    pub warp_size: u32,
    /// Number of GPU cores (|SM| in Equation 1).
    pub num_sms: u32,
    /// Bytes per graph element (vertices and edges are 4-byte words).
    pub bytes_per_element: f64,
    /// Per-core L1 capacity in KB.
    pub l1_kb: f64,
    /// Shared L2 capacity in KB.
    pub l2_kb: f64,
    /// Volume is *low* below `vol_low_factor × l1_kb`.
    pub vol_low_factor: f64,
    /// Reuse is *low* below this.
    pub reuse_low: f64,
    /// Reuse is *high* above this.
    pub reuse_high: f64,
    /// Imbalance is *low* below this.
    pub imb_low: f64,
    /// Imbalance is *high* above this.
    pub imb_high: f64,
    /// A thread block is imbalanced when its two k-means centroids of
    /// per-warp max degree differ by more than this.
    pub kmeans_gap: f64,
}

impl Default for MetricParams {
    fn default() -> Self {
        Self {
            tb_size: 256,
            warp_size: 32,
            num_sms: 15,
            bytes_per_element: 4.0,
            l1_kb: 32.0,
            l2_kb: 4096.0,
            vol_low_factor: 1.5,
            reuse_low: 0.15,
            reuse_high: 0.40,
            imb_low: 0.05,
            imb_high: 0.25,
            kmeans_gap: 10.0,
        }
    }
}

impl MetricParams {
    /// Derives metric parameters from simulator [`SystemParams`] so the
    /// classifier and the simulated hardware always agree on geometry.
    pub fn from_system(params: &SystemParams) -> Self {
        Self {
            tb_size: params.tb_size,
            warp_size: params.warp_size,
            num_sms: params.num_sms,
            l1_kb: params.l1_kb(),
            l2_kb: params.l2_kb(),
            ..Self::default()
        }
    }

    /// Returns the parameters with L1/L2 capacities multiplied by
    /// `factor` (pair this with `SystemParams::scaled_caches` and graph
    /// `scale` so that volume classes survive scale reduction).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled_caches(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        self.l1_kb *= factor;
        self.l2_kb *= factor;
        self
    }

    /// The volume value (KB) below which volume is classified low.
    pub fn volume_low_kb(&self) -> f64 {
        self.vol_low_factor * self.l1_kb
    }

    /// The volume value (KB) above which volume is classified high.
    pub fn volume_high_kb(&self) -> f64 {
        self.l2_kb / self.num_sms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = MetricParams::default();
        assert_eq!(p.volume_low_kb(), 48.0);
        assert!((p.volume_high_kb() - 273.066).abs() < 0.01);
        assert_eq!(p.reuse_low, 0.15);
        assert_eq!(p.imb_high, 0.25);
        assert_eq!(p.kmeans_gap, 10.0);
    }

    #[test]
    fn from_system_copies_geometry() {
        let sys = SystemParams::default().scaled_caches(0.5);
        let p = MetricParams::from_system(&sys);
        assert_eq!(p.l1_kb, 16.0);
        assert_eq!(p.l2_kb, 2048.0);
        assert_eq!(p.num_sms, 15);
    }

    #[test]
    fn scaled_caches_scales_thresholds() {
        let p = MetricParams::default().scaled_caches(0.125);
        assert_eq!(p.volume_low_kb(), 6.0);
        assert!((p.volume_high_kb() - 34.133).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_scale() {
        let _ = MetricParams::default().scaled_caches(-1.0);
    }
}
