use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{GraphProfile, MetricParams};

fn main() {
    let scale = 0.125;
    let params = MetricParams::default().scaled_caches(scale);
    println!(
        "{:4} {:>8} {:>9} {:>7} {:>7} {:>8} {:>6} {:>6} {:>6} {:>5} {:>6} {:>3}",
        "name", "V", "E", "maxd", "avgd", "stdd", "volKB", "ANL", "ANR", "reuse", "imb", "cls"
    );
    for p in GraphPreset::ALL {
        let g = SynthConfig::preset(p).scale(scale).generate();
        let prof = GraphProfile::measure(&g, &params);
        println!(
            "{:4} {:>8} {:>9} {:>7} {:>7.2} {:>8.2} {:>6.1} {:>6.2} {:>6.2} {:>5.3} {:>6.3} {:>3}",
            p.mnemonic(),
            prof.vertices,
            prof.edges,
            prof.degrees.max,
            prof.degrees.avg,
            prof.degrees.std_dev,
            prof.volume_kb,
            prof.anl,
            prof.anr,
            prof.reuse,
            prof.imbalance,
            prof.class_code()
        );
    }
}
