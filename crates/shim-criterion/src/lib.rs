//! Vendored, dependency-free stand-in for the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the registry dependency with this path crate of the same
//! name. Benches compile and run against the same source: each
//! `b.iter(..)` target is warmed up once and timed over a small fixed
//! number of iterations, and the mean wall-clock time is printed.
//! There is no statistical analysis, HTML report, or CLI filtering —
//! this is a smoke-bench harness, not a measurement instrument.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations measured per benchmark (after one warm-up call).
const MEASURED_ITERS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks; the tuning setters are accepted for
/// source compatibility and ignored.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; warm-up is one call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; measurement length is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (no-op; provided for source compatibility).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter(p: impl Display) -> Self {
        Self(p.to_string())
    }

    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        Self(format!("{}/{p}", name.into()))
    }
}

/// Times closures handed to it by the benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Measures `f`: one warm-up call, then the mean of
    /// `MEASURED_ITERS` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / MEASURED_ITERS);
    }

    /// Measures with caller-controlled timing, as in upstream criterion:
    /// `f` receives an iteration count and returns the wall-clock time
    /// those iterations took. The shim requests a single iteration.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.mean = Some(f(1));
    }

    /// The mean wall-clock time of the last measurement, if any. Shim
    /// extension (upstream criterion reports through its own analysis
    /// pipeline); used by `repro bench` to build `BENCH_sim.json`.
    pub fn mean(&self) -> Option<Duration> {
        self.mean
    }

    fn report(&self, name: &str) {
        match self.mean {
            Some(mean) => println!("bench {name:<48} {mean:>12.2?}/iter"),
            None => println!("bench {name:<48} (no measurement)"),
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function from a list of target
/// functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from a list of group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1 + MEASURED_ITERS);
    }

    #[test]
    fn groups_accept_the_full_tuning_surface() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::from_parameter(42), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
