//! Randomized-schedule differential test (satellite of the ggs-verify
//! tentpole): random *legal* schedules — action sequences in which every
//! step is drawn from the clean model's enabled set — are replayed
//! simultaneously through the [`ggs_verify::model::GridModel`] and the
//! real `ggs_sim::mem::MemorySystem` via the conformance bridge, which
//! compares every structural observable the two sides share (per-SM L1
//! line states and the ownership registry) after every step and collects
//! the implementation's own dynamic-checker verdicts.
//!
//! Where the exhaustive explorer proves the *model* safe within small
//! bounds, this test continuously re-proves that the model and `mem.rs`
//! are the *same protocol* on schedules nobody hand-picked.

use proptest::prelude::*;

use ggs_sim::config::HwConfig;
use ggs_verify::bridge;
use ggs_verify::model::{GridModel, ModelConfig, ProtocolModel};

/// Walks the clean model from reset, resolving each random pick against
/// the currently enabled action set, and returns the legal schedule it
/// traced.
fn legal_schedule(model: &GridModel, picks: &[u32]) -> Vec<ggs_verify::Action> {
    let mut state = model.initial();
    let mut schedule = Vec::with_capacity(picks.len());
    let mut enabled = Vec::new();
    for &p in picks {
        enabled.clear();
        model.enabled_actions(&state, &mut enabled);
        if enabled.is_empty() {
            break;
        }
        let a = enabled[p as usize % enabled.len()];
        state = model
            .step(&state, a)
            .expect("enabled actions must step")
            .state;
        schedule.push(a);
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every cell of the grid: model and implementation agree on every
    /// step of a random legal schedule, with zero dynamic-checker
    /// violations and no divergence (divergence is only legitimate for
    /// schedules minted by a *mutated* model).
    #[test]
    fn random_legal_schedules_agree_with_mem(
        picks in prop::collection::vec(0u32..1_000_000, 1..48),
    ) {
        for hw in HwConfig::all() {
            let cfg = ModelConfig::smoke(hw);
            let schedule = legal_schedule(&GridModel::new(cfg), &picks);
            let r = bridge::replay(&cfg, &schedule);
            prop_assert!(
                r.agreed(),
                "cell {}: {r:?}\nschedule: {schedule:?}",
                hw.code()
            );
            prop_assert_eq!(r.diverged_at, None);
            prop_assert_eq!(r.steps_replayed, schedule.len());
        }
    }

    /// The larger `full` bounds (3 SMs) agree too — this exercises
    /// owner revocation between three parties, which the smoke bounds
    /// cannot reach.
    #[test]
    fn random_three_sm_schedules_agree_with_mem(
        picks in prop::collection::vec(0u32..1_000_000, 1..64),
    ) {
        for hw in HwConfig::all() {
            let cfg = ModelConfig::full(hw);
            let schedule = legal_schedule(&GridModel::new(cfg), &picks);
            let r = bridge::replay(&cfg, &schedule);
            prop_assert!(
                r.agreed(),
                "cell {}: {r:?}\nschedule: {schedule:?}",
                hw.code()
            );
            prop_assert_eq!(r.diverged_at, None);
            prop_assert_eq!(r.steps_replayed, schedule.len());
        }
    }
}
