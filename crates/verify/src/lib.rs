//! ggs-verify: exhaustive explicit-state model checking of the
//! coherence × consistency grid, with mutation-tested counterexamples.
//!
//! The dynamic checker in `ggs_sim::check` watches whatever schedule a
//! simulation happens to take; it can catch a protocol bug but never
//! show the absence of one.  This crate adds the static layer: each
//! protocol of `mem.rs` is re-expressed as a pure, timing-free
//! transition system ([`model`]), and for every (coherence, consistency)
//! cell of the grid,
//!
//! * a DFS explorer enumerates **all** reachable states of a small
//!   config (2–3 SMs × 2 lines) and checks the protocol invariants on
//!   each ([`explore`]);
//! * a litmus harness enumerates **all** interleavings of the classic
//!   message-passing / store-buffering / CoRR / RMW-chain /
//!   release-acquire programs and checks the per-model forbidden and
//!   required outcome sets ([`litmus`]);
//! * every counterexample is minimized to the shortest action schedule
//!   and rendered as a human-readable witness ([`witness`]);
//! * the conformance bridge replays schedules through the real
//!   `MemorySystem`, asserting model ↔ implementation agreement step by
//!   step ([`bridge`]);
//! * a catalog of ≥ 6 seeded protocol mutations proves the checker has
//!   teeth: each must be caught with a minimized witness ([`mutate`]).
//!
//! Run it as `repro verify [--cell CODE] [--smoke] [--mutations]`, or
//! from code via [`run_verify`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bridge;
pub mod explore;
pub mod litmus;
pub mod model;
pub mod mutate;
pub mod witness;

use std::fmt;

use ggs_sim::config::HwConfig;

pub use bridge::BridgeReport;
pub use explore::{Exploration, ExploreLimits};
pub use litmus::LitmusRun;
pub use model::{Action, GridModel, ModelConfig, ProtocolModel};
pub use mutate::Mutation;
pub use witness::{AccessSite, Actor, Witness, WitnessKind};

/// What to verify.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Grid cells to check; empty means the whole 2 × 3 grid.
    pub cells: Vec<HwConfig>,
    /// Use the smaller smoke bounds (CI budget) instead of the full
    /// exhaustive config.
    pub smoke: bool,
    /// Run the mutation self-test as well.
    pub mutations: bool,
}

/// Exhaustive result for one grid cell.
#[derive(Debug)]
pub struct CellReport {
    /// The cell.
    pub cell: HwConfig,
    /// Model bounds used.
    pub config: ModelConfig,
    /// Reachability result (states, transitions, violation if any).
    pub exploration: Exploration,
    /// One entry per litmus test.
    pub litmus: Vec<LitmusRun>,
}

impl CellReport {
    /// Clean cell: exhaustive, no violation, every litmus contract held.
    pub fn passed(&self) -> bool {
        !self.exploration.truncated
            && self.exploration.violation.is_none()
            && self.litmus.iter().all(|l| l.passed())
    }
}

/// Result of hunting one seeded mutation in one of its declared cells.
#[derive(Debug)]
pub struct MutationReport {
    /// The seeded bug.
    pub mutation: Mutation,
    /// Cell it was hunted in.
    pub cell: HwConfig,
    /// Minimized counterexample, if the checker caught the bug.
    pub witness: Option<Witness>,
    /// Replay of the witness through the clean model and the real
    /// `mem.rs` (present whenever a witness was found).
    pub bridge: Option<BridgeReport>,
}

impl MutationReport {
    /// Caught, with the implementation agreeing with the clean model on
    /// the witness schedule.
    pub fn passed(&self) -> bool {
        self.witness.is_some() && self.bridge.as_ref().is_some_and(|b| b.agreed())
    }
}

/// Everything `repro verify` reports.
#[derive(Debug)]
pub struct VerifyReport {
    /// Per-cell exhaustive results.
    pub cells: Vec<CellReport>,
    /// Per-(mutation, cell) self-test results (empty unless requested).
    pub mutations: Vec<MutationReport>,
}

impl VerifyReport {
    /// Overall verdict.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.passed()) && self.mutations.iter().all(|m| m.passed())
    }
}

/// Hunt `mutation` in `cell`: exhaustive invariant search first, then
/// the litmus suite.  Returns the minimized witness plus the model
/// config it was found under (needed to replay it faithfully).
fn hunt_mutation(
    mutation: Mutation,
    cell: HwConfig,
    smoke: bool,
) -> Option<(Witness, ModelConfig)> {
    let cfg = if smoke {
        ModelConfig::smoke(cell)
    } else {
        ModelConfig::full(cell)
    };
    let mutant = GridModel::mutated(cfg, mutation);
    // Mutants can reach far more states than the clean protocol (the bug
    // may unbound something the invariants rely on); cap the hunt and let
    // the litmus suite take over if the cap is hit without a violation.
    let r = explore::explore(
        &mutant,
        ExploreLimits {
            max_states: 400_000,
        },
    );
    if let Some(w) = r.violation {
        return Some((w, cfg));
    }
    for test in litmus::suite() {
        let lcfg = ModelConfig::litmus(cell, test.threads.len() as u8, test.lines.max(1));
        let run = litmus::run_litmus(&test, &GridModel::mutated(lcfg, mutation));
        if let Some(w) = run.forbidden_hit {
            return Some((w, lcfg));
        }
    }
    None
}

/// Run the verification described by `opts`.
pub fn run_verify(opts: &VerifyOptions) -> VerifyReport {
    let cells: Vec<HwConfig> = if opts.cells.is_empty() {
        HwConfig::all().collect()
    } else {
        opts.cells.clone()
    };

    let mut cell_reports = Vec::new();
    for &cell in &cells {
        let config = if opts.smoke {
            ModelConfig::smoke(cell)
        } else {
            ModelConfig::full(cell)
        };
        let exploration = explore::explore(&GridModel::new(config), ExploreLimits::default());
        let litmus_runs = litmus::suite()
            .iter()
            .map(|t| litmus::run_litmus(t, &litmus::litmus_model(t, cell)))
            .collect();
        cell_reports.push(CellReport {
            cell,
            config,
            exploration,
            litmus: litmus_runs,
        });
    }

    let mut mutation_reports = Vec::new();
    if opts.mutations {
        for mutation in Mutation::ALL {
            for cell in mutation.cells() {
                if !cells.contains(&cell) {
                    continue;
                }
                let found = hunt_mutation(mutation, cell, opts.smoke);
                let (witness, bridge) = match found {
                    Some((w, cfg)) => {
                        let b = bridge::replay(&cfg, &w.actions);
                        (Some(w), Some(b))
                    }
                    None => (None, None),
                };
                mutation_reports.push(MutationReport {
                    mutation,
                    cell,
                    witness,
                    bridge,
                });
            }
        }
    }
    VerifyReport {
        cells: cell_reports,
        mutations: mutation_reports,
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== exhaustive model check: coherence × consistency grid =="
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "cell {} ({} SMs × {} lines, {} writes/line): {} states, {} transitions",
                c.cell.code(),
                c.config.sms,
                c.config.lines,
                c.config.writes_per_line,
                c.exploration.states,
                c.exploration.transitions,
            )?;
            if c.exploration.truncated {
                writeln!(f, "  TRUNCATED: state cap hit, run is not exhaustive")?;
            }
            match &c.exploration.violation {
                None => writeln!(
                    f,
                    "  invariants: SWMR, owner-map, gpu-no-ownership, \
                                     acquire-freshness, fill-freshness, writeback — all hold"
                )?,
                Some(w) => {
                    writeln!(f, "  INVARIANT VIOLATION:")?;
                    write!(f, "{w}")?;
                }
            }
            for l in &c.litmus {
                let outcomes: Vec<String> = l.outcomes.iter().map(|o| format!("{o:?}")).collect();
                writeln!(
                    f,
                    "  litmus {:<12} {:>6} interleavings, outcomes {}",
                    l.name,
                    l.nodes,
                    outcomes.join(" ")
                )?;
                if let Some(w) = &l.forbidden_hit {
                    writeln!(f, "    FORBIDDEN OUTCOME REACHED:")?;
                    write!(f, "{w}")?;
                }
                if !l.missing_required.is_empty() {
                    writeln!(
                        f,
                        "    MISSING REQUIRED OUTCOMES: {:?} (model too strong or vacuous)",
                        l.missing_required
                    )?;
                }
            }
        }
        if !self.mutations.is_empty() {
            writeln!(
                f,
                "== mutation self-test ({} seeded bugs) ==",
                Mutation::ALL.len()
            )?;
            for m in &self.mutations {
                match (&m.witness, &m.bridge) {
                    (Some(w), Some(b)) => {
                        let verdict = if b.agreed() {
                            match b.diverged_at {
                                Some(i) => format!(
                                    "impl+clean model agree; both refuse the buggy step at {}",
                                    i + 1
                                ),
                                None => "impl agrees with clean model on full schedule".into(),
                            }
                        } else {
                            format!(
                                "BRIDGE FAILURE: {:?} ({} impl violations)",
                                b.mismatch, b.impl_violations
                            )
                        };
                        writeln!(
                            f,
                            "  {:<26} @ {}: CAUGHT ({} steps; {})",
                            m.mutation.name(),
                            m.cell.code(),
                            w.actions.len(),
                            verdict
                        )?;
                    }
                    _ => writeln!(
                        f,
                        "  {:<26} @ {}: NOT CAUGHT — checker has no teeth for \"{}\"",
                        m.mutation.name(),
                        m.cell.code(),
                        m.mutation.describe()
                    )?,
                }
            }
        }
        let caught = self.mutations.iter().filter(|m| m.passed()).count();
        write!(
            f,
            "verify: {}/{} cells clean",
            self.cells.iter().filter(|c| c.passed()).count(),
            self.cells.len()
        )?;
        if !self.mutations.is_empty() {
            write!(
                f,
                ", {caught}/{} mutation hunts caught",
                self.mutations.len()
            )?;
        }
        writeln!(f, " — {}", if self.passed() { "PASS" } else { "FAIL" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_with_mutations_passes() {
        let report = run_verify(&VerifyOptions {
            cells: Vec::new(),
            smoke: true,
            mutations: true,
        });
        assert!(report.passed(), "verify failed:\n{report}");
        assert_eq!(report.cells.len(), 6);
        // Every declared (mutation, cell) hunt must land.
        let hunts: usize = Mutation::ALL.iter().map(|m| m.cells().len()).sum();
        assert_eq!(report.mutations.len(), hunts);
    }
}
