//! Exhaustive reachability: DFS enumeration, protocol invariants, and
//! BFS counterexample minimization.
//!
//! The explorer walks *every* reachable state of a [`GridModel`] (depth
//! first, with FNV-hashed state dedup over a compact byte encoding) and
//! checks the protocol invariants on each state and transition:
//!
//! * **SWMR** — at most one Owned copy of a line, ever;
//! * **owner-map agreement** — the registry names an SM iff that SM's L1
//!   holds the line Owned;
//! * **GPU-no-ownership** — GPU coherence never produces Owned lines or
//!   registry entries;
//! * **stale-after-acquire** — immediately after an acquire (including
//!   the acquire half of a DRF0 fence-paired atomic), no surviving copy
//!   is older than the coherent backing value;
//! * **stale-fill** — a load miss always fills the current coherent
//!   value (the owner's copy under DeNovo, else the L2);
//! * **writeback-lost** — under DeNovo, once a line is unowned with no
//!   atomic in flight, the L2 holds the newest written version.
//!
//! When a violation is found, a second breadth-first pass computes the
//! *shortest* action prefix from reset that exhibits it, which becomes
//! the [`Witness`] schedule.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use ggs_sim::config::{CoherenceKind, ConsistencyModel};

use crate::model::{
    Action, GridModel, ModelConfig, ProtocolModel, State, StepOutcome, L1, NO_OWNER,
};
use crate::witness::{Witness, WitnessKind};

/// 64-bit FNV-1a, used for state-dedup hashing (stable, allocation-free,
/// and fast on the short byte keys the encoder produces).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Hash-set/map builders keyed by FNV-1a.
pub type FnvBuild = BuildHasherDefault<Fnv64>;

/// Injective compact encoding of `s` with SM indices renamed through
/// `sm_new_of_old` and line indices through `line_new_of_old` (both are
/// old → new maps).  Used as the dedup key so the visited set stores
/// ~40 bytes per state instead of six `Vec`s.
fn encode_renamed(
    cfg: &ModelConfig,
    s: &State,
    sm_new_of_old: &[u8],
    line_new_of_old: &[u8],
) -> Vec<u8> {
    let sms = cfg.sms as usize;
    let lines = cfg.lines as usize;
    let mut out = vec![0u8; sms * lines];
    // l1[new_sm][new_line] = old cell, laid out row-major by new ids.
    for (old_sm, &new_sm) in sm_new_of_old.iter().enumerate() {
        for (old_line, &new_line) in line_new_of_old.iter().enumerate() {
            out[new_sm as usize * lines + new_line as usize] = match s.l1[old_sm * lines + old_line]
            {
                L1::Invalid => 0,
                L1::Valid(v) => 0x40 | v,
                L1::Owned(v) => 0x80 | v,
            };
        }
    }
    let mut per_line = vec![0u8; lines * 3];
    for (old_line, &new_line) in line_new_of_old.iter().enumerate() {
        let o = s.owner[old_line];
        per_line[new_line as usize] = if o == NO_OWNER {
            NO_OWNER
        } else {
            sm_new_of_old[o as usize]
        };
        per_line[lines + new_line as usize] = s.l2v[old_line];
        per_line[2 * lines + new_line as usize] = s.nextv[old_line];
    }
    out.extend_from_slice(&per_line);
    // Per-SM buffers in new-SM order; FIFO order inside each preserved.
    for &old_sm in sm_order(sm_new_of_old) {
        let buf = &s.sb[old_sm as usize];
        out.push(buf.len() as u8);
        for e in buf {
            out.push((line_new_of_old[e.line as usize] << 1) | e.registration as u8);
            out.push(e.version);
        }
    }
    for &old_sm in sm_order(sm_new_of_old) {
        let buf = &s.ab[old_sm as usize];
        out.push(buf.len() as u8);
        for &l in buf {
            out.push(line_new_of_old[l as usize]);
        }
    }
    out
}

/// Old-SM ids in ascending new-id order (the inverse permutation).
fn sm_order(sm_new_of_old: &[u8]) -> &'static [u8] {
    // Permutations are drawn from PERMS below, whose inverses are also
    // members; precomputing the inverse avoids allocation.
    const INV1: [&[u8]; 1] = [&[0]];
    const INV2: [&[u8]; 2] = [&[0, 1], &[1, 0]];
    const INV3: [&[u8]; 6] = [
        &[0, 1, 2],
        &[0, 2, 1],
        &[1, 0, 2],
        &[2, 0, 1], // inverse of [1, 2, 0]
        &[1, 2, 0], // inverse of [2, 0, 1]
        &[2, 1, 0],
    ];
    let table: &[&[u8]] = match sm_new_of_old.len() {
        1 => &INV1,
        2 => &INV2,
        _ => &INV3,
    };
    table
        .iter()
        .copied()
        .find(|inv| {
            inv.iter()
                .enumerate()
                .all(|(n, &o)| sm_new_of_old[o as usize] == n as u8)
        })
        .expect("permutation has an inverse in the table")
}

/// All permutations of `0..n` (old → new), for n ∈ {1, 2, 3}.
fn perms(n: u8) -> &'static [&'static [u8]] {
    const P1: [&[u8]; 1] = [&[0]];
    const P2: [&[u8]; 2] = [&[0, 1], &[1, 0]];
    const P3: [&[u8]; 6] = [
        &[0, 1, 2],
        &[0, 2, 1],
        &[1, 0, 2],
        &[1, 2, 0],
        &[2, 0, 1],
        &[2, 1, 0],
    ];
    match n {
        1 => &P1,
        2 => &P2,
        3 => &P3,
        _ => unreachable!("model configs use at most 3 SMs / lines"),
    }
}

/// Canonical dedup key of `s` under the model's symmetry group: SMs are
/// interchangeable and so are lines (the transition relation and every
/// invariant are equivariant under renaming), so states that differ
/// only by a renaming are explored once.  The canonical form is the
/// lexicographically smallest renamed encoding.
fn encode(cfg: &ModelConfig, s: &State) -> Box<[u8]> {
    let mut best: Option<Vec<u8>> = None;
    for &sp in perms(cfg.sms) {
        for &lp in perms(cfg.lines) {
            let enc = encode_renamed(cfg, s, sp, lp);
            if best.as_ref().is_none_or(|b| enc < *b) {
                best = Some(enc);
            }
        }
    }
    best.expect("at least the identity renaming")
        .into_boxed_slice()
}

/// A violated invariant plus its concrete detail.
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// Invariant name (aligned with `ggs_sim::check::InvariantKind`
    /// display names where the invariant exists dynamically too).
    pub invariant: &'static str,
    /// Which SM/line and what was expected.
    pub detail: String,
}

/// Coherent backing version of `line`: the owner's copy, else the L2.
fn backing(cfg: &ModelConfig, s: &State, line: u8) -> u8 {
    match s.owner[line as usize] {
        NO_OWNER => s.l2v[line as usize],
        o => s.l1[o as usize * cfg.lines as usize + line as usize]
            .version()
            .unwrap_or(s.l2v[line as usize]),
    }
}

/// Check the per-state structural invariants.
pub fn check_state(cfg: &ModelConfig, s: &State) -> Option<InvariantViolation> {
    for line in 0..cfg.lines {
        let mut owners = Vec::new();
        for sm in 0..cfg.sms {
            let c = s.l1[sm as usize * cfg.lines as usize + line as usize];
            if matches!(c, L1::Owned(_)) {
                owners.push(sm);
            }
        }
        // SWMR: at most one writable (Owned) copy per line.
        if owners.len() > 1 {
            return Some(InvariantViolation {
                invariant: "SWMR",
                detail: format!("line {line} is Owned by SMs {owners:?} simultaneously"),
            });
        }
        // Owner-map agreement, both directions.
        let reg = s.owner[line as usize];
        match (reg, owners.first().copied()) {
            (NO_OWNER, None) => {}
            (NO_OWNER, Some(sm)) => {
                return Some(InvariantViolation {
                    invariant: "owner-map-mismatch",
                    detail: format!(
                        "SM {sm} holds line {line} Owned but the registry has no owner"
                    ),
                })
            }
            (r, None) => {
                return Some(InvariantViolation {
                    invariant: "owner-map-mismatch",
                    detail: format!(
                        "registry names SM {r} for line {line} but its L1 copy is not Owned"
                    ),
                })
            }
            (r, Some(sm)) if r != sm => {
                return Some(InvariantViolation {
                    invariant: "owner-map-mismatch",
                    detail: format!(
                        "registry names SM {r} for line {line} but SM {sm} holds it Owned"
                    ),
                })
            }
            _ => {}
        }
        match cfg.hw.coherence {
            // GPU coherence has no ownership at all.
            CoherenceKind::Gpu => {
                if reg != NO_OWNER || !owners.is_empty() {
                    return Some(InvariantViolation {
                        invariant: "gpu-owned-line",
                        detail: format!(
                            "line {line} has ownership state under GPU coherence \
                             (registry {reg:?}, owned copies {owners:?})"
                        ),
                    });
                }
            }
            // DeNovo never loses the newest write: once a line is
            // unowned (and no issued atomic is still waiting to apply),
            // the L2 must hold the latest version handed out.
            CoherenceKind::DeNovo => {
                let pending_atomic = s.ab.iter().any(|buf| buf.contains(&line));
                let latest = s.nextv[line as usize] - 1;
                if reg == NO_OWNER
                    && !pending_atomic
                    && latest > 0
                    && s.l2v[line as usize] != latest
                {
                    return Some(InvariantViolation {
                        invariant: "writeback-lost",
                        detail: format!(
                            "line {line} is unowned but the L2 holds version {} (latest \
                             written is {latest})",
                            s.l2v[line as usize]
                        ),
                    });
                }
            }
        }
    }
    None
}

/// Check the transition-scoped invariants for `a` applied from `prev`.
pub fn check_transition(
    cfg: &ModelConfig,
    prev: &State,
    a: Action,
    out: &StepOutcome,
) -> Option<InvariantViolation> {
    // Fill freshness: a load miss must observe the coherent value as of
    // the pre-state (the owner's copy under DeNovo, else the L2).
    if let (Action::Load { sm, line }, Some(false)) = (a, out.l1_hit) {
        let expect = backing(cfg, prev, line);
        let got = out.observed.unwrap_or(expect);
        if got != expect {
            return Some(InvariantViolation {
                invariant: "stale-fill",
                detail: format!(
                    "SM {sm} load miss on line {line} filled version {got}, but the \
                     coherent value was {expect}"
                ),
            });
        }
    }
    // Acquire freshness: after the flash, no surviving copy of the
    // fencing SM may be older than the coherent backing value.
    let acq_sm = match a {
        Action::Acquire { sm } => Some(sm),
        Action::AtomicRet { sm, .. } | Action::AtomicNr { sm, .. }
            if cfg.hw.consistency == ConsistencyModel::Drf0 =>
        {
            Some(sm)
        }
        _ => None,
    };
    if let Some(sm) = acq_sm {
        for line in 0..cfg.lines {
            let c = out.state.l1[sm as usize * cfg.lines as usize + line as usize];
            if let L1::Valid(v) = c {
                let fresh = backing(cfg, &out.state, line);
                if v != fresh {
                    return Some(InvariantViolation {
                        invariant: "stale-after-acquire",
                        detail: format!(
                            "after SM {sm}'s acquire, line {line} is still cached at \
                             version {v} while the coherent value is {fresh}"
                        ),
                    });
                }
            }
        }
    }
    None
}

/// Search bounds (a safety net, not a tuning knob: exhaustive runs must
/// finish below them or the run is reported truncated and fails).
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Hard cap on distinct states.
    pub max_states: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 20_000_000,
        }
    }
}

/// Result of one exhaustive pass over a cell.
#[derive(Debug)]
pub struct Exploration {
    /// Distinct reachable states.
    pub states: u64,
    /// Transitions taken (enabled actions summed over all states).
    pub transitions: u64,
    /// First violation found, minimized to the shortest prefix.
    pub violation: Option<Witness>,
    /// True if `max_states` stopped the search early.
    pub truncated: bool,
}

/// Exhaustively enumerate every reachable state of `model` (DFS with
/// FNV-hashed dedup), checking all invariants.  On a violation, a BFS
/// pass minimizes the counterexample to the shortest action prefix.
pub fn explore(model: &GridModel, limits: ExploreLimits) -> Exploration {
    let cfg = *model.config();
    let init = model.initial();
    let mut visited: HashSet<Box<[u8]>, FnvBuild> = HashSet::default();
    visited.insert(encode(&cfg, &init));
    let mut stack = vec![init];
    let mut actions = Vec::new();
    let mut states = 1u64;
    let mut transitions = 0u64;
    let mut truncated = false;

    'dfs: while let Some(s) = stack.pop() {
        actions.clear();
        model.enabled_actions(&s, &mut actions);
        for &a in &actions {
            let out = match model.step(&s, a) {
                Some(o) => o,
                None => continue,
            };
            transitions += 1;
            if check_transition(&cfg, &s, a, &out).is_some()
                || check_state(&cfg, &out.state).is_some()
            {
                // Found: stop the DFS and re-search breadth-first for
                // the shortest prefix.
                let witness = minimize(model).expect("violation reachable, BFS must refind it");
                return Exploration {
                    states,
                    transitions,
                    violation: Some(witness),
                    truncated,
                };
            }
            let key = encode(&cfg, &out.state);
            if visited.insert(key) {
                states += 1;
                if states >= limits.max_states {
                    truncated = true;
                    break 'dfs;
                }
                stack.push(out.state);
            }
        }
    }
    Exploration {
        states,
        transitions,
        violation: None,
        truncated,
    }
}

/// Breadth-first search for the *shortest* action prefix from reset that
/// violates any invariant.  Returns `None` when the space is clean.
pub fn minimize(model: &GridModel) -> Option<Witness> {
    let cfg = *model.config();
    // Arena of discovered states plus parent links for path rebuilding.
    let mut arena: Vec<State> = vec![model.initial()];
    let mut parent: Vec<(usize, Option<Action>)> = vec![(0, None)];
    let mut seen: HashMap<Box<[u8]>, usize, FnvBuild> = HashMap::default();
    seen.insert(encode(&cfg, &arena[0]), 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut actions = Vec::new();

    let rebuild =
        |arena: &[State], parent: &[(usize, Option<Action>)], mut i: usize, last: Action| {
            let _ = arena;
            let mut path = vec![last];
            while let (p, Some(a)) = parent[i] {
                path.push(a);
                i = p;
            }
            path.reverse();
            path
        };

    while let Some(i) = queue.pop_front() {
        let s = arena[i].clone();
        actions.clear();
        model.enabled_actions(&s, &mut actions);
        for &a in &actions {
            let out = match model.step(&s, a) {
                Some(o) => o,
                None => continue,
            };
            let viol =
                check_transition(&cfg, &s, a, &out).or_else(|| check_state(&cfg, &out.state));
            if let Some(v) = viol {
                return Some(Witness {
                    cell: cfg.hw,
                    actions: rebuild(&arena, &parent, i, a),
                    kind: WitnessKind::Invariant {
                        invariant: v.invariant,
                        detail: v.detail,
                    },
                });
            }
            let key = encode(&cfg, &out.state);
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                let idx = arena.len();
                arena.push(out.state);
                parent.push((i, Some(a)));
                e.insert(idx);
                queue.push_back(idx);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::Mutation;
    use ggs_sim::config::{CoherenceKind as Coh, ConsistencyModel as Con, HwConfig};

    fn smoke(coh: Coh, con: Con) -> ModelConfig {
        ModelConfig::smoke(HwConfig::new(coh, con))
    }

    #[test]
    fn clean_smoke_cells_have_no_violations() {
        for coh in [Coh::Gpu, Coh::DeNovo] {
            for con in [Con::Drf0, Con::Drf1, Con::DrfRlx] {
                let model = GridModel::new(smoke(coh, con));
                let r = explore(&model, ExploreLimits::default());
                assert!(
                    !r.truncated,
                    "{coh:?}/{con:?} truncated at {} states",
                    r.states
                );
                assert!(
                    r.violation.is_none(),
                    "{coh:?}/{con:?} violated:\n{}",
                    r.violation.unwrap()
                );
                assert!(
                    r.states > 100,
                    "{coh:?}/{con:?} suspiciously small: {}",
                    r.states
                );
            }
        }
    }

    #[test]
    fn skip_revoke_breaks_swmr_with_short_witness() {
        let model = GridModel::mutated(smoke(Coh::DeNovo, Con::Drf1), Mutation::SkipRevoke);
        let r = explore(&model, ExploreLimits::default());
        let w = r.violation.expect("SkipRevoke must be caught");
        match &w.kind {
            WitnessKind::Invariant { invariant, .. } => assert_eq!(*invariant, "SWMR"),
            other => panic!("unexpected witness kind {other:?}"),
        }
        // Two stores from different SMs are necessary and sufficient.
        assert_eq!(w.actions.len(), 2, "witness not minimal:\n{w}");
    }

    #[test]
    fn drop_invalidation_breaks_acquire_freshness() {
        let model = GridModel::mutated(smoke(Coh::Gpu, Con::Drf0), Mutation::DropInvalidation);
        let r = explore(&model, ExploreLimits::default());
        let w = r.violation.expect("DropInvalidation must be caught");
        match &w.kind {
            WitnessKind::Invariant { invariant, .. } => {
                assert_eq!(*invariant, "stale-after-acquire")
            }
            other => panic!("unexpected witness kind {other:?}"),
        }
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use crate::model::{GridModel, ModelConfig};
    use ggs_sim::config::{CoherenceKind as Coh, ConsistencyModel as Con, HwConfig};

    #[test]
    #[ignore]
    fn probe_state_space() {
        for (label, mk) in [
            ("smoke", ModelConfig::smoke as fn(HwConfig) -> ModelConfig),
            ("full", ModelConfig::full),
        ] {
            for coh in [Coh::Gpu, Coh::DeNovo] {
                for con in [Con::Drf0, Con::Drf1, Con::DrfRlx] {
                    let cfg = mk(HwConfig::new(coh, con));
                    let t = std::time::Instant::now();
                    let r = explore(
                        &GridModel::new(cfg),
                        ExploreLimits {
                            max_states: 2_000_000,
                        },
                    );
                    eprintln!(
                        "{label} {coh:?}/{con:?}: states={} transitions={} truncated={} in {:?}",
                        r.states,
                        r.transitions,
                        r.truncated,
                        t.elapsed()
                    );
                }
            }
        }
    }
}
