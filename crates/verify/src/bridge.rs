//! Conformance bridge: replay a witness schedule through the real
//! `ggs_sim::mem::MemorySystem` and pin model ↔ implementation
//! agreement.
//!
//! The protocol model in this crate is only worth trusting if it is the
//! *same protocol* `mem.rs` implements.  The bridge closes that loop:
//! given any action schedule (a minimized counterexample from a mutated
//! model, or a random legal schedule from the differential test), it
//! replays the schedule simultaneously through
//!
//! 1. the **clean** `GridModel` (the mutation, if any, stays out), and
//! 2. a real [`MemorySystem`] with the dynamic protocol checker enabled,
//!
//! and after every step compares the complete structural state both
//! sides expose: each SM's L1 line state (Invalid/Valid/Owned) and the
//! ownership registry.  Timing-only machinery (MSHRs, bank queues,
//! latencies) is exactly what the model erased, so it is excluded by
//! construction; everything the two sides share must agree exactly.
//!
//! For a mutant's witness the interesting step is where the schedule
//! needs the *bug* to proceed: the clean model refuses the transition
//! (`diverged_at`), demonstrating that the real implementation — which
//! agrees with the clean model up to that point and reports zero
//! dynamic violations — does not contain the seeded bug.

use ggs_sim::cache::LineState;
use ggs_sim::config::ConsistencyModel;
use ggs_sim::mem::MemorySystem;
use ggs_sim::params::SystemParams;

use crate::model::{Action, GridModel, ModelConfig, ProtocolModel, L1, NO_OWNER};

/// Byte stride between model lines when mapped onto the implementation's
/// address space (larger than any configured line size, so model lines
/// never alias).
const LINE_STRIDE: u64 = 4096;

/// Outcome of replaying one schedule through model and implementation.
#[derive(Debug)]
pub struct BridgeReport {
    /// Steps replayed with both sides in agreement.
    pub steps_replayed: usize,
    /// Step index at which the schedule required a transition the clean
    /// model refuses (only happens for schedules produced by a mutated
    /// model — the refusal is the point: the real protocol does not
    /// take the buggy step).
    pub diverged_at: Option<usize>,
    /// First structural disagreement between model and implementation,
    /// if any.  `Some` here means the bridge FAILED.
    pub mismatch: Option<String>,
    /// Violations the implementation's own dynamic checker recorded
    /// during the replay.  Non-zero means the bridge FAILED.
    pub impl_violations: usize,
}

impl BridgeReport {
    /// Did model and implementation agree on every replayed step?
    pub fn agreed(&self) -> bool {
        self.mismatch.is_none() && self.impl_violations == 0
    }
}

fn addr_of(line: u8) -> u64 {
    line as u64 * LINE_STRIDE
}

/// Compare every structural fact the model and the implementation both
/// expose; `None` means exact agreement.
fn compare(
    cfg: &ModelConfig,
    model: &crate::model::State,
    mem: &MemorySystem<'_>,
) -> Option<String> {
    for sm in 0..cfg.sms {
        for line in 0..cfg.lines {
            let want = model.l1[sm as usize * cfg.lines as usize + line as usize];
            let got = mem.probe_l1_state(sm as u32, addr_of(line));
            let ok = matches!(
                (want, got),
                (L1::Invalid, None)
                    | (L1::Valid(_), Some(LineState::Valid))
                    | (L1::Owned(_), Some(LineState::Owned))
            );
            if !ok {
                return Some(format!(
                    "SM {sm} line {line}: model says {want:?}, implementation says {got:?}"
                ));
            }
        }
    }
    for line in 0..cfg.lines {
        let want = model.owner[line as usize];
        let got = mem.probe_owner(addr_of(line));
        let ok = match (want, got) {
            (NO_OWNER, None) => true,
            (w, Some(g)) => w as u32 == g,
            _ => false,
        };
        if !ok {
            return Some(format!(
                "line {line}: model owner {want:?}, implementation owner {got:?}"
            ));
        }
    }
    None
}

/// Replay `actions` through the clean model of `cfg`'s cell and a real
/// `MemorySystem`, comparing structural state after every step.
pub fn replay(cfg: &ModelConfig, actions: &[Action]) -> BridgeReport {
    let model = GridModel::new(*cfg);
    let params = SystemParams::default();
    let mut mem = MemorySystem::new(&params, cfg.hw);
    mem.enable_protocol_checker();

    let mut state = model.initial();
    let mut diverged_at = None;
    let mut mismatch = None;
    let mut steps = 0usize;
    let drf0 = cfg.hw.consistency == ConsistencyModel::Drf0;

    for (i, &a) in actions.iter().enumerate() {
        let out = match model.step(&state, a) {
            Some(o) => o,
            None => {
                // The schedule needs the seeded bug to continue; the
                // clean protocol refuses right here.
                diverged_at = Some(i);
                break;
            }
        };
        // Mirror the action into the implementation.  Times only need
        // to increase; latency does not affect structural state.
        let at = (i as u64 + 1) * 1000;
        match a {
            Action::Load { sm, line } => {
                // Residency (= hit/miss) was compared after the previous
                // step, so the load's observable hit/miss agrees too.
                mem.load(sm as u32, addr_of(line), at);
            }
            Action::Store { sm, line } => {
                mem.store(sm as u32, addr_of(line), at);
            }
            Action::AtomicRet { sm, line } | Action::AtomicNr { sm, line } if drf0 => {
                // A DRF0 atomic is fence-paired: `sm.rs` performs the
                // release drain (timing only) and the acquire
                // invalidation before the RMW.
                mem.acquire(sm as u32);
                mem.atomic(sm as u32, addr_of(line), at);
            }
            Action::AtomicRet { sm, line } => {
                mem.atomic(sm as u32, addr_of(line), at);
            }
            Action::AtomicNr { .. } => {
                // Issue only; the RMW lands at the matching ApplyAtomic.
            }
            Action::ApplyAtomic { sm, slot } => {
                // The target line is recorded in the pre-step state.
                let line = state.ab[sm as usize][slot as usize];
                mem.atomic(sm as u32, addr_of(line), at);
            }
            Action::DrainStore { .. } | Action::Release { .. } => {
                // Timing-only in the implementation (the store buffer
                // and `release_drain` never change structural state).
            }
            Action::Acquire { sm } => {
                mem.acquire(sm as u32);
            }
            Action::Evict { sm, line } => {
                mem.debug_evict(sm as u32, addr_of(line), at);
            }
        }
        state = out.state;
        steps = i + 1;
        if let Some(m) = compare(cfg, &state, &mem) {
            mismatch = Some(format!("after step {}: {m}", i + 1));
            break;
        }
    }

    let impl_violations = mem.take_protocol_violations().len();
    BridgeReport {
        steps_replayed: steps,
        diverged_at,
        mismatch,
        impl_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_sim::config::{CoherenceKind as Coh, ConsistencyModel as Con, HwConfig};

    #[test]
    fn denovo_ownership_schedule_agrees() {
        let cfg = ModelConfig::smoke(HwConfig::new(Coh::DeNovo, Con::Drf1));
        let schedule = [
            Action::Store { sm: 0, line: 0 },
            Action::Load { sm: 1, line: 0 },
            Action::Store { sm: 1, line: 0 },
            Action::Acquire { sm: 0 },
            Action::Evict { sm: 1, line: 0 },
            Action::Load { sm: 0, line: 0 },
        ];
        let r = replay(&cfg, &schedule);
        assert!(r.agreed(), "bridge disagreement: {r:?}");
        assert_eq!(r.steps_replayed, schedule.len());
        assert_eq!(r.diverged_at, None);
    }

    #[test]
    fn gpu_write_through_schedule_agrees() {
        let cfg = ModelConfig::smoke(HwConfig::new(Coh::Gpu, Con::Drf0));
        let schedule = [
            Action::Load { sm: 0, line: 0 },
            Action::Store { sm: 0, line: 0 },
            Action::DrainStore { sm: 0 },
            Action::AtomicRet { sm: 0, line: 1 },
            Action::Load { sm: 1, line: 1 },
            Action::Acquire { sm: 1 },
        ];
        let r = replay(&cfg, &schedule);
        assert!(r.agreed(), "bridge disagreement: {r:?}");
        assert_eq!(r.steps_replayed, schedule.len());
    }
}
