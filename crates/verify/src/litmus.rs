//! Litmus harness: small concurrent programs, all interleavings, and
//! per-consistency allowed/forbidden outcome sets.
//!
//! Each [`Litmus`] is a fixed per-thread program over at most two lines
//! (thread *i* runs on SM *i*).  The executor enumerates **every**
//! interleaving of thread steps and environment steps (store-buffer
//! drains, buffered-atomic completions) under the given grid cell and
//! collects the set of terminal observation tuples.  The spec then
//! asserts two things:
//!
//! * no **forbidden** outcome is reachable — the consistency model's
//!   guarantee actually holds in the protocol model;
//! * every **required** outcome is reachable — the weak behaviours the
//!   model is supposed to permit really show up, so a vacuous model (or
//!   a harness bug) cannot silently pass.
//!
//! Values are write versions (see `model.rs`): observation `v` means
//! "this read returned the `v`-th write to that line" and `0` means the
//! initial value.

use std::collections::{BTreeSet, HashMap, VecDeque};

use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};

use crate::explore::FnvBuild;
use crate::model::{Action, GridModel, ModelConfig, ProtocolModel, State};
use crate::witness::{Witness, WitnessKind};

/// One instruction of a litmus thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LitOp {
    /// Plain load (observing).
    Load(u8),
    /// Plain store.
    Store(u8),
    /// Value-returning atomic RMW (observing; the observation is the
    /// pre-RMW version).
    AtomicRet(u8),
    /// Non-returning atomic RMW.
    AtomicNr(u8),
    /// Acquire fence.
    Acquire,
    /// Release fence (waits for the store buffer to drain).
    Release,
}

impl LitOp {
    fn action(self, sm: u8) -> Action {
        match self {
            LitOp::Load(line) => Action::Load { sm, line },
            LitOp::Store(line) => Action::Store { sm, line },
            LitOp::AtomicRet(line) => Action::AtomicRet { sm, line },
            LitOp::AtomicNr(line) => Action::AtomicNr { sm, line },
            LitOp::Acquire => Action::Acquire { sm },
            LitOp::Release => Action::Release { sm },
        }
    }

    fn observes(self) -> bool {
        matches!(self, LitOp::Load(_) | LitOp::AtomicRet(_))
    }
}

/// A litmus test: named per-thread programs plus the outcome contract.
#[derive(Debug, Clone, Copy)]
pub struct Litmus {
    /// Test name (stable, used in reports and docs).
    pub name: &'static str,
    /// What the test pins down.
    pub about: &'static str,
    /// Per-thread programs; thread *i* runs on SM *i*.
    pub threads: &'static [&'static [LitOp]],
    /// Distinct lines touched (sizes the model).
    pub lines: u8,
    /// Is this terminal observation tuple forbidden under `hw`?
    pub forbidden: fn(HwConfig, &[u8]) -> bool,
    /// Outcomes that must be reachable under `hw` (non-vacuity).
    pub required: fn(HwConfig) -> Vec<Vec<u8>>,
}

/// The litmus suite: message passing (plain and synchronized),
/// store buffering, CoRR, atomic RMW chains, release/acquire handoff,
/// and same-thread atomic ordering.
pub fn suite() -> Vec<Litmus> {
    use ConsistencyModel::*;
    use LitOp::*;
    vec![
        Litmus {
            name: "mp_plain",
            about: "message passing with plain ops: stale data is legal without sync",
            // t1 warms a data copy, then polls flag, then re-reads data.
            threads: &[&[Store(0), Store(1)], &[Load(0), Load(1), Load(0)]],
            lines: 2,
            forbidden: |_, _| false,
            // The racy (0,1,0) outcome must be exhibited: seeing the flag
            // while still reading stale data from the warmed copy.
            required: |_| vec![vec![0, 1, 0]],
        },
        Litmus {
            name: "mp_paired",
            about: "message passing through an atomic flag: DRF0 forbids stale data",
            threads: &[&[Store(0), AtomicNr(1)], &[Load(0), AtomicRet(1), Load(0)]],
            lines: 2,
            // Under DRF0 the flag atomic is fence-paired on both sides:
            // observing the flag write implies fresh data.
            forbidden: |hw, o| hw.consistency == Drf0 && o[1] == 1 && o[2] == 0,
            required: |hw| match hw.consistency {
                Drf0 => vec![vec![0, 1, 1], vec![0, 0, 0]],
                // Unpaired atomics don't invalidate: the stale read is
                // not just allowed but reachable.
                Drf1 | DrfRlx => vec![vec![0, 1, 0]],
            },
        },
        Litmus {
            name: "sb",
            about: "store buffering with plain ops: both loads may miss both stores",
            threads: &[&[Store(0), Load(1)], &[Store(1), Load(0)]],
            lines: 2,
            forbidden: |_, _| false,
            required: |hw| match hw.coherence {
                // Write-through buffering exposes the classic (0,0).
                CoherenceKind::Gpu => vec![vec![0, 0]],
                // DeNovo registration is synchronous: a store is visible
                // to coherent readers immediately, so (0,0) vanishes but
                // (1,1) remains.
                CoherenceKind::DeNovo => vec![vec![1, 1]],
            },
        },
        Litmus {
            name: "corr",
            about: "coherent read-read: reads of one line never go backwards",
            threads: &[&[Store(0), Store(0)], &[Load(0), Acquire, Load(0)]],
            lines: 1,
            forbidden: |_, o| o[1] < o[0],
            required: |_| vec![vec![0, 0], vec![2, 2]],
        },
        Litmus {
            name: "atomic_chain",
            about: "atomic RMW chain: concurrent RMWs serialize, no lost update",
            threads: &[&[Load(0), AtomicRet(0)], &[AtomicRet(0)]],
            lines: 1,
            // Two RMWs observing the same pre-version read the same
            // write twice: a lost update.
            forbidden: |_, o| o[1] == o[2],
            required: |_| vec![vec![0, 0, 1], vec![0, 1, 0]],
        },
        Litmus {
            name: "rel_acq",
            about: "release/acquire handoff: flag observed implies data fresh, every cell",
            threads: &[
                &[Store(0), Release, AtomicNr(1)],
                &[AtomicRet(1), Acquire, Load(0)],
            ],
            lines: 2,
            // The flag atomic is issued only past the release point, so
            // observing it implies the data write is visible — under
            // every consistency model.
            forbidden: |_, o| o[0] >= 1 && o[1] == 0,
            required: |_| vec![vec![1, 1], vec![0, 0]],
        },
        Litmus {
            name: "atomic_pair",
            about: "same-thread atomics: program order holds up to DRF1, relaxes under DRFrlx",
            threads: &[&[AtomicNr(0), AtomicNr(1)], &[AtomicRet(1), AtomicRet(0)]],
            lines: 2,
            // Seeing the younger atomic's effect without the older's.
            forbidden: |hw, o| hw.consistency != DrfRlx && o == [1, 0],
            required: |hw| match hw.consistency {
                Drf0 | Drf1 => vec![vec![1, 1], vec![0, 0]],
                // Relaxed atomics may complete out of order: (1,0) must
                // actually be exhibited.
                DrfRlx => vec![vec![1, 1], vec![0, 0], vec![1, 0]],
            },
        },
    ]
}

/// Result of enumerating one litmus test under one cell.
#[derive(Debug)]
pub struct LitmusRun {
    /// Test name.
    pub name: &'static str,
    /// All reachable terminal observation tuples.
    pub outcomes: BTreeSet<Vec<u8>>,
    /// A reachable forbidden outcome, with its minimized schedule.
    pub forbidden_hit: Option<Witness>,
    /// Required outcomes that never showed up.
    pub missing_required: Vec<Vec<u8>>,
    /// Interleavings explored (distinct (state, pc, obs) nodes).
    pub nodes: u64,
}

impl LitmusRun {
    /// Did the test uphold its contract?
    pub fn passed(&self) -> bool {
        self.forbidden_hit.is_none() && self.missing_required.is_empty()
    }
}

/// Executor node: machine state plus per-thread program counters and the
/// observations accumulated so far.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Node {
    state: State,
    pc: Vec<u8>,
    obs: Vec<u8>,
}

/// Model sized for a litmus program under `hw`.
pub fn litmus_model(test: &Litmus, hw: HwConfig) -> GridModel {
    GridModel::new(ModelConfig::litmus(
        hw,
        test.threads.len() as u8,
        test.lines.max(1),
    ))
}

/// Enumerate all interleavings of `test` on `model` (which may carry a
/// mutation) and check the outcome contract for `model`'s cell.
pub fn run_litmus(test: &Litmus, model: &GridModel) -> LitmusRun {
    let hw = model.config().hw;
    // Observation slots are fixed by (thread, program position) so that
    // outcome tuples are comparable across interleavings; slot values
    // start as a sentinel and are filled as the observing ops execute.
    const UNSET: u8 = 0xff;
    let mut slot_of: Vec<Vec<Option<usize>>> = Vec::new();
    let mut n_obs = 0usize;
    for prog in test.threads {
        let mut slots = Vec::with_capacity(prog.len());
        for op in *prog {
            if op.observes() {
                slots.push(Some(n_obs));
                n_obs += 1;
            } else {
                slots.push(None);
            }
        }
        slot_of.push(slots);
    }
    // BFS over interleaving nodes with parent links, so the first
    // forbidden outcome found is already a shortest schedule.
    let init = Node {
        state: model.initial(),
        pc: vec![0; test.threads.len()],
        obs: vec![UNSET; n_obs],
    };
    let mut arena: Vec<Node> = vec![init.clone()];
    let mut parent: Vec<(usize, Option<Action>)> = vec![(0, None)];
    let mut seen: HashMap<Node, usize, FnvBuild> = HashMap::default();
    seen.insert(init, 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut outcomes = BTreeSet::new();
    let mut forbidden_hit: Option<Witness> = None;

    while let Some(i) = queue.pop_front() {
        let node = arena[i].clone();
        let done = node
            .pc
            .iter()
            .enumerate()
            .all(|(t, &pc)| pc as usize >= test.threads[t].len());
        if done {
            if forbidden_hit.is_none() && (test.forbidden)(hw, &node.obs) {
                let mut path = Vec::new();
                let mut j = i;
                while let (p, Some(a)) = parent[j] {
                    path.push(a);
                    j = p;
                }
                path.reverse();
                forbidden_hit = Some(Witness {
                    cell: hw,
                    actions: path,
                    kind: WitnessKind::Litmus {
                        test: test.name,
                        outcome: node.obs.clone(),
                    },
                });
            }
            outcomes.insert(node.obs.clone());
            // Terminal for the program; environment steps can no longer
            // change what was observed.
            continue;
        }
        // Successors: one instruction from any ready thread...
        let mut succ: Vec<(Action, Node)> = Vec::new();
        for (t, prog) in test.threads.iter().enumerate() {
            let pc = node.pc[t] as usize;
            if pc >= prog.len() {
                continue;
            }
            let op = prog[pc];
            let a = op.action(t as u8);
            if let Some(out) = model.step(&node.state, a) {
                let mut n = node.clone();
                n.state = out.state;
                n.pc[t] += 1;
                if let Some(slot) = slot_of[t][pc] {
                    n.obs[slot] = out.observed.expect("observing op yields a version");
                }
                succ.push((a, n));
            }
        }
        // ...or one environment step (drain / buffered-atomic apply).
        for sm in 0..model.config().sms {
            if !node.state.sb[sm as usize].is_empty() {
                let a = Action::DrainStore { sm };
                if let Some(out) = model.step(&node.state, a) {
                    let mut n = node.clone();
                    n.state = out.state;
                    succ.push((a, n));
                }
            }
            for slot in 0..node.state.ab[sm as usize].len() as u8 {
                let a = Action::ApplyAtomic { sm, slot };
                if let Some(out) = model.step(&node.state, a) {
                    let mut n = node.clone();
                    n.state = out.state;
                    succ.push((a, n));
                }
            }
        }
        for (a, n) in succ {
            if !seen.contains_key(&n) {
                let idx = arena.len();
                seen.insert(n.clone(), idx);
                arena.push(n);
                parent.push((i, Some(a)));
                queue.push_back(idx);
            }
        }
    }

    let missing_required = (test.required)(hw)
        .into_iter()
        .filter(|want| !outcomes.contains(want))
        .collect();
    LitmusRun {
        name: test.name,
        outcomes,
        forbidden_hit,
        missing_required,
        nodes: arena.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::Mutation;
    use ggs_sim::config::{CoherenceKind as Coh, ConsistencyModel as Con};

    #[test]
    fn clean_suite_passes_every_cell() {
        for test in suite() {
            for coh in [Coh::Gpu, Coh::DeNovo] {
                for con in [Con::Drf0, Con::Drf1, Con::DrfRlx] {
                    let hw = HwConfig::new(coh, con);
                    let run = run_litmus(&test, &litmus_model(&test, hw));
                    assert!(
                        run.passed(),
                        "{} under {hw}: forbidden={:?} missing={:?} outcomes={:?}",
                        test.name,
                        run.forbidden_hit.as_ref().map(|w| w.to_string()),
                        run.missing_required,
                        run.outcomes,
                    );
                }
            }
        }
    }

    #[test]
    fn release_bug_is_caught_by_handoff_litmus() {
        let test = suite().into_iter().find(|t| t.name == "rel_acq").unwrap();
        let hw = HwConfig::new(Coh::Gpu, Con::Drf0);
        let model = GridModel::mutated(
            ModelConfig::litmus(hw, 2, 2),
            Mutation::ReleaseIgnoresPending,
        );
        let run = run_litmus(&test, &model);
        let w = run
            .forbidden_hit
            .expect("forbidden outcome must be reachable");
        match &w.kind {
            WitnessKind::Litmus { outcome, .. } => {
                assert!(
                    outcome[0] >= 1 && outcome[1] == 0,
                    "wrong outcome {outcome:?}"
                )
            }
            other => panic!("unexpected witness kind {other:?}"),
        }
    }

    #[test]
    fn stale_atomic_bug_is_caught_by_chain_litmus() {
        let test = suite()
            .into_iter()
            .find(|t| t.name == "atomic_chain")
            .unwrap();
        let hw = HwConfig::new(Coh::DeNovo, Con::Drf1);
        let model = GridModel::mutated(ModelConfig::litmus(hw, 2, 1), Mutation::AtomicOnStaleCopy);
        let run = run_litmus(&test, &model);
        assert!(
            run.forbidden_hit.is_some(),
            "lost update must be observable"
        );
    }
}
