//! Pure, timing-free transition systems for the coherence × consistency grid.
//!
//! Each protocol in `ggs_sim::mem` is re-expressed here as a small-step
//! state machine whose state is fully explicit and hashable: per-SM L1
//! line states, the L2 backing value per line, the DeNovo owner registry,
//! and the in-flight messages (store-buffer entries and unapplied
//! non-returning atomics).  Timing is erased; what remains is exactly the
//! structure the protocol invariants quantify over, which makes the state
//! space finite and small enough to enumerate exhaustively.
//!
//! Data values are modelled as *versions*: every store or atomic to a
//! line draws the next version number for that line, so a load observing
//! version `v` identifies precisely which write it read.  This is enough
//! to decide every litmus outcome without modelling arithmetic.

use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};

use crate::mutate::Mutation;

/// Owner-registry sentinel: no SM owns the line.
pub const NO_OWNER: u8 = 0xff;

/// L1 state of one line in one SM, mirroring `ggs_sim::cache::LineState`
/// plus the absent case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1 {
    /// Not resident.
    Invalid,
    /// Resident, readable, discarded by self-invalidation; carries the
    /// version it holds.
    Valid(u8),
    /// DeNovo-registered: resident, survives self-invalidation, is the
    /// unique up-to-date copy; carries the version it holds.
    Owned(u8),
}

impl L1 {
    /// Version held by a resident copy.
    pub fn version(self) -> Option<u8> {
        match self {
            L1::Invalid => None,
            L1::Valid(v) | L1::Owned(v) => Some(v),
        }
    }

    /// Is the line resident (a load would hit)?
    pub fn resident(self) -> bool {
        !matches!(self, L1::Invalid)
    }
}

/// One in-flight store-buffer entry.
///
/// Under GPU coherence an entry is a pending write-through: the L2 copy
/// is updated only when the entry drains.  Under DeNovo an entry records
/// an ownership-registration round trip; the registry and L1 were updated
/// synchronously at issue, so draining it has no structural effect — it
/// only gates the release point, exactly as the timed model's store
/// buffer gates `release_drain`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SbEntry {
    /// Target line.
    pub line: u8,
    /// Version the store produced.
    pub version: u8,
    /// True for a DeNovo registration entry, false for a write-through.
    pub registration: bool,
}

/// Complete explicit state of the modelled machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// `l1[sm * lines + line]`.
    pub l1: Vec<L1>,
    /// DeNovo owner registry per line (`NO_OWNER` if unowned).
    pub owner: Vec<u8>,
    /// Version currently stored at the L2 per line.
    pub l2v: Vec<u8>,
    /// Next version number to hand out per line (starts at 1; version 0
    /// is the initial value).
    pub nextv: Vec<u8>,
    /// Per-SM store buffer, FIFO order.
    pub sb: Vec<Vec<SbEntry>>,
    /// Per-SM issued-but-unapplied non-returning atomics (target lines),
    /// issue order.
    pub ab: Vec<Vec<u8>>,
}

/// One protocol action; `sm` and `line` index the small config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Plain load by `sm` from `line`.
    Load {
        /// Issuing SM.
        sm: u8,
        /// Target line.
        line: u8,
    },
    /// Plain store by `sm` to `line`.
    Store {
        /// Issuing SM.
        sm: u8,
        /// Target line.
        line: u8,
    },
    /// Value-returning atomic RMW (applies synchronously in all models).
    AtomicRet {
        /// Issuing SM.
        sm: u8,
        /// Target line.
        line: u8,
    },
    /// Non-returning atomic RMW.  Under DRF0 it is fence-paired and
    /// applies synchronously like [`Action::AtomicRet`]; under DRF1/DRFrlx
    /// it is issued into the atomic buffer and applied later by
    /// [`Action::ApplyAtomic`].
    AtomicNr {
        /// Issuing SM.
        sm: u8,
        /// Target line.
        line: u8,
    },
    /// Apply the buffered non-returning atomic at `slot` of `sm`'s atomic
    /// buffer.  Under DRF1 only slot 0 is eligible (atomics stay
    /// program-ordered); under DRFrlx any slot may complete first.
    ApplyAtomic {
        /// Issuing SM.
        sm: u8,
        /// Buffer slot to apply.
        slot: u8,
    },
    /// Drain the oldest store-buffer entry of `sm` to the L2.
    DrainStore {
        /// Draining SM.
        sm: u8,
    },
    /// Acquire fence by `sm`: flash self-invalidation of unowned lines.
    Acquire {
        /// Fencing SM.
        sm: u8,
    },
    /// Release fence by `sm`: the release point, reached once the store
    /// buffer has drained.  No structural effect of its own.
    Release {
        /// Fencing SM.
        sm: u8,
    },
    /// Evict `line` from `sm`'s L1 (capacity/conflict victim).  An Owned
    /// victim writes back to the L2 and unregisters.
    Evict {
        /// Evicting SM.
        sm: u8,
        /// Victim line.
        line: u8,
    },
}

impl Action {
    /// SM performing the action.
    pub fn sm(self) -> u8 {
        match self {
            Action::Load { sm, .. }
            | Action::Store { sm, .. }
            | Action::AtomicRet { sm, .. }
            | Action::AtomicNr { sm, .. }
            | Action::ApplyAtomic { sm, .. }
            | Action::DrainStore { sm }
            | Action::Acquire { sm }
            | Action::Release { sm }
            | Action::Evict { sm, .. } => sm,
        }
    }
}

/// Size bounds for a model instance.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// (coherence, consistency) cell being modelled.
    pub hw: HwConfig,
    /// Number of SMs (2–3 for exhaustive runs).
    pub sms: u8,
    /// Number of cache lines (2–3 for exhaustive runs).
    pub lines: u8,
    /// Maximum number of writes (stores + atomics) per line; bounds the
    /// version counter and hence the state space.
    pub writes_per_line: u8,
    /// Store-buffer capacity per SM.
    pub sb_cap: u8,
}

impl ModelConfig {
    /// Bounds for the exhaustive full run (default `repro verify`).
    pub fn full(hw: HwConfig) -> Self {
        ModelConfig {
            hw,
            sms: 3,
            lines: 2,
            writes_per_line: 2,
            sb_cap: 2,
        }
    }

    /// Smaller bounds for the CI smoke run.
    pub fn smoke(hw: HwConfig) -> Self {
        ModelConfig {
            hw,
            sms: 2,
            lines: 2,
            writes_per_line: 2,
            sb_cap: 1,
        }
    }

    /// Bounds for litmus execution: sized by the program, with the write
    /// budget high enough that no program op is ever capped out.
    pub fn litmus(hw: HwConfig, sms: u8, lines: u8) -> Self {
        ModelConfig {
            hw,
            sms,
            lines,
            writes_per_line: 16,
            sb_cap: 4,
        }
    }

    /// Atomic-buffer capacity implied by the consistency model: DRF0
    /// atomics are synchronous (no buffer), DRF1 permits one outstanding
    /// unpaired atomic per SM, DRFrlx lets relaxed atomics overlap each
    /// other (bounded here at two, enough to expose reordering).
    pub fn ab_cap(&self) -> u8 {
        match self.hw.consistency {
            ConsistencyModel::Drf0 => 0,
            ConsistencyModel::Drf1 => 1,
            ConsistencyModel::DrfRlx => 2,
        }
    }
}

/// Result of one small step: the successor state plus the version
/// observed by a load or value-returning atomic, if the action observes.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Successor state.
    pub state: State,
    /// Version read by a `Load` (the value it returned) or the
    /// pre-RMW version read by an `AtomicRet`.
    pub observed: Option<u8>,
    /// Whether a `Load` hit in the L1 (for conformance with the
    /// implementation's hit/miss counters).
    pub l1_hit: Option<bool>,
}

/// A small-step protocol model: enumerate enabled actions and apply them.
///
/// Implementations must be pure: `step` depends only on the given state,
/// never on hidden mutable state, so the explorer may memoise freely.
pub trait ProtocolModel {
    /// Size bounds and grid cell.
    fn config(&self) -> &ModelConfig;

    /// The initial (reset) state.
    fn initial(&self) -> State;

    /// Append every action enabled in `s` to `out`.
    fn enabled_actions(&self, s: &State, out: &mut Vec<Action>);

    /// Apply `a` to `s`; `None` when `a` is not enabled in `s`.
    fn step(&self, s: &State, a: Action) -> Option<StepOutcome>;
}

/// The modelled grid cell: both coherence protocols and all three
/// consistency models, selected by [`ModelConfig::hw`], with an optional
/// seeded [`Mutation`] for the self-test.
#[derive(Debug, Clone)]
pub struct GridModel {
    cfg: ModelConfig,
    mutation: Option<Mutation>,
}

impl GridModel {
    /// Clean (unmutated) model of a cell.
    pub fn new(cfg: ModelConfig) -> Self {
        GridModel {
            cfg,
            mutation: None,
        }
    }

    /// Model with a seeded protocol bug for the mutation self-test.
    pub fn mutated(cfg: ModelConfig, mutation: Mutation) -> Self {
        GridModel {
            cfg,
            mutation: Some(mutation),
        }
    }

    /// The seeded mutation, if any.
    pub fn mutation(&self) -> Option<Mutation> {
        self.mutation
    }

    fn coh(&self) -> CoherenceKind {
        self.cfg.hw.coherence
    }

    fn con(&self) -> ConsistencyModel {
        self.cfg.hw.consistency
    }

    fn has(&self, m: Mutation) -> bool {
        self.mutation == Some(m)
    }

    fn idx(&self, sm: u8, line: u8) -> usize {
        sm as usize * self.cfg.lines as usize + line as usize
    }

    /// Current value of `line` as seen by a coherent reader: the owner's
    /// copy if the line is registered, else the L2 copy.
    fn backing_version(&self, s: &State, line: u8) -> u8 {
        match s.owner[line as usize] {
            NO_OWNER => s.l2v[line as usize],
            o => {
                let v = s.l1[self.idx(o, line)].version();
                // Owner-registry agreement guarantees residency; fall back
                // to the L2 copy defensively so a mutated model cannot
                // wedge the explorer.
                v.unwrap_or(s.l2v[line as usize])
            }
        }
    }

    /// Buffered atomics targeting `line` that have not applied yet; each
    /// will draw a version when it does.
    fn pending_writes(&self, s: &State, line: u8) -> u8 {
        s.ab.iter()
            .map(|b| b.iter().filter(|&&l| l == line).count() as u8)
            .sum()
    }

    /// Version budget left on `line`?  In-flight buffered atomics count
    /// against the budget so that no version ever exceeds
    /// `writes_per_line`, keeping the version domain (and with it the
    /// explored state space) strictly bounded.
    fn can_write(&self, s: &State, line: u8) -> bool {
        s.nextv[line as usize] + self.pending_writes(s, line) <= self.cfg.writes_per_line
    }

    fn take_version(&self, s: &mut State, line: u8) -> u8 {
        let v = s.nextv[line as usize];
        // Saturate rather than wrap: issue-time gating keeps us below the
        // cap except when in-flight atomics race past it by one.
        s.nextv[line as usize] = v.saturating_add(1);
        v
    }

    /// Flash self-invalidation of `sm`'s unowned lines (the acquire
    /// action of both protocols; Owned lines survive under DeNovo).
    fn self_invalidate(&self, s: &mut State, sm: u8) {
        if self.has(Mutation::DropInvalidation) {
            return; // seeded bug: the acquire "forgets" to invalidate
        }
        for line in 0..self.cfg.lines {
            let i = self.idx(sm, line);
            if matches!(s.l1[i], L1::Valid(_)) {
                s.l1[i] = L1::Invalid;
            }
        }
    }

    /// DeNovo ownership registration by `sm` for `line`: revoke the
    /// previous owner, update the registry, and fill the line Owned with
    /// version `v`.  Pushes the registration round trip into the store
    /// buffer (it gates the release point, like the timed model).
    fn register(&self, s: &mut State, sm: u8, line: u8, v: u8) {
        let prev = s.owner[line as usize];
        if prev != NO_OWNER && prev != sm && !self.has(Mutation::SkipRevoke) {
            s.l1[self.idx(prev, line)] = L1::Invalid;
        }
        if !self.has(Mutation::SkipRegistration) {
            s.owner[line as usize] = sm;
        }
        s.l1[self.idx(sm, line)] = L1::Owned(v);
        s.sb[sm as usize].push(SbEntry {
            line,
            version: v,
            registration: true,
        });
    }

    /// Execute one atomic RMW by `sm` on `line`, returning the pre-RMW
    /// version.  GPU coherence executes at the L2 and never touches the
    /// L1; DeNovo registers ownership if needed and executes locally.
    fn do_rmw(&self, s: &mut State, sm: u8, line: u8) -> u8 {
        match self.coh() {
            CoherenceKind::Gpu => {
                let pre = s.l2v[line as usize];
                let v = self.take_version(s, line);
                s.l2v[line as usize] = v;
                pre
            }
            CoherenceKind::DeNovo => {
                let i = self.idx(sm, line);
                if self.has(Mutation::AtomicOnStaleCopy) {
                    // Seeded bug: an atomic on any resident copy executes
                    // locally without checking ownership, losing the
                    // L1-serialization point.
                    if let Some(pre) = s.l1[i].version() {
                        let v = self.take_version(s, line);
                        match s.l1[i] {
                            L1::Owned(_) => s.l1[i] = L1::Owned(v),
                            _ => s.l1[i] = L1::Valid(v),
                        }
                        return pre;
                    }
                }
                if s.owner[line as usize] == sm {
                    let pre = s.l1[i].version().unwrap_or(s.l2v[line as usize]);
                    let v = self.take_version(s, line);
                    s.l1[i] = L1::Owned(v);
                    pre
                } else {
                    let pre = self.backing_version(s, line);
                    let v = self.take_version(s, line);
                    self.register(s, sm, line, v);
                    pre
                }
            }
        }
    }

    /// Is a synchronous (DRF0 fence-paired) atomic by `sm` ready?  The
    /// paired release must have drained the store buffer and no atomic
    /// may still be in flight.
    fn paired_atomic_ready(&self, s: &State, sm: u8) -> bool {
        (s.sb[sm as usize].is_empty() || self.has(Mutation::ReleaseIgnoresPending))
            && s.ab[sm as usize].is_empty()
    }

    fn atomic_enabled(&self, s: &State, sm: u8, line: u8, returns: bool) -> bool {
        if !self.can_write(s, line) {
            return false;
        }
        match self.con() {
            // Every DRF0 atomic is fence-paired and synchronous.
            ConsistencyModel::Drf0 => self.paired_atomic_ready(s, sm),
            ConsistencyModel::Drf1 => {
                if returns {
                    // Blocks the warp; still ordered after earlier atomics.
                    s.ab[sm as usize].is_empty()
                } else {
                    (s.ab[sm as usize].len() as u8) < self.cfg.ab_cap()
                }
            }
            ConsistencyModel::DrfRlx => {
                if returns {
                    // A returning relaxed atomic blocks the warp but may
                    // bypass earlier non-returning atomics still in flight.
                    true
                } else {
                    (s.ab[sm as usize].len() as u8) < self.cfg.ab_cap()
                }
            }
        }
    }
}

impl ProtocolModel for GridModel {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn initial(&self) -> State {
        let cfg = &self.cfg;
        State {
            l1: vec![L1::Invalid; cfg.sms as usize * cfg.lines as usize],
            owner: vec![NO_OWNER; cfg.lines as usize],
            l2v: vec![0; cfg.lines as usize],
            nextv: vec![1; cfg.lines as usize],
            sb: vec![Vec::new(); cfg.sms as usize],
            ab: vec![Vec::new(); cfg.sms as usize],
        }
    }

    fn enabled_actions(&self, s: &State, out: &mut Vec<Action>) {
        let cfg = &self.cfg;
        for sm in 0..cfg.sms {
            for line in 0..cfg.lines {
                out.push(Action::Load { sm, line });
                if self.step(s, Action::Store { sm, line }).is_some() {
                    out.push(Action::Store { sm, line });
                }
                if self.atomic_enabled(s, sm, line, true) {
                    out.push(Action::AtomicRet { sm, line });
                }
                if self.atomic_enabled(s, sm, line, false) {
                    out.push(Action::AtomicNr { sm, line });
                }
                if s.l1[self.idx(sm, line)].resident() {
                    out.push(Action::Evict { sm, line });
                }
            }
            for slot in 0..s.ab[sm as usize].len() as u8 {
                if self.step(s, Action::ApplyAtomic { sm, slot }).is_some() {
                    out.push(Action::ApplyAtomic { sm, slot });
                }
            }
            if !s.sb[sm as usize].is_empty() {
                out.push(Action::DrainStore { sm });
            }
            out.push(Action::Acquire { sm });
            // `Release` is observationally inert (a marker for litmus
            // programs), so the free explorer skips it.
        }
    }

    fn step(&self, s: &State, a: Action) -> Option<StepOutcome> {
        let cfg = &self.cfg;
        let mut n = s.clone();
        let mut observed = None;
        let mut l1_hit = None;
        match a {
            Action::Load { sm, line } => {
                let i = self.idx(sm, line);
                match n.l1[i] {
                    L1::Valid(v) | L1::Owned(v) => {
                        observed = Some(v);
                        l1_hit = Some(true);
                    }
                    L1::Invalid => {
                        // Miss: fetch from the coherent backing copy (the
                        // owner's L1 under DeNovo, else the L2) and fill
                        // Valid.  The owner keeps ownership (DeNovo loads
                        // take a shared copy).
                        let v = if self.has(Mutation::StaleRemoteFill) {
                            // Seeded bug: remote fetches bypass the owner
                            // and read the (possibly stale) L2 copy.
                            n.l2v[line as usize]
                        } else {
                            self.backing_version(&n, line)
                        };
                        n.l1[i] = L1::Valid(v);
                        observed = Some(v);
                        l1_hit = Some(false);
                    }
                }
            }
            Action::Store { sm, line } => {
                if !self.can_write(s, line) {
                    return None;
                }
                match self.coh() {
                    CoherenceKind::Gpu => {
                        if (s.sb[sm as usize].len() as u8) >= cfg.sb_cap {
                            return None;
                        }
                        let v = self.take_version(&mut n, line);
                        let i = self.idx(sm, line);
                        // Write-through: update a resident copy in place
                        // (it stays Valid); no allocation on a miss.
                        if n.l1[i].resident() {
                            n.l1[i] = if self.has(Mutation::GpuStoreAllocatesOwned) {
                                L1::Owned(v)
                            } else {
                                L1::Valid(v)
                            };
                        } else if self.has(Mutation::GpuStoreAllocatesOwned) {
                            n.l1[i] = L1::Owned(v);
                        }
                        n.sb[sm as usize].push(SbEntry {
                            line,
                            version: v,
                            registration: false,
                        });
                    }
                    CoherenceKind::DeNovo => {
                        if s.owner[line as usize] == sm {
                            // Already registered: pure local write.
                            let v = self.take_version(&mut n, line);
                            n.l1[self.idx(sm, line)] = L1::Owned(v);
                        } else {
                            if (s.sb[sm as usize].len() as u8) >= cfg.sb_cap {
                                return None;
                            }
                            let v = self.take_version(&mut n, line);
                            self.register(&mut n, sm, line, v);
                        }
                    }
                }
            }
            Action::AtomicRet { sm, line } => {
                if !self.atomic_enabled(s, sm, line, true) {
                    return None;
                }
                if self.con() == ConsistencyModel::Drf0 {
                    // Fence-paired: the acquire half self-invalidates
                    // before the RMW executes (matching `sm.rs`, which
                    // issues release-drain + acquire at the atomic).
                    self.self_invalidate(&mut n, sm);
                }
                observed = Some(self.do_rmw(&mut n, sm, line));
            }
            Action::AtomicNr { sm, line } => {
                if !self.atomic_enabled(s, sm, line, false) {
                    return None;
                }
                match self.con() {
                    ConsistencyModel::Drf0 => {
                        self.self_invalidate(&mut n, sm);
                        self.do_rmw(&mut n, sm, line);
                    }
                    _ => {
                        // Issue into the atomic buffer; the RMW applies
                        // later via `ApplyAtomic`.
                        n.ab[sm as usize].push(line);
                    }
                }
            }
            Action::ApplyAtomic { sm, slot } => {
                let buf = &s.ab[sm as usize];
                if slot as usize >= buf.len() {
                    return None;
                }
                // DRF1 keeps unpaired atomics program-ordered: only the
                // oldest may complete.  DRFrlx lets any slot complete.
                if self.con() != ConsistencyModel::DrfRlx && slot != 0 {
                    return None;
                }
                let line = buf[slot as usize];
                n.ab[sm as usize].remove(slot as usize);
                self.do_rmw(&mut n, sm, line);
            }
            Action::DrainStore { sm } => {
                if s.sb[sm as usize].is_empty() {
                    return None;
                }
                let e = n.sb[sm as usize].remove(0);
                if !e.registration {
                    // Write-through reaches the L2.
                    n.l2v[e.line as usize] = e.version;
                }
            }
            Action::Acquire { sm } => {
                self.self_invalidate(&mut n, sm);
            }
            Action::Release { sm } => {
                // The release point: reached only once the store buffer
                // has drained (or, with the seeded bug, regardless).
                if !s.sb[sm as usize].is_empty() && !self.has(Mutation::ReleaseIgnoresPending) {
                    return None;
                }
            }
            Action::Evict { sm, line } => {
                let i = self.idx(sm, line);
                match s.l1[i] {
                    L1::Invalid => return None,
                    L1::Valid(_) => n.l1[i] = L1::Invalid,
                    L1::Owned(v) => {
                        // Owned victim: write back and unregister.
                        if !self.has(Mutation::EvictDropsWriteback) {
                            n.l2v[line as usize] = v;
                        }
                        if !self.has(Mutation::EvictKeepsRegistry) && s.owner[line as usize] == sm {
                            n.owner[line as usize] = NO_OWNER;
                        }
                        n.l1[i] = L1::Invalid;
                    }
                }
            }
        }
        Some(StepOutcome {
            state: n,
            observed,
            l1_hit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_sim::config::{CoherenceKind as Coh, ConsistencyModel as Con};

    fn model(coh: Coh, con: Con) -> GridModel {
        GridModel::new(ModelConfig::smoke(HwConfig::new(coh, con)))
    }

    #[test]
    fn gpu_store_does_not_allocate() {
        let m = model(Coh::Gpu, Con::Drf0);
        let s0 = m.initial();
        let s1 = m.step(&s0, Action::Store { sm: 0, line: 0 }).unwrap().state;
        assert_eq!(s1.l1[0], L1::Invalid, "write-through must not allocate");
        assert_eq!(s1.sb[0].len(), 1);
        assert_eq!(s1.l2v[0], 0, "not visible until drained");
        let s2 = m.step(&s1, Action::DrainStore { sm: 0 }).unwrap().state;
        assert_eq!(s2.l2v[0], 1);
    }

    #[test]
    fn denovo_store_registers_and_revokes() {
        let m = model(Coh::DeNovo, Con::Drf1);
        let s0 = m.initial();
        let s1 = m.step(&s0, Action::Store { sm: 0, line: 0 }).unwrap().state;
        assert_eq!(s1.owner[0], 0);
        assert_eq!(s1.l1[m.idx(0, 0)], L1::Owned(1));
        // A second writer steals ownership and invalidates the first.
        let s2 = m.step(&s1, Action::Store { sm: 1, line: 0 }).unwrap().state;
        assert_eq!(s2.owner[0], 1);
        assert_eq!(s2.l1[m.idx(0, 0)], L1::Invalid);
        assert_eq!(s2.l1[m.idx(1, 0)], L1::Owned(2));
    }

    #[test]
    fn load_prefers_owner_copy() {
        let m = model(Coh::DeNovo, Con::Drf1);
        let s0 = m.initial();
        let s1 = m.step(&s0, Action::Store { sm: 0, line: 0 }).unwrap().state;
        // L2 still has version 0; the coherent read must see the owner's 1.
        let out = m.step(&s1, Action::Load { sm: 1, line: 0 }).unwrap();
        assert_eq!(out.observed, Some(1));
        assert_eq!(out.l1_hit, Some(false));
    }

    #[test]
    fn acquire_spares_owned_lines() {
        let m = model(Coh::DeNovo, Con::Drf1);
        let s0 = m.initial();
        let s1 = m.step(&s0, Action::Store { sm: 0, line: 0 }).unwrap().state;
        let s2 = m.step(&s1, Action::Load { sm: 0, line: 1 }).unwrap().state;
        let s3 = m.step(&s2, Action::Acquire { sm: 0 }).unwrap().state;
        assert_eq!(s3.l1[m.idx(0, 0)], L1::Owned(1), "owned survives");
        assert_eq!(s3.l1[m.idx(0, 1)], L1::Invalid, "valid flashed");
    }

    #[test]
    fn drf0_atomic_waits_for_drain() {
        let m = model(Coh::Gpu, Con::Drf0);
        let s0 = m.initial();
        let s1 = m.step(&s0, Action::Store { sm: 0, line: 0 }).unwrap().state;
        assert!(
            m.step(&s1, Action::AtomicRet { sm: 0, line: 1 }).is_none(),
            "paired atomic must wait for the release drain"
        );
        let s2 = m.step(&s1, Action::DrainStore { sm: 0 }).unwrap().state;
        assert!(m.step(&s2, Action::AtomicRet { sm: 0, line: 1 }).is_some());
    }

    #[test]
    fn drfrlx_applies_out_of_order() {
        let m = model(Coh::Gpu, Con::DrfRlx);
        let s0 = m.initial();
        let s1 = m
            .step(&s0, Action::AtomicNr { sm: 0, line: 0 })
            .unwrap()
            .state;
        let s2 = m
            .step(&s1, Action::AtomicNr { sm: 0, line: 1 })
            .unwrap()
            .state;
        assert_eq!(s2.ab[0], vec![0, 1]);
        // Relaxed: the younger atomic may complete first.
        let s3 = m
            .step(&s2, Action::ApplyAtomic { sm: 0, slot: 1 })
            .unwrap()
            .state;
        assert_eq!(s3.l2v[1], 1);
        assert_eq!(s3.l2v[0], 0);
    }

    #[test]
    fn drf1_applies_in_order_only() {
        let m = GridModel::new(ModelConfig {
            hw: HwConfig::new(Coh::Gpu, Con::Drf1),
            sms: 2,
            lines: 2,
            writes_per_line: 4,
            sb_cap: 2,
        });
        let s0 = m.initial();
        let s1 = m
            .step(&s0, Action::AtomicNr { sm: 0, line: 0 })
            .unwrap()
            .state;
        // Cap is 1 under DRF1: a second unpaired atomic cannot issue.
        assert!(m.step(&s1, Action::AtomicNr { sm: 0, line: 1 }).is_none());
        assert!(m
            .step(&s1, Action::ApplyAtomic { sm: 0, slot: 0 })
            .is_some());
    }
}
