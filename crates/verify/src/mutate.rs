//! Seeded protocol mutations for the checker self-test.
//!
//! Each variant plants one concrete protocol bug inside [`GridModel`]
//! (see `model.rs` for where each hook fires).  The self-test demands
//! that, for every mutation, at least one declared grid cell produces a
//! counterexample — either an invariant violation found by the explorer
//! or a forbidden litmus outcome — with a minimized witness schedule.
//! A checker that cannot catch these bugs has no teeth.
//!
//! [`GridModel`]: crate::model::GridModel

use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};

/// One seeded protocol bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// The acquire fence forgets to self-invalidate, leaving stale Valid
    /// lines readable past the synchronization point.
    DropInvalidation,
    /// A DeNovo store fills its line Owned but never writes the owner
    /// registry (a lost registration message).
    SkipRegistration,
    /// Ownership registration forgets to invalidate the previous owner's
    /// copy, leaving two writable copies of the line.
    SkipRevoke,
    /// Evicting an Owned line writes the data back but the unregister
    /// message is lost: the registry still names the evicting SM.
    EvictKeepsRegistry,
    /// Evicting an Owned line unregisters but the downgrade's data reply
    /// is dropped: the L2 keeps its stale copy.
    EvictDropsWriteback,
    /// A GPU-coherence store allocates the line in Owned state, although
    /// the protocol has no ownership (write-through, no-allocate).
    GpuStoreAllocatesOwned,
    /// The release point no longer waits for the store buffer to drain,
    /// so a fence-paired atomic can publish before the data it guards.
    ReleaseIgnoresPending,
    /// A remote fetch is served from the (possibly stale) L2 copy instead
    /// of the registered owner's L1.
    StaleRemoteFill,
    /// A DeNovo atomic executes on any resident copy without checking
    /// ownership, losing the single-serialization-point guarantee.
    AtomicOnStaleCopy,
}

impl Mutation {
    /// Every seeded mutation, in catalog order.
    pub const ALL: [Mutation; 9] = [
        Mutation::DropInvalidation,
        Mutation::SkipRegistration,
        Mutation::SkipRevoke,
        Mutation::EvictKeepsRegistry,
        Mutation::EvictDropsWriteback,
        Mutation::GpuStoreAllocatesOwned,
        Mutation::ReleaseIgnoresPending,
        Mutation::StaleRemoteFill,
        Mutation::AtomicOnStaleCopy,
    ];

    /// Stable kebab-case name used in reports and witnesses.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropInvalidation => "drop-invalidation",
            Mutation::SkipRegistration => "skip-registration",
            Mutation::SkipRevoke => "skip-revoke",
            Mutation::EvictKeepsRegistry => "evict-keeps-registry",
            Mutation::EvictDropsWriteback => "evict-drops-writeback",
            Mutation::GpuStoreAllocatesOwned => "gpu-store-allocates-owned",
            Mutation::ReleaseIgnoresPending => "release-ignores-pending",
            Mutation::StaleRemoteFill => "stale-remote-fill",
            Mutation::AtomicOnStaleCopy => "atomic-on-stale-copy",
        }
    }

    /// One-line description of the planted bug.
    pub fn describe(self) -> &'static str {
        match self {
            Mutation::DropInvalidation => "acquire skips flash self-invalidation",
            Mutation::SkipRegistration => "store fills Owned without updating the registry",
            Mutation::SkipRevoke => "registration leaves the previous owner's copy live",
            Mutation::EvictKeepsRegistry => "owned eviction loses the unregister message",
            Mutation::EvictDropsWriteback => "owned eviction loses the writeback data",
            Mutation::GpuStoreAllocatesOwned => "GPU store allocates the line Owned",
            Mutation::ReleaseIgnoresPending => "release proceeds with the store buffer full",
            Mutation::StaleRemoteFill => "remote fetch served from stale L2, not the owner",
            Mutation::AtomicOnStaleCopy => "atomic executes on an unowned resident copy",
        }
    }

    /// Grid cells where detection is guaranteed (and demanded).  Each
    /// mutation must be caught in *every* listed cell; cells where the
    /// bug is masked by design (e.g. stale reads are legal between DRF1
    /// synchronization points) are deliberately not listed.
    pub fn cells(self) -> Vec<HwConfig> {
        use CoherenceKind::*;
        use ConsistencyModel::*;
        let hw = HwConfig::new;
        match self {
            // Structural registry/ownership bugs: visible to the explorer
            // under every consistency model of the affected protocol.
            Mutation::SkipRegistration
            | Mutation::SkipRevoke
            | Mutation::EvictKeepsRegistry
            | Mutation::EvictDropsWriteback => {
                vec![hw(DeNovo, Drf0), hw(DeNovo, Drf1), hw(DeNovo, DrfRlx)]
            }
            Mutation::GpuStoreAllocatesOwned => {
                vec![hw(Gpu, Drf0), hw(Gpu, Drf1), hw(Gpu, DrfRlx)]
            }
            // Acquire bugs: visible wherever an acquire fires, i.e. both
            // protocols, any consistency model.
            Mutation::DropInvalidation => vec![
                hw(Gpu, Drf0),
                hw(Gpu, Drf1),
                hw(Gpu, DrfRlx),
                hw(DeNovo, Drf0),
                hw(DeNovo, Drf1),
                hw(DeNovo, DrfRlx),
            ],
            // Ordering bugs: only a litmus test under a model that
            // forbids the racy outcome can see them.
            // Only GPU write-throughs have delayed visibility for the
            // release to guard; DeNovo registration is structurally
            // synchronous, so skipping the drain changes nothing
            // observable in the timing-free model.
            Mutation::ReleaseIgnoresPending => {
                vec![hw(Gpu, Drf0), hw(Gpu, Drf1), hw(Gpu, DrfRlx)]
            }
            Mutation::StaleRemoteFill => {
                vec![hw(DeNovo, Drf0), hw(DeNovo, Drf1), hw(DeNovo, DrfRlx)]
            }
            // Under DRF0 the fence-paired atomic self-invalidates before
            // executing, which flushes the stale copy this bug needs.
            Mutation::AtomicOnStaleCopy => vec![hw(DeNovo, Drf1), hw(DeNovo, DrfRlx)],
        }
    }
}
