//! Human-readable counterexample schedules.
//!
//! A [`Witness`] is the shortest action prefix (found by BFS, see
//! `explore.rs`) that drives a model from reset into a state violating a
//! protocol invariant, or through a litmus program to a forbidden
//! outcome.  Rendering follows one rule: every line is something a
//! person can replay by hand against `mem.rs`.
//!
//! The module also hosts [`AccessSite`], the shared "who touched what"
//! renderer: `ggs-check`'s data-race reports use it to print the first
//! concrete conflicting access pair, and witness schedules use it to
//! print each step's actor/op/address triple in the same vocabulary.

use std::fmt;

use ggs_sim::config::HwConfig;

use crate::model::Action;

/// Who performed an access: a software thread (trace-level reports) or
/// an SM (protocol-level witnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Actor {
    /// A software thread in a kernel trace.
    Thread(u64),
    /// A streaming multiprocessor in the protocol model.
    Sm(u32),
}

/// One concrete memory access: actor, operation kind, and address (a
/// byte address for trace reports, a line index for model witnesses).
///
/// This is the renderer shared between `ggs-check` race reports and
/// ggs-verify witness schedules: both print conflicts as
/// `thread 3 store @0x1a40` / `SM 1 load line 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessSite {
    /// Who performed the access.
    pub actor: Actor,
    /// Operation kind (`"load"`, `"store"`, `"atomic"`, ...).
    pub op: &'static str,
    /// Byte address (threads) or line index (SMs).
    pub addr: u64,
}

impl AccessSite {
    /// Access by a kernel thread at a byte address.
    pub fn thread(thread: u64, op: &'static str, addr: u64) -> Self {
        AccessSite {
            actor: Actor::Thread(thread),
            op,
            addr,
        }
    }

    /// Access by an SM on a model line.
    pub fn sm(sm: u32, op: &'static str, line: u64) -> Self {
        AccessSite {
            actor: Actor::Sm(sm),
            op,
            addr: line,
        }
    }
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.actor {
            Actor::Thread(t) => write!(f, "thread {t} {} @{:#x}", self.op, self.addr),
            Actor::Sm(s) => write!(f, "SM {s} {} line {}", self.op, self.addr),
        }
    }
}

/// Render one model action as an [`AccessSite`]-flavoured step line.
pub fn describe_action(a: Action) -> String {
    match a {
        Action::Load { sm, line } => AccessSite::sm(sm as u32, "load", line as u64).to_string(),
        Action::Store { sm, line } => AccessSite::sm(sm as u32, "store", line as u64).to_string(),
        Action::AtomicRet { sm, line } => {
            AccessSite::sm(sm as u32, "atomic(ret)", line as u64).to_string()
        }
        Action::AtomicNr { sm, line } => {
            AccessSite::sm(sm as u32, "atomic", line as u64).to_string()
        }
        Action::ApplyAtomic { sm, slot } => {
            format!("SM {sm} apply buffered atomic [slot {slot}]")
        }
        Action::DrainStore { sm } => format!("SM {sm} drain store buffer (oldest entry)"),
        Action::Acquire { sm } => format!("SM {sm} acquire (self-invalidate)"),
        Action::Release { sm } => format!("SM {sm} release (store buffer drained)"),
        Action::Evict { sm, line } => AccessSite::sm(sm as u32, "evict", line as u64).to_string(),
    }
}

/// What a witness demonstrates.
#[derive(Debug, Clone)]
pub enum WitnessKind {
    /// The final state violates a protocol invariant.
    Invariant {
        /// Invariant name (matches `ggs_sim::check::InvariantKind` names).
        invariant: &'static str,
        /// Concrete detail (which SM/line, what was expected).
        detail: String,
    },
    /// A litmus program reached an outcome its consistency model forbids.
    Litmus {
        /// Litmus test name.
        test: &'static str,
        /// The forbidden observation tuple, in program order.
        outcome: Vec<u8>,
    },
}

/// A minimized counterexample: the shortest action schedule from reset
/// that exhibits the violation, in a form the conformance bridge can
/// replay against `mem.rs`.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Grid cell the schedule runs under.
    pub cell: HwConfig,
    /// The schedule, shortest-first by construction.
    pub actions: Vec<Action>,
    /// What the final state demonstrates.
    pub kind: WitnessKind,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            WitnessKind::Invariant { invariant, detail } => writeln!(
                f,
                "invariant `{invariant}` violated under {}: {detail}",
                self.cell
            )?,
            WitnessKind::Litmus { test, outcome } => writeln!(
                f,
                "litmus `{test}` reached forbidden outcome {outcome:?} under {}",
                self.cell
            )?,
        }
        writeln!(f, "witness schedule ({} steps):", self.actions.len())?;
        for (i, a) in self.actions.iter().enumerate() {
            writeln!(f, "  {:>3}. {}", i + 1, describe_action(*a))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_renders_both_actor_kinds() {
        assert_eq!(
            AccessSite::thread(3, "store", 0x1a40).to_string(),
            "thread 3 store @0x1a40"
        );
        assert_eq!(AccessSite::sm(1, "load", 0).to_string(), "SM 1 load line 0");
    }
}
