//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the registry dependency with this path crate of the same
//! name. It is **stream-compatible** with `rand 0.8` + `SmallRng` on
//! 64-bit targets: `SmallRng` is xoshiro256++ seeded through the same
//! SplitMix64 expansion, and `gen_range`/`gen_bool`/`shuffle` use the
//! same sampling algorithms (widening-multiply rejection for integers,
//! the 1..2 mantissa trick for floats, a fixed-point Bernoulli, and a
//! Fisher–Yates walk that draws 32-bit indices for small slices).
//! Seeded graph generation therefore reproduces the exact streams the
//! original dependency produced, keeping every golden expectation in
//! the test suite valid.

#![forbid(unsafe_code)]

/// A random number generator core: the two raw word sources.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state`, expanding it to a full seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm `rand 0.8` uses for `SmallRng` on
    /// 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as in rand 0.8's
            // Xoshiro256PlusPlus::seed_from_u64.
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            Self { s }
        }
    }
}

/// A half-open or full range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty => $wide:ty, $word:ident);+ $(;)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widening-multiply rejection (rand 0.8's
                // UniformInt::sample_single).
                let range = self.end.wrapping_sub(self.start);
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$word() as $ty;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> (<$ty>::BITS)) as $ty;
                    let lo = wide as $ty;
                    if lo <= zone {
                        return self.start.wrapping_add(hi);
                    }
                }
            }
        }
    )+};
}

impl_int_sample_range! {
    u32 => u64, next_u32;
    u64 => u128, next_u64;
    usize => u128, next_u64;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            // 52 mantissa bits into [1, 2), shifted to [0, 1) — rand
            // 0.8's UniformFloat::sample_single.
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (fixed-point
    /// comparison, as rand 0.8's `Bernoulli`).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, identical draw sequence to rand 0.8.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }

    /// Uniform index below `ubound`, using 32-bit draws when they
    /// suffice (rand 0.8's `gen_index`).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= (u32::MAX as usize) {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 40)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0usize..5);
            assert!(i < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle leaving order intact is vanishingly unlikely"
        );
    }
}
