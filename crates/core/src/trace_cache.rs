//! Sweep-level kernel-trace memoization.
//!
//! A study cell's work splits into a *functional producer* — replaying
//! the app's frontier evolution and emitting one [`KernelTrace`] per
//! kernel launch — and a *timing consumer* that feeds those traces to
//! the simulator. The producer half is a pure function of
//! `(app, graph, propagation, tb_size)`: coherence and consistency
//! affect *when* micro-ops complete, never *which* micro-ops exist
//! (the property test in `crates/core/tests/trace_reuse.rs` pins
//! this). The 12-cell coherence × consistency × direction grid
//! therefore contains only two distinct trace streams per static app
//! (push and pull) and one per dynamic app — yet the naive sweep
//! rebuilds the stream for every cell.
//!
//! [`TraceCache`] memoizes streams across cells: the first cell of an
//! `app × graph × direction` group builds the stream (a *miss*), its
//! ~5 siblings replay it by [`Arc`] (a *hit*), and a byte-bounded LRU
//! keeps the cache from growing with the sweep. Hits, misses, and
//! evictions are emitted as [`TraceEvent`]s so the reuse is observable
//! in study traces, exactly like the result store's.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ggs_apps::AppKind;
use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::trace::KernelTrace;
use ggs_trace::{TraceEvent, TraceSink};

/// A materialized kernel stream: every trace of one workload run, in
/// launch order, individually [`Arc`]'d so consumers never copy ops.
pub type TraceStream = Arc<Vec<Arc<KernelTrace>>>;

/// Identity of one cached stream. Graphs are identified by a content
/// fingerprint (see [`graph_fingerprint`]) rather than an address, so
/// equal graphs share entries regardless of where they live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKey {
    /// The application.
    pub app: AppKind,
    /// Content fingerprint of the input graph.
    pub graph_fp: u64,
    /// Traversal direction (with `tb_size` and `policy_fp`, the only
    /// axes that change the stream).
    pub prop: Propagation,
    /// Thread-block size the stream was generated for.
    pub tb_size: u32,
    /// Fingerprint of the realized direction policy
    /// ([`ggs_apps::Workload::policy_fingerprint`]): `0` for the
    /// static propagations, a hash of the density threshold and the
    /// per-kernel direction schedule for [`Propagation::Hybrid`].
    /// Keeps hybrid streams from ever colliding with static push/pull
    /// entries — or with hybrid streams realized under a different
    /// threshold.
    pub policy_fp: u64,
}

impl StreamKey {
    /// A key for one cached stream; `policy_fp` is derived from the
    /// workload so callers cannot desynchronize it from `prop`.
    pub fn for_workload(
        workload: &ggs_apps::Workload<'_>,
        prop: Propagation,
        tb_size: u32,
    ) -> Self {
        Self {
            app: workload.app(),
            graph_fp: graph_fingerprint(workload.graph()),
            prop,
            tb_size,
            policy_fp: workload.policy_fingerprint(prop),
        }
    }

    /// The `APP/<fp>/PROP/TB` label used in trace events (hybrid keys
    /// append the policy fingerprint).
    pub fn label(&self, graph_name: &str) -> String {
        let dir = match self.prop {
            Propagation::Pull => "pull",
            Propagation::Push => "push",
            Propagation::PushPull => "pushpull",
            Propagation::Hybrid => "hybrid",
        };
        let mut label = format!(
            "{}/{}/{}/{}",
            self.app.mnemonic(),
            graph_name,
            dir,
            self.tb_size
        );
        if self.policy_fp != 0 {
            label.push_str(&format!("/{:016x}", self.policy_fp));
        }
        label
    }
}

/// Stable 64-bit content fingerprint of a CSR graph (FNV-1a over the
/// shape, topology arrays, and weights). Computed once per graph per
/// study; two structurally identical graphs collide on purpose.
pub fn graph_fingerprint(graph: &Csr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(graph.num_vertices() as u64);
    mix(graph.num_edges());
    for &r in graph.row_ptr() {
        mix(r as u64);
    }
    for &c in graph.col_idx() {
        mix(c as u64);
    }
    mix(graph.is_weighted() as u64);
    if graph.is_weighted() {
        for v in 0..graph.num_vertices() {
            for &w in graph.edge_weights(v).unwrap_or(&[]) {
                mix(w as u64);
            }
        }
    }
    h
}

#[derive(Debug)]
struct CacheEntry {
    stream: TraceStream,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<StreamKey, CacheEntry>,
    /// Per-key build slots: same-key builders serialize on the slot
    /// while other keys proceed; the global lock is never held across
    /// a build.
    building: HashMap<StreamKey, Arc<Mutex<()>>>,
    bytes: u64,
    tick: u64,
}

/// Running totals of cache traffic (monotonic; readable while workers
/// share the cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Streams served without running the producer.
    pub hits: u64,
    /// Streams built by the producer.
    pub misses: u64,
    /// Streams dropped by the LRU to stay under the byte budget.
    pub evicted_streams: u64,
    /// Heap bytes released by evictions.
    pub evicted_bytes: u64,
}

/// An `Arc`-shared, byte-bounded memo of workload kernel streams.
///
/// Thread-safe: the entry map sits behind one mutex that is only held
/// for lookups and inserts; stream *construction* runs outside it,
/// serialized per key so concurrent cells of the same group build the
/// stream exactly once while unrelated groups build in parallel.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ggs_core::trace_cache::{graph_fingerprint, StreamKey, TraceCache};
/// use ggs_apps::{AppKind, Workload};
/// use ggs_graph::GraphBuilder;
/// use ggs_model::Propagation;
///
/// let g = GraphBuilder::new(64)
///     .edges((0..63).map(|i| (i, i + 1)))
///     .symmetric(true)
///     .build();
/// let cache = TraceCache::new(64 << 20);
/// let key = StreamKey::for_workload(&Workload::new(AppKind::Pr, &g), Propagation::Push, 256);
/// assert_eq!(key.graph_fp, graph_fingerprint(&g));
/// let build = || Arc::new(Workload::new(AppKind::Pr, &g).stream(Propagation::Push, 256));
/// let first = cache.get_or_build(key, "RING", &ggs_trace::NOOP, || 0, build);
/// let again = cache.get_or_build(key, "RING", &ggs_trace::NOOP, || 0, build);
/// assert!(Arc::ptr_eq(&first, &again));
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct TraceCache {
    inner: Mutex<Inner>,
    capacity_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted_streams: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl TraceCache {
    /// Creates a cache bounded to `capacity_bytes` of trace heap (as
    /// accounted by [`KernelTrace::heap_bytes`]). A stream larger than
    /// the whole budget is returned to its builder but never cached.
    pub fn new(capacity_bytes: u64) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(Inner::default()),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted_streams: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        })
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Heap bytes currently cached.
    pub fn resident_bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Streams currently cached.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no streams.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traffic totals since construction.
    pub fn stats(&self) -> TraceCacheStats {
        TraceCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted_streams: self.evicted_streams.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }

    /// Returns `key`'s stream, running `build` only if no sibling cell
    /// has built it yet. Emits a [`TraceEvent::TraceCacheHit`] or
    /// [`TraceEvent::TraceCacheMiss`] through `sink` (labelled with
    /// `graph_name`; `now_us` supplies the event timestamp) and a
    /// [`TraceEvent::TraceCacheEvict`] when the insert pushed older
    /// streams out.
    pub fn get_or_build(
        &self,
        key: StreamKey,
        graph_name: &str,
        sink: &dyn TraceSink,
        now_us: impl Fn() -> u64,
        build: impl FnOnce() -> TraceStream,
    ) -> TraceStream {
        // Fast path + build-slot acquisition. The slot is cloned out so
        // the global lock is never held while waiting on (or running) a
        // build — only same-key callers serialize.
        let slot = {
            let mut inner = self.lock();
            if let Some(stream) = Self::lookup(&mut inner, key) {
                drop(inner);
                self.note_hit(key, graph_name, sink, &now_us);
                return stream;
            }
            inner
                .building
                .entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(())))
                .clone()
        };
        let _guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // Double-check: a same-key builder may have finished while we
        // waited on the slot. Late arrivals count as hits — the work
        // was shared either way.
        if let Some(stream) = Self::lookup(&mut self.lock(), key) {
            self.note_hit(key, graph_name, sink, &now_us);
            return stream;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if sink.enabled() {
            sink.emit(&TraceEvent::TraceCacheMiss {
                key: key.label(graph_name),
                at_us: now_us(),
            });
        }
        let stream = build();
        let bytes: u64 = stream.iter().map(|k| k.heap_bytes()).sum();
        let mut evicted = (0u64, 0u64);
        {
            let mut inner = self.lock();
            if bytes <= self.capacity_bytes {
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.insert(
                    key,
                    CacheEntry {
                        stream: Arc::clone(&stream),
                        bytes,
                        last_used: tick,
                    },
                );
                inner.bytes += bytes;
                evicted = self.evict_over_budget(&mut inner, key);
            }
            inner.building.remove(&key);
        }
        if evicted.0 > 0 && sink.enabled() {
            sink.emit(&TraceEvent::TraceCacheEvict {
                streams: evicted.0,
                bytes: evicted.1,
                at_us: now_us(),
            });
        }
        stream
    }

    fn lookup(inner: &mut MutexGuard<'_, Inner>, key: StreamKey) -> Option<TraceStream> {
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.stream)
        })
    }

    fn note_hit(
        &self,
        key: StreamKey,
        graph_name: &str,
        sink: &dyn TraceSink,
        now_us: &impl Fn() -> u64,
    ) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if sink.enabled() {
            sink.emit(&TraceEvent::TraceCacheHit {
                key: key.label(graph_name),
                at_us: now_us(),
            });
        }
    }

    /// Drops least-recently-used entries until the budget holds,
    /// never evicting `just_inserted` (the caller's own stream).
    /// Returns `(streams, bytes)` evicted.
    fn evict_over_budget(
        &self,
        inner: &mut MutexGuard<'_, Inner>,
        just_inserted: StreamKey,
    ) -> (u64, u64) {
        let mut streams = 0u64;
        let mut bytes = 0u64;
        while inner.bytes > self.capacity_bytes {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != just_inserted)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= entry.bytes;
                streams += 1;
                bytes += entry.bytes;
            }
        }
        self.evicted_streams.fetch_add(streams, Ordering::Relaxed);
        self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
        (streams, bytes)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_apps::Workload;
    use ggs_graph::GraphBuilder;

    fn ring(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n).map(|i| (i, (i + 1) % n)))
            .symmetric(true)
            .build()
    }

    fn key(app: AppKind, g: &Csr, prop: Propagation) -> StreamKey {
        StreamKey::for_workload(&Workload::new(app, g), prop, 256)
    }

    fn stream(app: AppKind, g: &Csr, prop: Propagation) -> TraceStream {
        Arc::new(Workload::new(app, g).stream(prop, 256))
    }

    #[test]
    fn fingerprint_distinguishes_topology_and_weights() {
        let a = ring(64);
        let b = ring(65);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&ring(64)));
        let weighted = ring(64).with_hashed_weights(8);
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&weighted));
    }

    #[test]
    fn hybrid_keys_never_collide_with_static_keys() {
        let g = ring(64);
        let push = key(AppKind::Bfs, &g, Propagation::Push);
        let pull = key(AppKind::Bfs, &g, Propagation::Pull);
        let hybrid = key(AppKind::Bfs, &g, Propagation::Hybrid);
        assert_eq!((push.policy_fp, pull.policy_fp), (0, 0));
        assert_ne!(hybrid.policy_fp, 0);
        assert_ne!(hybrid, push);
        assert_ne!(hybrid, pull);
        // The label carries the realized-policy fingerprint so traces
        // can distinguish hybrid schedules.
        assert!(hybrid.label("RING").contains("hybrid"));
        assert!(hybrid
            .label("RING")
            .contains(&format!("{:016x}", hybrid.policy_fp)));
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let g = ring(64);
        let cache = TraceCache::new(64 << 20);
        let k = key(AppKind::Pr, &g, Propagation::Push);
        let first = cache.get_or_build(
            k,
            "RING",
            &ggs_trace::NOOP,
            || 0,
            || stream(AppKind::Pr, &g, Propagation::Push),
        );
        let second = cache.get_or_build(
            k,
            "RING",
            &ggs_trace::NOOP,
            || 0,
            || panic!("cached stream must not rebuild"),
        );
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let g = ring(256);
        let probe = stream(AppKind::Pr, &g, Propagation::Push);
        let one = probe.iter().map(|k| k.heap_bytes()).sum::<u64>();
        // Room for two streams, not three.
        let cache = TraceCache::new(one * 2 + one / 2);
        for (app, prop) in [
            (AppKind::Pr, Propagation::Push),
            (AppKind::Pr, Propagation::Pull),
            (AppKind::Mis, Propagation::Push),
        ] {
            cache.get_or_build(
                key(app, &g, prop),
                "RING",
                &ggs_trace::NOOP,
                || 0,
                || stream(app, &g, prop),
            );
        }
        assert!(cache.resident_bytes() <= cache.capacity_bytes());
        assert!(cache.stats().evicted_streams >= 1);
        // The newest stream survives eviction.
        let k = key(AppKind::Mis, &g, Propagation::Push);
        cache.get_or_build(
            k,
            "RING",
            &ggs_trace::NOOP,
            || 0,
            || panic!("newest entry must not have been evicted"),
        );
    }

    #[test]
    fn oversized_streams_pass_through_uncached() {
        let g = ring(256);
        let cache = TraceCache::new(16); // smaller than any real stream
        let k = key(AppKind::Pr, &g, Propagation::Push);
        let s = cache.get_or_build(
            k,
            "RING",
            &ggs_trace::NOOP,
            || 0,
            || stream(AppKind::Pr, &g, Propagation::Push),
        );
        assert!(!s.is_empty());
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn concurrent_same_key_builders_build_once() {
        let g = Arc::new(ring(128));
        let cache = TraceCache::new(64 << 20);
        let builds = Arc::new(AtomicU64::new(0));
        let k = key(AppKind::Pr, &g, Propagation::Push);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let g = Arc::clone(&g);
                let builds = Arc::clone(&builds);
                scope.spawn(move || {
                    cache.get_or_build(
                        k,
                        "RING",
                        &ggs_trace::NOOP,
                        || 0,
                        || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            stream(AppKind::Pr, &g, Propagation::Push)
                        },
                    );
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn hit_and_miss_events_are_emitted() {
        let g = ring(64);
        let cache = TraceCache::new(64 << 20);
        let sink = ggs_trace::JsonlSink::new(Vec::new());
        let k = key(AppKind::Pr, &g, Propagation::Pull);
        for _ in 0..2 {
            cache.get_or_build(
                k,
                "RING",
                &sink,
                || 42,
                || stream(AppKind::Pr, &g, Propagation::Pull),
            );
        }
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert!(out.contains("\"type\":\"trace_cache_miss\""), "{out}");
        assert!(out.contains("\"type\":\"trace_cache_hit\""), "{out}");
        assert!(out.contains("PR/RING/pull/256"), "{out}");
    }
}
