//! The full 36-workload study behind the paper's Figures 5–6 and the
//! Table V model-accuracy evaluation.

use serde::{Deserialize, Serialize};

use ggs_apps::AppKind;
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{predict_full, predict_partial, GraphProfile, SystemConfig};
use ggs_sim::StallClass;

use crate::experiment::ExperimentSpec;
use crate::sweep::{baseline_config, figure5_configs, WorkloadSweep};

/// Which configuration set a study sweeps per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigSet {
    /// The sets shown in Figure 5: 5 configurations for static
    /// workloads, 4 for CC (dominated points omitted, as in the paper).
    Figure5,
    /// Every configuration of the design space: 12 static / 6 dynamic.
    Full,
}

/// Serializable per-configuration result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRow {
    /// Configuration code (`SGR`, `TG0`, …).
    pub config: String,
    /// GPU execution time in cycles.
    pub total_cycles: u64,
    /// Stall-class fractions in Figure 5 order
    /// (Busy, Comp, Data, Sync, Idle).
    pub fractions: [f64; 5],
}

/// Serializable report for one workload (one Figure 5 group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Application mnemonic.
    pub app: String,
    /// Graph mnemonic.
    pub graph: String,
    /// Volume/Reuse/Imbalance class letters (Table II).
    pub classes: String,
    /// Configuration predicted by the full model (Table V).
    pub predicted: String,
    /// Configuration predicted by the partial (no-DRFrlx) model.
    pub predicted_partial: String,
    /// Empirically best configuration in the sweep.
    pub best: String,
    /// The Figure 5 normalization baseline (TG0 / DG1).
    pub baseline: String,
    /// Per-configuration results.
    pub rows: Vec<ResultRow>,
}

impl WorkloadReport {
    /// Cycles of a configuration, if swept.
    pub fn cycles_of(&self, code: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.config == code)
            .map(|r| r.total_cycles)
    }

    /// Execution time of `code` normalized to the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `code` or the baseline is missing from the rows.
    pub fn normalized(&self, code: &str) -> f64 {
        let base = self.cycles_of(&self.baseline).expect("baseline swept") as f64;
        self.cycles_of(code).expect("config swept") as f64 / base
    }

    /// Relative slowdown of the model's prediction versus the empirical
    /// best (0.0 when the model picked the best).
    pub fn prediction_slowdown(&self) -> f64 {
        let best = self.cycles_of(&self.best).expect("best swept") as f64;
        let pred = self
            .cycles_of(&self.predicted)
            .expect("prediction swept") as f64;
        pred / best - 1.0
    }

    /// The default configuration Figure 6 compares against: `SGR` for
    /// static workloads, `DGR` for CC.
    pub fn default_config(&self) -> &'static str {
        if self.app == "CC" {
            "DGR"
        } else {
            "SGR"
        }
    }

    /// Fractional execution-time reduction of BEST versus the default
    /// configuration (Figure 6's headline metric); 0 when the default
    /// is already best.
    pub fn best_reduction_vs_default(&self) -> f64 {
        let def = self.cycles_of(self.default_config()).expect("default swept") as f64;
        let best = self.cycles_of(&self.best).expect("best swept") as f64;
        (1.0 - best / def).max(0.0)
    }
}

/// The complete study: every preset × application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Study {
    /// Scale the inputs were generated at.
    pub scale: f64,
    /// One report per workload, in (graph, app) order.
    pub reports: Vec<WorkloadReport>,
}

impl Study {
    /// Runs the study at `scale` over `configs` using `threads` worker
    /// threads (pass 1 for deterministic sequential execution; results
    /// are identical either way since workloads are independent).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `scale` is not positive.
    pub fn run(scale: f64, configs: ConfigSet, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let spec = ExperimentSpec::at_scale(scale);
        let metric_params = spec.metric_params();

        // Generate all six inputs (weighted up front so SSSP does not
        // re-derive weights per sweep).
        let graphs: Vec<(GraphPreset, ggs_graph::Csr, GraphProfile)> = GraphPreset::ALL
            .into_iter()
            .map(|p| {
                let g = SynthConfig::preset(p)
                    .scale(scale)
                    .generate()
                    .with_hashed_weights(64);
                let profile = GraphProfile::measure(&g, &metric_params);
                (p, g, profile)
            })
            .collect();

        // Workload list: (graph index, app).
        let jobs: Vec<(usize, AppKind)> = (0..graphs.len())
            .flat_map(|gi| AppKind::ALL.into_iter().map(move |app| (gi, app)))
            .collect();

        let next = std::sync::atomic::AtomicUsize::new(0);
        let results = parking_lot::Mutex::new(vec![None; jobs.len()]);

        crossbeam::scope(|scope| {
            for _ in 0..threads.min(jobs.len()).max(1) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (gi, app) = jobs[i];
                    let (preset, graph, profile) = &graphs[gi];
                    let report = run_one(app, *preset, graph, profile, configs, &spec);
                    results.lock()[i] = Some(report);
                });
            }
        })
        .expect("study workers do not panic");

        let reports = results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every job completed"))
            .collect();
        Self { scale, reports }
    }

    /// The report for one workload.
    pub fn report(&self, graph: &str, app: &str) -> Option<&WorkloadReport> {
        self.reports
            .iter()
            .find(|r| r.graph == graph && r.app == app)
    }

    /// Number of workloads where the full model picked exactly the
    /// empirical best (the paper reports 28 of 36).
    pub fn exact_predictions(&self) -> usize {
        self.reports.iter().filter(|r| r.predicted == r.best).count()
    }

    /// Largest prediction slowdown across all workloads (the paper
    /// reports ≤ 3.5%).
    pub fn worst_prediction_slowdown(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.prediction_slowdown())
            .fold(0.0, f64::max)
    }

    /// The Figure 6 rows: workloads where the default configuration
    /// (SGR, or DGR for CC) is *not* the empirical best, with the
    /// fractional reduction BEST achieves.
    pub fn figure6_rows(&self) -> Vec<(&WorkloadReport, f64)> {
        self.reports
            .iter()
            .filter(|r| r.best != r.default_config())
            .map(|r| (r, r.best_reduction_vs_default()))
            .collect()
    }
}

fn run_one(
    app: AppKind,
    preset: GraphPreset,
    graph: &ggs_graph::Csr,
    profile: &GraphProfile,
    configs: ConfigSet,
    spec: &ExperimentSpec,
) -> WorkloadReport {
    let algo = app.algo_profile();
    let config_list: Vec<SystemConfig> = match configs {
        ConfigSet::Figure5 => figure5_configs(app),
        ConfigSet::Full => SystemConfig::all_for(algo.traversal),
    };
    let sweep = WorkloadSweep::run(app, preset.mnemonic(), graph, &config_list, spec);
    let rows = sweep
        .results
        .iter()
        .map(|r| ResultRow {
            config: r.config.code(),
            total_cycles: r.stats.total_cycles(),
            fractions: [
                r.stats.breakdown.fraction(StallClass::Busy),
                r.stats.breakdown.fraction(StallClass::Comp),
                r.stats.breakdown.fraction(StallClass::Data),
                r.stats.breakdown.fraction(StallClass::Sync),
                r.stats.breakdown.fraction(StallClass::Idle),
            ],
        })
        .collect();
    WorkloadReport {
        app: app.mnemonic().to_owned(),
        graph: preset.mnemonic().to_owned(),
        classes: profile.class_code(),
        predicted: predict_full(&algo, profile).code(),
        predicted_partial: predict_partial(&algo, profile).code(),
        best: sweep.best().config.code(),
        baseline: baseline_config(app).code(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke study; the full-scale study is exercised by the
    /// repro harness and integration tests.
    #[test]
    fn tiny_study_runs_and_serializes() {
        let study = Study::run(0.004, ConfigSet::Figure5, 8);
        assert_eq!(study.reports.len(), 36);
        for r in &study.reports {
            assert!(!r.rows.is_empty());
            assert!(r.cycles_of(&r.best).unwrap() > 0);
            assert!(r.cycles_of(&r.baseline).is_some());
        }
        let json = serde_json::to_string(&study).unwrap();
        let back: Study = serde_json::from_str(&json).unwrap();
        // Floats may lose an ULP through JSON; compare the discrete
        // fields exactly and the fractions approximately.
        assert_eq!(back.reports.len(), study.reports.len());
        for (a, b) in study.reports.iter().zip(back.reports.iter()) {
            assert_eq!(a.app, b.app);
            assert_eq!(a.best, b.best);
            assert_eq!(a.predicted, b.predicted);
            for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
                assert_eq!(ra.total_cycles, rb.total_cycles);
                for i in 0..5 {
                    assert!((ra.fractions[i] - rb.fractions[i]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn report_lookup_and_metrics() {
        let study = Study::run(0.004, ConfigSet::Figure5, 8);
        let r = study.report("RAJ", "PR").expect("workload present");
        assert_eq!(r.normalized(&r.baseline), 1.0);
        assert!(r.prediction_slowdown() >= 0.0);
        assert!(study.exact_predictions() <= 36);
    }
}
