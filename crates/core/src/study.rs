//! The full 36-workload study behind the paper's Figures 5–6 and the
//! Table V model-accuracy evaluation.

use std::collections::BTreeMap;

use ggs_apps::AppKind;
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{predict_full, predict_partial, GraphProfile, SystemConfig};
use ggs_sim::StallClass;
use ggs_trace::MetricsRegistry;

use crate::error::GgsError;
use crate::experiment::ExperimentSpec;
use crate::json::{self, Value};
use crate::sweep::{baseline_config, figure5_configs, WorkloadSweep};

/// Which configuration set a study sweeps per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigSet {
    /// The sets shown in Figure 5: 5 configurations for static
    /// workloads, 4 for CC (dominated points omitted, as in the paper).
    Figure5,
    /// Every configuration of the design space: 12 static / 6 dynamic.
    Full,
}

/// Serializable per-configuration result row.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Configuration code (`SGR`, `TG0`, …).
    pub config: String,
    /// GPU execution time in cycles.
    pub total_cycles: u64,
    /// Stall-class fractions in Figure 5 order
    /// (Busy, Comp, Data, Sync, Idle).
    pub fractions: [f64; 5],
}

/// Serializable report for one workload (one Figure 5 group).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Application mnemonic.
    pub app: String,
    /// Graph mnemonic.
    pub graph: String,
    /// Volume/Reuse/Imbalance class letters (Table II).
    pub classes: String,
    /// Configuration predicted by the full model (Table V).
    pub predicted: String,
    /// Configuration predicted by the partial (no-DRFrlx) model.
    pub predicted_partial: String,
    /// Empirically best configuration in the sweep.
    pub best: String,
    /// The Figure 5 normalization baseline (TG0 / DG1).
    pub baseline: String,
    /// Per-configuration results.
    pub rows: Vec<ResultRow>,
}

impl WorkloadReport {
    /// Cycles of a configuration, if swept.
    pub fn cycles_of(&self, code: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.config == code)
            .map(|r| r.total_cycles)
    }

    /// Execution time of `code` normalized to the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `code` or the baseline is missing from the rows.
    pub fn normalized(&self, code: &str) -> f64 {
        let base = self.cycles_of(&self.baseline).expect("baseline swept") as f64;
        self.cycles_of(code).expect("config swept") as f64 / base
    }

    /// Relative slowdown of the model's prediction versus the empirical
    /// best (0.0 when the model picked the best).
    pub fn prediction_slowdown(&self) -> f64 {
        let best = self.cycles_of(&self.best).expect("best swept") as f64;
        let pred = self.cycles_of(&self.predicted).expect("prediction swept") as f64;
        pred / best - 1.0
    }

    /// The default configuration Figure 6 compares against: `SGR` for
    /// static workloads, `DGR` for CC.
    pub fn default_config(&self) -> &'static str {
        if self.app == "CC" {
            "DGR"
        } else {
            "SGR"
        }
    }

    /// Fractional execution-time reduction of BEST versus the default
    /// configuration (Figure 6's headline metric); 0 when the default
    /// is already best.
    pub fn best_reduction_vs_default(&self) -> f64 {
        let def = self
            .cycles_of(self.default_config())
            .expect("default swept") as f64;
        let best = self.cycles_of(&self.best).expect("best swept") as f64;
        (1.0 - best / def).max(0.0)
    }
}

/// The complete study: every preset × application.
#[derive(Debug, Clone, PartialEq)]
pub struct Study {
    /// Scale the inputs were generated at.
    pub scale: f64,
    /// One report per workload, in (graph, app) order.
    pub reports: Vec<WorkloadReport>,
}

impl Study {
    /// Runs the study at `scale` over `configs` using `threads` worker
    /// threads (pass 1 for deterministic sequential execution; results
    /// are identical either way since workloads are independent).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `scale` is not positive.
    pub fn run(scale: f64, configs: ConfigSet, threads: usize) -> Self {
        Self::run_with_metrics(scale, configs, threads, &MetricsRegistry::new())
    }

    /// Like [`Study::run`], additionally recording wall-clock phase
    /// spans (`generate_inputs`, `simulate`, `aggregate`) and
    /// per-worker counters into `metrics`. Workers accumulate into
    /// thread-local registries that are merged into `metrics` as each
    /// worker finishes, so the shared registry is touched once per
    /// worker, not once per event.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `scale` is not positive.
    pub fn run_with_metrics(
        scale: f64,
        configs: ConfigSet,
        threads: usize,
        metrics: &MetricsRegistry,
    ) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let spec = ExperimentSpec::at_scale(scale);
        let metric_params = spec.metric_params();

        // Generate all six inputs (weighted up front so SSSP does not
        // re-derive weights per sweep).
        let graphs: Vec<(GraphPreset, ggs_graph::Csr, GraphProfile)> = {
            let _phase = metrics.phase("generate_inputs");
            GraphPreset::ALL
                .into_iter()
                .map(|p| {
                    let g = SynthConfig::preset(p)
                        .scale(scale)
                        .generate()
                        .with_hashed_weights(64);
                    let profile = GraphProfile::measure(&g, &metric_params);
                    (p, g, profile)
                })
                .collect()
        };

        // Workload list: (graph index, app).
        let jobs: Vec<(usize, AppKind)> = (0..graphs.len())
            .flat_map(|gi| AppKind::ALL.into_iter().map(move |app| (gi, app)))
            .collect();

        let next = std::sync::atomic::AtomicUsize::new(0);
        let results = std::sync::Mutex::new(vec![None; jobs.len()]);

        {
            let _phase = metrics.phase("simulate");
            std::thread::scope(|scope| {
                for _ in 0..threads.min(jobs.len()).max(1) {
                    scope.spawn(|| {
                        let local = MetricsRegistry::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            let (gi, app) = jobs[i];
                            let (preset, graph, profile) = &graphs[gi];
                            let report = run_one(app, *preset, graph, profile, configs, &spec);
                            local.add("workloads_simulated", 1);
                            local.add("configs_simulated", report.rows.len() as u64);
                            for row in &report.rows {
                                local.observe("config_total_cycles", row.total_cycles);
                            }
                            let mut slots = results.lock().unwrap_or_else(|e| e.into_inner());
                            slots[i] = Some(report);
                        }
                        metrics.merge(&local);
                    });
                }
            });
        }

        let _phase = metrics.phase("aggregate");
        let reports: Vec<WorkloadReport> = results
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|r| r.expect("every job completed"))
            .collect();
        metrics.add("study_workloads", reports.len() as u64);
        Self { scale, reports }
    }

    /// The report for one workload.
    pub fn report(&self, graph: &str, app: &str) -> Option<&WorkloadReport> {
        self.reports
            .iter()
            .find(|r| r.graph == graph && r.app == app)
    }

    /// Number of workloads where the full model picked exactly the
    /// empirical best (the paper reports 28 of 36).
    pub fn exact_predictions(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.predicted == r.best)
            .count()
    }

    /// Largest prediction slowdown across all workloads (the paper
    /// reports ≤ 3.5%).
    pub fn worst_prediction_slowdown(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.prediction_slowdown())
            .fold(0.0, f64::max)
    }

    /// The Figure 6 rows: workloads where the default configuration
    /// (SGR, or DGR for CC) is *not* the empirical best, with the
    /// fractional reduction BEST achieves.
    pub fn figure6_rows(&self) -> Vec<(&WorkloadReport, f64)> {
        self.reports
            .iter()
            .filter(|r| r.best != r.default_config())
            .map(|r| (r, r.best_reduction_vs_default()))
            .collect()
    }

    /// Serializes the study as single-line JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_string_compact()
    }

    /// Serializes the study as indented JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_string_pretty()
    }

    fn to_value(&self) -> Value {
        let reports = self
            .reports
            .iter()
            .map(|r| {
                let rows = r
                    .rows
                    .iter()
                    .map(|row| {
                        let fractions = row.fractions.iter().map(|&f| Value::Number(f)).collect();
                        Value::Object(BTreeMap::from([
                            ("config".to_owned(), Value::String(row.config.clone())),
                            (
                                "total_cycles".to_owned(),
                                Value::Number(row.total_cycles as f64),
                            ),
                            ("fractions".to_owned(), Value::Array(fractions)),
                        ]))
                    })
                    .collect();
                Value::Object(BTreeMap::from([
                    ("app".to_owned(), Value::String(r.app.clone())),
                    ("graph".to_owned(), Value::String(r.graph.clone())),
                    ("classes".to_owned(), Value::String(r.classes.clone())),
                    ("predicted".to_owned(), Value::String(r.predicted.clone())),
                    (
                        "predicted_partial".to_owned(),
                        Value::String(r.predicted_partial.clone()),
                    ),
                    ("best".to_owned(), Value::String(r.best.clone())),
                    ("baseline".to_owned(), Value::String(r.baseline.clone())),
                    ("rows".to_owned(), Value::Array(rows)),
                ]))
            })
            .collect();
        Value::Object(BTreeMap::from([
            ("scale".to_owned(), Value::Number(self.scale)),
            ("reports".to_owned(), Value::Array(reports)),
        ]))
    }

    /// Parses a study serialized by [`Study::to_json`] /
    /// [`Study::to_json_pretty`].
    ///
    /// # Errors
    ///
    /// Returns [`GgsError::Json`] on malformed JSON or a
    /// missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<Self, GgsError> {
        Self::from_json_inner(text).map_err(GgsError::Json)
    }

    fn from_json_inner(text: &str) -> Result<Self, String> {
        fn str_field(v: &Value, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        }
        let root = json::parse(text)?;
        let scale = root
            .get("scale")
            .and_then(Value::as_f64)
            .ok_or("missing number field \"scale\"")?;
        let mut reports = Vec::new();
        for r in root
            .get("reports")
            .and_then(Value::as_array)
            .ok_or("missing array field \"reports\"")?
        {
            let mut rows = Vec::new();
            for row in r
                .get("rows")
                .and_then(Value::as_array)
                .ok_or("missing array field \"rows\"")?
            {
                let fracs = row
                    .get("fractions")
                    .and_then(Value::as_array)
                    .ok_or("missing array field \"fractions\"")?;
                let mut fractions = [0.0f64; 5];
                if fracs.len() != fractions.len() {
                    return Err(format!("expected 5 fractions, got {}", fracs.len()));
                }
                for (slot, frac) in fractions.iter_mut().zip(fracs) {
                    *slot = frac.as_f64().ok_or("non-numeric fraction")?;
                }
                rows.push(ResultRow {
                    config: str_field(row, "config")?,
                    total_cycles: row
                        .get("total_cycles")
                        .and_then(Value::as_u64)
                        .ok_or("missing integer field \"total_cycles\"")?,
                    fractions,
                });
            }
            reports.push(WorkloadReport {
                app: str_field(r, "app")?,
                graph: str_field(r, "graph")?,
                classes: str_field(r, "classes")?,
                predicted: str_field(r, "predicted")?,
                predicted_partial: str_field(r, "predicted_partial")?,
                best: str_field(r, "best")?,
                baseline: str_field(r, "baseline")?,
                rows,
            });
        }
        Ok(Self { scale, reports })
    }
}

fn run_one(
    app: AppKind,
    preset: GraphPreset,
    graph: &ggs_graph::Csr,
    profile: &GraphProfile,
    configs: ConfigSet,
    spec: &ExperimentSpec,
) -> WorkloadReport {
    let algo = app.algo_profile();
    let config_list: Vec<SystemConfig> = match configs {
        ConfigSet::Figure5 => figure5_configs(app),
        ConfigSet::Full => SystemConfig::all_for(algo.traversal),
    };
    let sweep = WorkloadSweep::run(app, preset.mnemonic(), graph, &config_list, spec);
    let rows = sweep
        .results
        .iter()
        .map(|r| ResultRow {
            config: r.config.code(),
            total_cycles: r.stats.total_cycles(),
            fractions: [
                r.stats.breakdown.fraction(StallClass::Busy),
                r.stats.breakdown.fraction(StallClass::Comp),
                r.stats.breakdown.fraction(StallClass::Data),
                r.stats.breakdown.fraction(StallClass::Sync),
                r.stats.breakdown.fraction(StallClass::Idle),
            ],
        })
        .collect();
    WorkloadReport {
        app: app.mnemonic().to_owned(),
        graph: preset.mnemonic().to_owned(),
        classes: profile.class_code(),
        predicted: predict_full(&algo, profile).code(),
        predicted_partial: predict_partial(&algo, profile).code(),
        best: sweep.best().config.code(),
        baseline: baseline_config(app).code(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke study; the full-scale study is exercised by the
    /// repro harness and integration tests.
    #[test]
    fn tiny_study_runs_and_serializes() {
        let study = Study::run(0.004, ConfigSet::Figure5, 8);
        assert_eq!(study.reports.len(), 36);
        for r in &study.reports {
            assert!(!r.rows.is_empty());
            assert!(r.cycles_of(&r.best).unwrap() > 0);
            assert!(r.cycles_of(&r.baseline).is_some());
        }
        let json = study.to_json();
        let back = Study::from_json(&json).unwrap();
        // Shortest-roundtrip float formatting makes the whole cycle
        // lossless, so the comparison can be exact.
        assert_eq!(back, study);
        let pretty = Study::from_json(&study.to_json_pretty()).unwrap();
        assert_eq!(pretty, study);
    }

    #[test]
    fn run_with_metrics_records_phases_and_counters() {
        let metrics = MetricsRegistry::new();
        let study = Study::run_with_metrics(0.004, ConfigSet::Figure5, 4, &metrics);
        assert_eq!(study.reports.len(), 36);
        assert_eq!(metrics.counter("workloads_simulated"), 36);
        assert_eq!(metrics.counter("study_workloads"), 36);
        assert!(metrics.counter("configs_simulated") > 36);
        let phases: Vec<String> = metrics.spans().iter().map(|s| s.name.clone()).collect();
        for phase in ["generate_inputs", "simulate", "aggregate"] {
            assert!(phases.contains(&phase.to_string()), "missing phase {phase}");
        }
        let hist = metrics
            .histograms()
            .into_iter()
            .find(|(n, _)| n == "config_total_cycles")
            .expect("cycle histogram recorded")
            .1;
        assert!(hist.count > 0 && hist.min > 0);
    }

    #[test]
    fn from_json_rejects_malformed_input_with_typed_error() {
        let err = Study::from_json("{not json").unwrap_err();
        assert!(matches!(err, crate::error::GgsError::Json(_)));
        let err = Study::from_json("{\"scale\": 1.0}").unwrap_err();
        assert!(err.to_string().contains("reports"));
    }

    #[test]
    fn report_lookup_and_metrics() {
        let study = Study::run(0.004, ConfigSet::Figure5, 8);
        let r = study.report("RAJ", "PR").expect("workload present");
        assert_eq!(r.normalized(&r.baseline), 1.0);
        assert!(r.prediction_slowdown() >= 0.0);
        assert!(study.exact_predictions() <= 36);
    }
}
