//! The full 36-workload study behind the paper's Figures 5–6 and the
//! Table V model-accuracy evaluation.

use std::collections::BTreeMap;

use ggs_trace::MetricsRegistry;

use crate::error::GgsError;
use crate::experiment::ExperimentSpec;
use crate::json::{self, Value};
use crate::runner::{run_study, CellReport, CellStatus, StudyOptions};

/// Which configuration set a study sweeps per workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigSet {
    /// The sets shown in Figure 5: 5 configurations for static
    /// workloads, 4 for CC (dominated points omitted, as in the paper).
    Figure5,
    /// Every configuration of the design space: 12 static / 6 dynamic.
    Full,
}

/// Serializable per-configuration result row.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Configuration code (`SGR`, `TG0`, …).
    pub config: String,
    /// GPU execution time in cycles.
    pub total_cycles: u64,
    /// Stall-class fractions in Figure 5 order
    /// (Busy, Comp, Data, Sync, Idle).
    pub fractions: [f64; 5],
}

/// Serializable report for one workload (one Figure 5 group).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Application mnemonic.
    pub app: String,
    /// Graph mnemonic.
    pub graph: String,
    /// Volume/Reuse/Imbalance class letters (Table II).
    pub classes: String,
    /// Configuration predicted by the full model (Table V).
    pub predicted: String,
    /// Configuration predicted by the partial (no-DRFrlx) model.
    pub predicted_partial: String,
    /// Empirically best configuration in the sweep.
    pub best: String,
    /// The Figure 5 normalization baseline (TG0 / DG1).
    pub baseline: String,
    /// Per-configuration results.
    pub rows: Vec<ResultRow>,
}

impl WorkloadReport {
    /// Cycles of a configuration, if swept.
    pub fn cycles_of(&self, code: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.config == code)
            .map(|r| r.total_cycles)
    }

    /// Execution time of `code` normalized to the baseline, or `None`
    /// when either row is missing — which happens in degraded studies
    /// where a cell failed or timed out (see `docs/robustness.md`).
    pub fn try_normalized(&self, code: &str) -> Option<f64> {
        let base = self.cycles_of(&self.baseline)? as f64;
        Some(self.cycles_of(code)? as f64 / base)
    }

    /// Execution time of `code` normalized to the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `code` or the baseline is missing from the rows; use
    /// [`WorkloadReport::try_normalized`] on possibly-degraded studies.
    pub fn normalized(&self, code: &str) -> f64 {
        self.try_normalized(code)
            .expect("baseline and config swept")
    }

    /// Relative slowdown of the model's prediction versus the empirical
    /// best (0.0 when the model picked the best), or `None` when either
    /// row is missing from a degraded study.
    pub fn try_prediction_slowdown(&self) -> Option<f64> {
        let best = self.cycles_of(&self.best)? as f64;
        let pred = self.cycles_of(&self.predicted)? as f64;
        Some(pred / best - 1.0)
    }

    /// Relative slowdown of the model's prediction versus the empirical
    /// best (0.0 when the model picked the best).
    ///
    /// # Panics
    ///
    /// Panics if the best or predicted row is missing; use
    /// [`WorkloadReport::try_prediction_slowdown`] on possibly-degraded
    /// studies.
    pub fn prediction_slowdown(&self) -> f64 {
        self.try_prediction_slowdown()
            .expect("best and prediction swept")
    }

    /// The default configuration Figure 6 compares against: `SGR` for
    /// static workloads, `DGR` for CC.
    pub fn default_config(&self) -> &'static str {
        if self.app == "CC" {
            "DGR"
        } else {
            "SGR"
        }
    }

    /// Fractional execution-time reduction of BEST versus the default
    /// configuration (Figure 6's headline metric); 0 when the default
    /// is already best, `None` when either row is missing from a
    /// degraded study.
    pub fn try_best_reduction_vs_default(&self) -> Option<f64> {
        let def = self.cycles_of(self.default_config())? as f64;
        let best = self.cycles_of(&self.best)? as f64;
        Some((1.0 - best / def).max(0.0))
    }

    /// Fractional execution-time reduction of BEST versus the default
    /// configuration (Figure 6's headline metric); 0 when the default
    /// is already best.
    ///
    /// # Panics
    ///
    /// Panics if the default or best row is missing; use
    /// [`WorkloadReport::try_best_reduction_vs_default`] on
    /// possibly-degraded studies.
    pub fn best_reduction_vs_default(&self) -> f64 {
        self.try_best_reduction_vs_default()
            .expect("default and best swept")
    }
}

/// The complete study: every preset × application.
#[derive(Debug, Clone, PartialEq)]
pub struct Study {
    /// Scale the inputs were generated at.
    pub scale: f64,
    /// One report per workload, in (graph, app) order. Workloads whose
    /// every cell failed are absent (see `failures`).
    pub reports: Vec<WorkloadReport>,
    /// Cells that failed or timed out; empty for a clean run (see
    /// [`crate::runner`]).
    pub failures: Vec<CellReport>,
}

impl Study {
    /// Runs the study at `scale` over `configs` using `threads` worker
    /// threads (pass 1 for deterministic sequential execution; results
    /// are identical either way since workloads are independent).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `scale` is not positive.
    pub fn run(scale: f64, configs: ConfigSet, threads: usize) -> Self {
        Self::run_with_metrics(scale, configs, threads, &MetricsRegistry::new())
    }

    /// Like [`Study::run`], additionally recording wall-clock phase
    /// spans (`generate_inputs`, `simulate`, `aggregate`) and
    /// per-worker counters into `metrics`. Workers accumulate into
    /// thread-local registries that are merged into `metrics` as each
    /// worker finishes, so the shared registry is touched once per
    /// worker, not once per event.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `scale` is not positive.
    pub fn run_with_metrics(
        scale: f64,
        configs: ConfigSet,
        threads: usize,
        metrics: &MetricsRegistry,
    ) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let spec = ExperimentSpec::at_scale(scale);
        let options = StudyOptions::new(configs, threads);
        run_study(&spec, &options, metrics, &ggs_trace::NOOP)
            .map(|outcome| outcome.study)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The report for one workload.
    pub fn report(&self, graph: &str, app: &str) -> Option<&WorkloadReport> {
        self.reports
            .iter()
            .find(|r| r.graph == graph && r.app == app)
    }

    /// Number of workloads where the full model picked exactly the
    /// empirical best (the paper reports 28 of 36).
    pub fn exact_predictions(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.predicted == r.best)
            .count()
    }

    /// Largest prediction slowdown across all workloads (the paper
    /// reports ≤ 3.5%). Workloads whose best or predicted row is
    /// missing (degraded studies) are skipped rather than panicking.
    pub fn worst_prediction_slowdown(&self) -> f64 {
        self.reports
            .iter()
            .filter_map(|r| r.try_prediction_slowdown())
            .fold(0.0, f64::max)
    }

    /// The Figure 6 rows: workloads where the default configuration
    /// (SGR, or DGR for CC) is *not* the empirical best, with the
    /// fractional reduction BEST achieves. Workloads whose default or
    /// best row is missing (degraded studies) are skipped.
    pub fn figure6_rows(&self) -> Vec<(&WorkloadReport, f64)> {
        self.reports
            .iter()
            .filter(|r| r.best != r.default_config())
            .filter_map(|r| r.try_best_reduction_vs_default().map(|red| (r, red)))
            .collect()
    }

    /// Serializes the study as single-line JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_string_compact()
    }

    /// Serializes the study as indented JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_string_pretty()
    }

    fn to_value(&self) -> Value {
        let reports = self
            .reports
            .iter()
            .map(|r| {
                let rows = r
                    .rows
                    .iter()
                    .map(|row| {
                        let fractions = row.fractions.iter().map(|&f| Value::Number(f)).collect();
                        Value::Object(BTreeMap::from([
                            ("config".to_owned(), Value::String(row.config.clone())),
                            (
                                "total_cycles".to_owned(),
                                Value::Number(row.total_cycles as f64),
                            ),
                            ("fractions".to_owned(), Value::Array(fractions)),
                        ]))
                    })
                    .collect();
                Value::Object(BTreeMap::from([
                    ("app".to_owned(), Value::String(r.app.clone())),
                    ("graph".to_owned(), Value::String(r.graph.clone())),
                    ("classes".to_owned(), Value::String(r.classes.clone())),
                    ("predicted".to_owned(), Value::String(r.predicted.clone())),
                    (
                        "predicted_partial".to_owned(),
                        Value::String(r.predicted_partial.clone()),
                    ),
                    ("best".to_owned(), Value::String(r.best.clone())),
                    ("baseline".to_owned(), Value::String(r.baseline.clone())),
                    ("rows".to_owned(), Value::Array(rows)),
                ]))
            })
            .collect();
        let failures = self
            .failures
            .iter()
            .map(|c| {
                Value::Object(BTreeMap::from([
                    ("app".to_owned(), Value::String(c.app.clone())),
                    ("graph".to_owned(), Value::String(c.graph.clone())),
                    ("config".to_owned(), Value::String(c.config.clone())),
                    (
                        "status".to_owned(),
                        Value::String(c.status.name().to_owned()),
                    ),
                    ("detail".to_owned(), Value::String(c.detail.clone())),
                    ("attempts".to_owned(), Value::Number(f64::from(c.attempts))),
                ]))
            })
            .collect();
        Value::Object(BTreeMap::from([
            ("scale".to_owned(), Value::Number(self.scale)),
            ("reports".to_owned(), Value::Array(reports)),
            ("failures".to_owned(), Value::Array(failures)),
        ]))
    }

    /// Parses a study serialized by [`Study::to_json`] /
    /// [`Study::to_json_pretty`].
    ///
    /// # Errors
    ///
    /// Returns [`GgsError::Json`] on malformed JSON or a
    /// missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<Self, GgsError> {
        Self::from_json_inner(text).map_err(GgsError::Json)
    }

    fn from_json_inner(text: &str) -> Result<Self, String> {
        fn str_field(v: &Value, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        }
        let root = json::parse(text)?;
        let scale = root
            .get("scale")
            .and_then(Value::as_f64)
            .ok_or("missing number field \"scale\"")?;
        let mut reports = Vec::new();
        for r in root
            .get("reports")
            .and_then(Value::as_array)
            .ok_or("missing array field \"reports\"")?
        {
            let mut rows = Vec::new();
            for row in r
                .get("rows")
                .and_then(Value::as_array)
                .ok_or("missing array field \"rows\"")?
            {
                let fracs = row
                    .get("fractions")
                    .and_then(Value::as_array)
                    .ok_or("missing array field \"fractions\"")?;
                let mut fractions = [0.0f64; 5];
                if fracs.len() != fractions.len() {
                    return Err(format!("expected 5 fractions, got {}", fracs.len()));
                }
                for (slot, frac) in fractions.iter_mut().zip(fracs) {
                    *slot = frac.as_f64().ok_or("non-numeric fraction")?;
                }
                rows.push(ResultRow {
                    config: str_field(row, "config")?,
                    total_cycles: row
                        .get("total_cycles")
                        .and_then(Value::as_u64)
                        .ok_or("missing integer field \"total_cycles\"")?,
                    fractions,
                });
            }
            reports.push(WorkloadReport {
                app: str_field(r, "app")?,
                graph: str_field(r, "graph")?,
                classes: str_field(r, "classes")?,
                predicted: str_field(r, "predicted")?,
                predicted_partial: str_field(r, "predicted_partial")?,
                best: str_field(r, "best")?,
                baseline: str_field(r, "baseline")?,
                rows,
            });
        }
        // Absent in pre-robustness serializations; default to a clean
        // run so old files keep loading.
        let mut failures = Vec::new();
        if let Some(list) = root.get("failures").and_then(Value::as_array) {
            for c in list {
                let status_name = str_field(c, "status")?;
                failures.push(CellReport {
                    app: str_field(c, "app")?,
                    graph: str_field(c, "graph")?,
                    config: str_field(c, "config")?,
                    status: CellStatus::from_name(&status_name)
                        .ok_or_else(|| format!("unknown cell status {status_name:?}"))?,
                    detail: str_field(c, "detail")?,
                    attempts: c
                        .get("attempts")
                        .and_then(Value::as_u64)
                        .ok_or("missing integer field \"attempts\"")?
                        as u32,
                });
            }
        }
        Ok(Self {
            scale,
            reports,
            failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke study; the full-scale study is exercised by the
    /// repro harness and integration tests.
    #[test]
    fn tiny_study_runs_and_serializes() {
        let study = Study::run(0.004, ConfigSet::Figure5, 8);
        assert_eq!(study.reports.len(), 36);
        for r in &study.reports {
            assert!(!r.rows.is_empty());
            assert!(r.cycles_of(&r.best).unwrap() > 0);
            assert!(r.cycles_of(&r.baseline).is_some());
        }
        let json = study.to_json();
        let back = Study::from_json(&json).unwrap();
        // Shortest-roundtrip float formatting makes the whole cycle
        // lossless, so the comparison can be exact.
        assert_eq!(back, study);
        let pretty = Study::from_json(&study.to_json_pretty()).unwrap();
        assert_eq!(pretty, study);
    }

    #[test]
    fn run_with_metrics_records_phases_and_counters() {
        let metrics = MetricsRegistry::new();
        let study = Study::run_with_metrics(0.004, ConfigSet::Figure5, 4, &metrics);
        assert_eq!(study.reports.len(), 36);
        assert_eq!(metrics.counter("workloads_simulated"), 36);
        assert_eq!(metrics.counter("study_workloads"), 36);
        assert!(metrics.counter("configs_simulated") > 36);
        let phases: Vec<String> = metrics.spans().iter().map(|s| s.name.clone()).collect();
        for phase in ["generate_inputs", "simulate", "aggregate"] {
            assert!(phases.contains(&phase.to_string()), "missing phase {phase}");
        }
        let hist = metrics
            .histograms()
            .into_iter()
            .find(|(n, _)| n == "config_total_cycles")
            .expect("cycle histogram recorded")
            .1;
        assert!(hist.count > 0 && hist.min > 0);
    }

    #[test]
    fn from_json_rejects_malformed_input_with_typed_error() {
        let err = Study::from_json("{not json").unwrap_err();
        assert!(matches!(err, crate::error::GgsError::Json(_)));
        let err = Study::from_json("{\"scale\": 1.0}").unwrap_err();
        assert!(err.to_string().contains("reports"));
    }

    #[test]
    fn report_lookup_and_metrics() {
        let study = Study::run(0.004, ConfigSet::Figure5, 8);
        let r = study.report("RAJ", "PR").expect("workload present");
        assert_eq!(r.normalized(&r.baseline), 1.0);
        assert!(r.prediction_slowdown() >= 0.0);
        assert!(study.exact_predictions() <= 36);
    }
}
