//! Top-level experiment API for the GGS reproduction of *Specializing
//! Coherence, Consistency, and Push/Pull for GPU Graph Analytics*
//! (ISPASS 2020).
//!
//! This crate composes the substrates — [`ggs_graph`] inputs,
//! [`ggs_apps`] kernels, the [`ggs_sim`] simulator, and the
//! [`ggs_model`] taxonomy/decision tree — into the paper's experiments:
//!
//! * [`experiment::run_workload`] — one (application, graph, system
//!   configuration) point: generates the kernel sequence and simulates
//!   it end to end, returning the execution-time breakdown.
//! * [`sweep::WorkloadSweep`] — one workload across a set of
//!   configurations (the bars of one Figure 5 group), with
//!   normalization against the paper's baselines and best-config
//!   selection.
//! * [`study::Study`] — the full 36-workload × configurations study
//!   behind Figures 5–6 and the Table V accuracy evaluation, runnable
//!   in parallel.
//! * [`adaptive::run_adaptive`] — the paper's §VIII outlook: per-kernel
//!   hardware reconfiguration driven by runtime metrics on flexible
//!   (Spandex-style) hardware.
//!
//! # Example
//!
//! ```
//! use ggs_core::experiment::{run_workload, ExperimentSpec};
//! use ggs_apps::AppKind;
//! use ggs_graph::GraphBuilder;
//!
//! let graph = GraphBuilder::new(512)
//!     .edges((0..511).map(|i| (i, i + 1)))
//!     .symmetric(true)
//!     .build();
//! let spec = ExperimentSpec::default();
//! let stats = run_workload(AppKind::Pr, &graph, "SGR".parse()?, &spec);
//! assert!(stats.total_cycles() > 0);
//! # Ok::<(), ggs_model::decision::ParseConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod error;
pub mod experiment;
pub mod json;
pub mod runner;
pub mod store;
pub mod study;
pub mod sweep;
pub mod trace_cache;

pub use error::GgsError;
pub use experiment::{
    run_workload, run_workload_budgeted, run_workload_traced, ExperimentSpec, ExperimentSpecBuilder,
};
pub use ggs_trace::{MetricsRegistry, Tracer};
pub use runner::{
    run_study, CellFailure, CellReport, CellStatus, Fault, FaultPlan, Journal, RetryPolicy,
    StudyOptions, StudyOutcome,
};
pub use store::{Claim, CompactReport, Store, StoreFaults, StoreLoadReport, StoreSnapshot};
pub use study::{Study, WorkloadReport};
pub use sweep::WorkloadSweep;
pub use trace_cache::{graph_fingerprint, StreamKey, TraceCache, TraceCacheStats, TraceStream};
