//! Runtime-adaptive configuration selection — the paper's stated
//! outlook (§VIII: *"we aim to target our analysis to implement runtime
//! methods that leverage flexible memory systems to achieve optimal
//! performance"*).
//!
//! The static model (§IV) classifies the whole input once; the paper's
//! own misprediction analysis (EML+SSSP, §VI) notes that *"a decision
//! flow similar to our model that used runtime information could
//! consider this and choose the correct configuration"* — frontier-based
//! kernels touch far less than the static working set, and a quiet
//! frontier removes the imbalance the static metric predicts.
//!
//! This module implements that flow on flexible hardware
//! ([`ggs_sim::Simulation::reconfigure`], the Spandex-style mechanism
//! the paper points to): the *propagation* choice stays fixed (it is
//! compiled into the kernel), while the *hardware* half (coherence +
//! consistency) is re-evaluated before every kernel launch from the
//! kernel's actual trace:
//!
//! * **dynamic volume** — the footprint the kernel will actually touch
//!   (distinct lines referenced), classified against the same cache
//!   thresholds as the static metric;
//! * **dynamic imbalance** — Equation 7 evaluated over per-warp *work*
//!   (micro-op counts) instead of static degrees, so an off-frontier
//!   hub no longer counts;
//! * reuse keeps its static class (locality is a property of the graph
//!   wiring, not the frontier).

use std::time::Instant;

use ggs_apps::{AppKind, Workload};
use ggs_graph::Csr;
use ggs_model::decision::push_hardware;
use ggs_model::metrics::kmeans2;
use ggs_model::taxonomy::Traversal;
use ggs_model::{predict_full, GraphProfile, Level, MetricParams};
use ggs_sim::trace::KernelTrace;
use ggs_sim::{ExecStats, HwConfig, Simulation};
use ggs_trace::Tracer;

use crate::error::GgsError;
use crate::experiment::ExperimentSpec;

/// Result of an adaptive run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Final execution statistics.
    pub stats: ExecStats,
    /// The hardware point chosen for each kernel, in launch order.
    pub schedule: Vec<HwConfig>,
    /// The static (whole-input) configuration the propagation choice
    /// came from.
    pub static_config: ggs_model::SystemConfig,
}

/// Classifies one kernel's runtime profile: `(volume class, imbalance
/// class)` from the trace it is about to launch.
pub fn kernel_classes(
    kernel: &KernelTrace,
    params: &MetricParams,
    line_bytes: u32,
) -> (Level, Level) {
    // Dynamic volume: distinct cache lines the kernel touches.
    let mut lines: Vec<u64> = Vec::new();
    for t in 0..kernel.num_threads() {
        for op in kernel.thread(t) {
            if let Some(addr) = op.address() {
                lines.push(addr / line_bytes as u64);
            }
        }
    }
    lines.sort_unstable();
    lines.dedup();
    let volume_kb =
        (lines.len() as u64 * line_bytes as u64) as f64 / 1024.0 / params.num_sms as f64;
    let volume = Level::classify(volume_kb, params.volume_low_kb(), params.volume_high_kb());

    // Dynamic imbalance: Equation 7 over per-warp op counts.
    let tb = params.tb_size as u64;
    let warp = params.warp_size as u64;
    let blocks = kernel.num_threads().div_ceil(tb);
    let mut marked = 0u64;
    let mut maxes: Vec<f64> = Vec::new();
    for b in 0..blocks {
        maxes.clear();
        let lo = b * tb;
        let hi = ((b + 1) * tb).min(kernel.num_threads());
        let mut v = lo;
        while v < hi {
            let w_hi = (v + warp).min(hi);
            let m = (v..w_hi).map(|t| kernel.thread(t).len()).max().unwrap_or(0);
            maxes.push(m as f64);
            v = w_hi;
        }
        let (c_lo, c_hi) = kmeans2(&maxes);
        if c_hi - c_lo > params.kmeans_gap {
            marked += 1;
        }
    }
    let imbalance = if blocks == 0 {
        0.0
    } else {
        marked as f64 / blocks as f64
    };
    let imbalance = Level::classify(imbalance, params.imb_low, params.imb_high);
    (volume, imbalance)
}

/// Runs `app` on `graph` with per-kernel hardware adaptation.
///
/// The propagation variant comes from the static full-design-space
/// prediction; before each kernel launch the hardware half is
/// re-derived from the kernel's runtime profile (see module docs) and
/// applied via [`Simulation::reconfigure`]. Pull workloads keep `G0`
/// (no atomics to optimize); dynamic (CC) workloads keep `D1`
/// (§IV-A4).
///
/// Convenience wrapper over [`run_adaptive_budgeted`] without
/// instrumentation or an extra deadline; panics if the spec's budget
/// is breached (the default spec budget is unlimited).
pub fn run_adaptive(app: AppKind, graph: &Csr, spec: &ExperimentSpec) -> AdaptiveOutcome {
    run_adaptive_budgeted(app, graph, spec, Tracer::off(), None).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible adaptive run with the same budget/deadline/tracer
/// semantics as [`crate::run_workload_budgeted`]: the spec's
/// [`ggs_sim::SimBudget`] is enforced, an explicit `deadline`
/// overrides the budget's own, and a breach is reported as
/// [`GgsError::Budget`] / [`GgsError::Deadline`] instead of running
/// unbounded. Every simulated event is emitted through `tracer`
/// ([`Tracer::off`] disables instrumentation at zero cost).
pub fn run_adaptive_budgeted(
    app: AppKind,
    graph: &Csr,
    spec: &ExperimentSpec,
    tracer: Tracer<'_>,
    deadline: Option<Instant>,
) -> Result<AdaptiveOutcome, GgsError> {
    let params = spec.metric_params();
    let static_profile = GraphProfile::measure(graph, &params);
    let algo = app.algo_profile();
    let static_config = predict_full(&algo, &static_profile);

    let weighted;
    let graph = if app.needs_weights() && !graph.is_weighted() {
        weighted = graph.clone().with_hashed_weights(64);
        &weighted
    } else {
        graph
    };

    let mut budget = spec.budget;
    budget.deadline = deadline.or(budget.deadline);
    let mut sim = Simulation::builder(spec.params.clone(), static_config.hw())
        .tracer(tracer)
        .budget(budget)
        .build();
    let started = Instant::now();
    let mut schedule = Vec::new();
    let line_bytes = spec.params.line_bytes;
    let adapt = algo.traversal == Traversal::Static
        && static_config.propagation == ggs_model::Propagation::Push;

    Workload::new(app, graph).generate(
        static_config.propagation,
        spec.params.tb_size,
        &mut |kernel| {
            if sim.budget_exhausted() {
                return;
            }
            let hw = if adapt {
                let (volume, imbalance) = kernel_classes(kernel, &params, line_bytes);
                let dynamic_profile =
                    GraphProfile::from_classes(volume, static_profile.reuse_class, imbalance);
                push_hardware(&dynamic_profile)
            } else {
                static_config.hw()
            };
            sim.reconfigure(hw);
            schedule.push(hw);
            sim.run_kernel(kernel);
        },
    );

    match sim.budget_breach() {
        Some(ggs_sim::BudgetBreach::Deadline { .. }) => {
            let limit_ms = deadline
                .map(|d| d.saturating_duration_since(started).as_millis() as u64)
                .unwrap_or(0);
            Err(GgsError::Deadline { limit_ms })
        }
        Some(breach) => Err(GgsError::Budget(breach)),
        None => Ok(AdaptiveOutcome {
            stats: sim.finish(),
            schedule,
            static_config,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::synth::{GraphPreset, SynthConfig};
    use ggs_graph::GraphBuilder;
    use ggs_sim::trace::MicroOp;

    #[test]
    fn kernel_classes_detect_imbalance() {
        let params = MetricParams::default();
        // 8 warps; one warp has a 200-op lane, the rest 4 ops.
        let mut threads = vec![vec![MicroOp::compute(1); 4]; 256];
        threads[0] = vec![MicroOp::compute(1); 200];
        let k = KernelTrace::new(threads, 256);
        let (_, imb) = kernel_classes(&k, &params, 64);
        assert_eq!(imb, Level::High);

        let uniform = KernelTrace::new(vec![vec![MicroOp::compute(1); 4]; 256], 256);
        let (_, imb) = kernel_classes(&uniform, &params, 64);
        assert_eq!(imb, Level::Low);
    }

    #[test]
    fn kernel_classes_measure_touched_footprint() {
        let params = MetricParams::default();
        // 16 threads touching 16 distinct lines: tiny volume.
        let k = KernelTrace::new(
            (0..16u64).map(|t| vec![MicroOp::load(t * 64)]).collect(),
            256,
        );
        let (vol, _) = kernel_classes(&k, &params, 64);
        assert_eq!(vol, Level::Low);
    }

    #[test]
    fn adaptive_runs_every_app() {
        let spec = ExperimentSpec::at_scale(0.02);
        let g = SynthConfig::preset(GraphPreset::Dct).scale(0.02).generate();
        for app in AppKind::ALL {
            let out = run_adaptive(app, &g, &spec);
            assert!(out.stats.total_cycles() > 0, "{app}");
            assert!(!out.schedule.is_empty(), "{app}");
        }
    }

    #[test]
    fn schedule_matches_per_kernel_reclassification() {
        // The schedule must be exactly what re-running the classifier
        // on each kernel trace yields (internal consistency of the
        // adaptive loop).
        let spec = ExperimentSpec::at_scale(0.05);
        let g = SynthConfig::preset(GraphPreset::Raj)
            .scale(0.05)
            .generate()
            .with_hashed_weights(64);
        let params = spec.metric_params();
        let static_profile = GraphProfile::measure(&g, &params);
        let out = run_adaptive(AppKind::Sssp, &g, &spec);
        assert_eq!(out.static_config.propagation, ggs_model::Propagation::Push);

        let mut expected = Vec::new();
        Workload::new(AppKind::Sssp, &g).generate(
            out.static_config.propagation,
            spec.params.tb_size,
            &mut |kernel| {
                let (vol, imb) = kernel_classes(kernel, &params, spec.params.line_bytes);
                let profile = GraphProfile::from_classes(vol, static_profile.reuse_class, imb);
                expected.push(push_hardware(&profile));
            },
        );
        assert_eq!(out.schedule, expected);
    }

    #[test]
    fn low_volume_balanced_kernel_stays_at_drf1() {
        // A uniform kernel touching a tiny footprint classifies L/L and
        // keeps DRF1 even on a high-reuse graph (Figure 4's else arm).
        let params = MetricParams::default();
        let k = KernelTrace::new(
            (0..512u64)
                .map(|t| vec![MicroOp::atomic((t % 64) * 4)])
                .collect(),
            256,
        );
        let (vol, imb) = kernel_classes(&k, &params, 64);
        assert_eq!((vol, imb), (Level::Low, Level::Low));
        let profile = GraphProfile::from_classes(vol, Level::High, imb);
        let hw = push_hardware(&profile);
        assert_eq!(hw.consistency, ggs_sim::ConsistencyModel::Drf1);
        assert_eq!(hw.coherence, ggs_sim::CoherenceKind::DeNovo);
    }

    #[test]
    fn pull_workloads_do_not_adapt() {
        // A high-reuse, low-imbalance graph pushes symmetric apps to
        // pull; pull has no atomics, so the schedule is constant G0.
        // The prediction is asserted first so this test fails (instead
        // of silently passing) if the predictor regresses to push.
        let spec = ExperimentSpec::at_scale(0.05);
        let g = GraphBuilder::new(4096)
            .edges((0..4095).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let out = run_adaptive(AppKind::Mis, &g, &spec);
        assert_eq!(out.static_config.propagation, ggs_model::Propagation::Pull);
        assert!(!out.schedule.is_empty());
        assert!(out.schedule.iter().all(|hw| *hw == out.static_config.hw()));
    }

    #[test]
    fn adaptive_run_trips_cycle_budget() {
        // Regression: run_adaptive once bypassed the Simulation builder
        // and silently dropped the spec's SimBudget. A tiny cycle cap
        // must surface as a typed budget error, not an unbounded run.
        let spec = ExperimentSpec::builder()
            .scale(0.02)
            .max_sim_cycles(1)
            .build()
            .unwrap();
        let g = SynthConfig::preset(GraphPreset::Dct).scale(0.02).generate();
        let err = run_adaptive_budgeted(AppKind::Pr, &g, &spec, Tracer::off(), None).unwrap_err();
        assert!(matches!(err, GgsError::Budget(_)), "{err}");
        assert!(err.to_string().contains("cycle budget"), "{err}");
    }

    #[test]
    fn adaptive_run_honors_wall_clock_deadline() {
        let spec = ExperimentSpec::at_scale(0.02);
        let g = SynthConfig::preset(GraphPreset::Dct).scale(0.02).generate();
        let deadline = Instant::now() - std::time::Duration::from_millis(1);
        let err = run_adaptive_budgeted(AppKind::Pr, &g, &spec, Tracer::off(), Some(deadline))
            .unwrap_err();
        assert!(matches!(err, GgsError::Deadline { .. }), "{err}");
    }
}
