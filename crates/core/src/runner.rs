//! Fault-isolated, checkpointed execution of the full study.
//!
//! [`crate::study::Study::run_with_metrics`] fans the 36-workload ×
//! configuration grid across worker threads; without protection a
//! single panicking cell, a non-converging configuration, or a hung
//! simulation kills the whole study and discards hours of completed
//! results. This module wraps every *cell* (one application × graph ×
//! configuration point) in the standard long-job robustness kit:
//!
//! * **Isolation** — each cell runs behind
//!   [`std::panic::catch_unwind`]; a panic becomes a typed
//!   [`CellFailure`] recorded in the failure report instead of
//!   poisoning the pool.
//! * **Watchdogs** — the spec's [`ggs_sim::SimBudget`] (kernel /
//!   simulated-cycle limits) plus an optional wall-clock deadline per
//!   cell; breached cells are recorded as [`CellStatus::Timeout`] and
//!   the study continues.
//! * **Retry** — cells failing with a retryable error (I/O) are retried
//!   with bounded exponential backoff; deterministic failures (panics,
//!   budget breaches, bad specs) fail fast.
//! * **Checkpoint/resume** — completed cells are appended to a JSONL
//!   [`Journal`] as they finish; a later run pointed at the journal
//!   skips them ([`CellStatus::Skipped`]) and re-runs only what is
//!   missing, reproducing the uninterrupted results byte for byte.
//!
//! The failure taxonomy, journal format, and resume workflow are
//! documented in `docs/robustness.md`.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ggs_apps::AppKind;
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{predict_full, predict_partial, GraphProfile, SystemConfig};
use ggs_sim::trace::{KernelTrace, MicroOp};
use ggs_sim::{Simulation, StallClass};
use ggs_trace::{MetricsRegistry, TraceEvent, TraceSink, Tracer};

use crate::error::GgsError;
use crate::experiment::{
    produce_trace_stream, run_stream_budgeted, run_workload_budgeted, ExperimentSpec,
};
use crate::json::{self, Value};
use crate::store::{versioned_spec_hash, Claim, Store, StoreLoadReport};
use crate::study::{ConfigSet, ResultRow, Study, WorkloadReport};
use crate::sweep::{baseline_config, figure5_configs};
use crate::trace_cache::{graph_fingerprint, StreamKey, TraceCache, TraceCacheStats};

/// Terminal state of one study cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell simulated successfully (possibly after retries).
    Ok,
    /// The cell panicked or failed with a non-retryable error.
    Failed,
    /// The cell tripped a watchdog (budget or wall-clock deadline).
    Timeout,
    /// The cell was restored from a resume journal without re-running.
    Skipped,
}

impl CellStatus {
    /// Stable lower-case name used in reports, JSON, and trace events.
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::Timeout => "timeout",
            CellStatus::Skipped => "skipped",
        }
    }

    /// Parses a name produced by [`CellStatus::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ok" => Some(CellStatus::Ok),
            "failed" => Some(CellStatus::Failed),
            "timeout" => Some(CellStatus::Timeout),
            "skipped" => Some(CellStatus::Skipped),
            _ => None,
        }
    }
}

impl fmt::Display for CellStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cell outcome record: the structured failure report the study
/// emits alongside its (possibly partial) results.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Application mnemonic.
    pub app: String,
    /// Graph mnemonic.
    pub graph: String,
    /// Configuration code.
    pub config: String,
    /// Terminal state.
    pub status: CellStatus,
    /// Human-readable detail: the error/panic message, the breached
    /// budget, or the resume provenance. Empty for clean `Ok` cells.
    pub detail: String,
    /// Execution attempts made (0 for cells restored from a journal).
    pub attempts: u32,
}

impl CellReport {
    /// The `APP/GRAPH/CONFIG` key identifying this cell.
    pub fn key(&self) -> String {
        cell_key(&self.app, &self.graph, &self.config)
    }
}

/// A panic caught at a cell boundary, converted to a typed value.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Application mnemonic of the panicking cell.
    pub app: String,
    /// Graph mnemonic of the panicking cell.
    pub graph: String,
    /// Configuration code of the panicking cell.
    pub config: String,
    /// The panic payload, downcast to a string when possible.
    pub payload: String,
}

impl CellFailure {
    /// Converts a [`catch_unwind`] payload into a typed failure.
    pub fn from_payload(
        app: &str,
        graph: &str,
        config: &str,
        payload: Box<dyn std::any::Any + Send>,
    ) -> Self {
        let text = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        Self {
            app: app.to_owned(),
            graph: graph.to_owned(),
            config: config.to_owned(),
            payload: text,
        }
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{} panicked: {}",
            self.app, self.graph, self.config, self.payload
        )
    }
}

impl From<CellFailure> for GgsError {
    fn from(failure: CellFailure) -> Self {
        GgsError::CellPanic {
            payload: failure.payload,
        }
    }
}

/// A deliberately injected failure mode, for fault-injection tests and
/// the `repro study --inject-fault` smoke job.
#[derive(Debug)]
pub enum Fault {
    /// The cell panics on every attempt (deterministic; fails fast).
    Panic,
    /// The cell spins feeding kernels forever; only a watchdog (budget
    /// or deadline) can stop it. An internal failsafe caps the spin
    /// when no watchdog is configured, so tests cannot truly hang.
    Hang,
    /// The first `remaining` attempts fail with a transient I/O error,
    /// after which the cell runs normally (exercises the retry path).
    TransientIo {
        /// Failures left to inject (decremented per attempt).
        remaining: AtomicU32,
    },
}

/// Which cells to sabotage, keyed by `APP/GRAPH/CONFIG`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    cells: BTreeMap<String, Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `fault` for the cell `app/graph/config`.
    pub fn inject(mut self, app: &str, graph: &str, config: &str, fault: Fault) -> Self {
        self.cells.insert(cell_key(app, graph, config), fault);
        self
    }

    /// Parses a CLI fault spec: `APP/GRAPH/CONFIG[=panic|hang|io]`
    /// (default `panic`), e.g. `PR/RMAT/SGR=hang`.
    pub fn parse_spec(mut self, spec: &str) -> Result<Self, GgsError> {
        let (key, kind) = match spec.split_once('=') {
            Some((key, kind)) => (key, kind),
            None => (spec, "panic"),
        };
        if key.split('/').count() != 3 {
            return Err(GgsError::InvalidSpec(format!(
                "fault cell must be APP/GRAPH/CONFIG, got {key:?}"
            )));
        }
        let fault = match kind {
            "panic" => Fault::Panic,
            "hang" => Fault::Hang,
            "io" => Fault::TransientIo {
                remaining: AtomicU32::new(2),
            },
            other => {
                return Err(GgsError::InvalidSpec(format!(
                    "unknown fault kind {other:?} (expected panic, hang, or io)"
                )))
            }
        };
        self.cells.insert(key.to_owned(), fault);
        Ok(self)
    }

    /// Whether no faults are registered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn get(&self, key: &str) -> Option<&Fault> {
        self.cells.get(key)
    }
}

/// Bounded-backoff retry policy for retryable cell failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Deterministic jitter seed. `None` keeps the pure exponential
    /// schedule; `Some(seed)` spreads each sleep over the upper half of
    /// its exponential slot so concurrent processes retrying the same
    /// contended resource (the store lock) do not synchronize into a
    /// thundering herd. The jitter is a pure function of
    /// `(seed, attempt)`, so a given policy is exactly reproducible.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep after the `attempt`-th failure (1-based):
    /// `base · 2^(attempt-1)`, capped at `max_backoff`. With a
    /// [`RetryPolicy::jitter_seed`], the sleep lands deterministically
    /// in `(slot/2, slot]` instead of exactly on the slot boundary.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self.base_backoff.saturating_mul(1u32 << exp);
        let slot = raw.min(self.max_backoff);
        match self.jitter_seed {
            None => slot,
            Some(seed) => {
                // splitmix64 of (seed, attempt): cheap, stateless, and
                // well distributed even for sequential attempt numbers.
                let mut z = seed
                    .wrapping_add(u64::from(attempt))
                    .wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let frac = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                slot - slot.mul_f64(frac * 0.5)
            }
        }
    }
}

/// One completed-cell record of a resume [`Journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Hash of the spec + config set the cell was run under.
    pub spec_hash: String,
    /// Application mnemonic.
    pub app: String,
    /// Graph mnemonic.
    pub graph: String,
    /// Configuration code.
    pub config: String,
    /// The cell's result row (cycles + stall fractions).
    pub row: ResultRow,
}

/// An append-only JSONL checkpoint of completed cells.
///
/// Each line is one object:
/// `{"app":"PR","config":"SGR","fractions":[..5 floats..],"graph":"RMAT",`
/// `"spec_hash":"<16 hex>","total_cycles":N}`. Lines are written (and
/// flushed) as cells finish, so a killed run leaves at worst one
/// truncated final line — which [`Journal::load`] tolerates by skipping
/// anything that does not parse.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    /// Entries in file order.
    pub entries: Vec<JournalEntry>,
    /// Malformed or truncated lines skipped during [`Journal::load`] —
    /// surfaced (rather than silently dropped) so corruption is
    /// visible in the `repro study` summary (`N entries, M skipped`).
    pub skipped: usize,
}

impl Journal {
    /// Loads a journal, skipping malformed or truncated lines (a study
    /// killed mid-write is the expected producer). Skipped lines are
    /// counted on [`Journal::skipped`]. Only a failure to read the
    /// file at all is an error.
    pub fn load(path: &Path) -> Result<Self, GgsError> {
        let file = std::fs::File::open(path)?;
        let mut entries = Vec::new();
        let mut skipped = 0usize;
        for line in BufReader::new(file).lines() {
            let line = line?;
            match parse_journal_line(&line) {
                Some(entry) => entries.push(entry),
                // Blank separator lines are not corruption.
                None if line.trim().is_empty() => {}
                None => skipped += 1,
            }
        }
        Ok(Self { entries, skipped })
    }

    /// The completed cells recorded under `spec_hash`, keyed by
    /// `APP/GRAPH/CONFIG`. Later duplicates win (a cell re-run by a
    /// resumed study overwrites its older record).
    pub fn completed_for(&self, spec_hash: &str) -> BTreeMap<String, ResultRow> {
        self.entries
            .iter()
            .filter(|e| e.spec_hash == spec_hash)
            .map(|e| (cell_key(&e.app, &e.graph, &e.config), e.row.clone()))
            .collect()
    }
}

fn parse_journal_line(line: &str) -> Option<JournalEntry> {
    let v = json::parse(line).ok()?;
    let s = |key: &str| v.get(key).and_then(Value::as_str).map(str::to_owned);
    let fracs = v.get("fractions").and_then(Value::as_array)?;
    if fracs.len() != 5 {
        return None;
    }
    let mut fractions = [0.0f64; 5];
    for (slot, f) in fractions.iter_mut().zip(fracs) {
        *slot = f.as_f64()?;
    }
    Some(JournalEntry {
        spec_hash: s("spec_hash")?,
        app: s("app")?,
        graph: s("graph")?,
        config: s("config")?.clone(),
        row: ResultRow {
            config: s("config")?,
            total_cycles: v.get("total_cycles").and_then(Value::as_u64)?,
            fractions,
        },
    })
}

fn journal_line(spec_hash: &str, app: &str, graph: &str, row: &ResultRow) -> String {
    let fractions = row.fractions.iter().map(|&f| Value::Number(f)).collect();
    Value::Object(BTreeMap::from([
        ("spec_hash".to_owned(), Value::String(spec_hash.to_owned())),
        ("app".to_owned(), Value::String(app.to_owned())),
        ("graph".to_owned(), Value::String(graph.to_owned())),
        ("config".to_owned(), Value::String(row.config.clone())),
        (
            "total_cycles".to_owned(),
            Value::Number(row.total_cycles as f64),
        ),
        ("fractions".to_owned(), Value::Array(fractions)),
    ]))
    .to_string_compact()
}

/// Stable 64-bit FNV-1a hash of the experiment spec and config set,
/// identifying which run a journal entry belongs to. (The std hasher is
/// not guaranteed stable across releases; FNV-1a is.)
pub fn spec_hash(spec: &ExperimentSpec, configs: ConfigSet) -> String {
    let text = format!("{spec:?}|{configs:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Options controlling a fault-tolerant study run.
#[derive(Debug)]
pub struct StudyOptions {
    /// Configuration set per workload.
    pub configs: ConfigSet,
    /// Worker threads (0 is rejected as an invalid spec).
    pub threads: usize,
    /// Retry policy for retryable cell failures.
    pub retry: RetryPolicy,
    /// Wall-clock deadline per cell attempt, if any.
    pub cell_deadline: Option<Duration>,
    /// Deliberate faults to inject (tests, smoke jobs).
    pub faults: FaultPlan,
    /// Where to append the checkpoint journal, if anywhere.
    pub journal_path: Option<PathBuf>,
    /// A journal from a previous (possibly killed) run; cells recorded
    /// there under the same spec hash are skipped.
    pub resume_from: Option<PathBuf>,
    /// A shared crash-safe result store (see `crate::store`): each cell
    /// is looked up (and leased) before simulating and published after,
    /// so concurrent runners sharing the store partition the sweep
    /// without simulating any cell twice.
    pub store: Option<Store>,
    /// Store lease time-to-live: how long a claimed-but-unfinished cell
    /// stays reserved before other runners may reclaim it (bounds the
    /// damage of a runner that dies holding leases).
    pub lease_ttl: Duration,
    /// Byte budget of the study-wide kernel-trace cache
    /// ([`TraceCache`]): cells sharing `(app, graph, direction,
    /// tb_size)` build their kernel stream once and the rest replay it,
    /// so a 12-configuration grid runs ~6 cells per stream build. `0`
    /// disables the cache (every cell regenerates its own stream).
    /// Timing results are bit-identical either way — the stream is a
    /// pure function of the key.
    pub trace_cache_bytes: u64,
}

impl Default for StudyOptions {
    fn default() -> Self {
        Self {
            configs: ConfigSet::Figure5,
            threads: 1,
            retry: RetryPolicy::default(),
            cell_deadline: None,
            faults: FaultPlan::new(),
            journal_path: None,
            resume_from: None,
            store: None,
            lease_ttl: Duration::from_secs(30),
            trace_cache_bytes: 256 << 20,
        }
    }
}

impl StudyOptions {
    /// Options matching the legacy `Study::run_with_metrics` behavior:
    /// `configs` over `threads` workers, no watchdogs, no journal.
    pub fn new(configs: ConfigSet, threads: usize) -> Self {
        Self {
            configs,
            threads,
            ..Self::default()
        }
    }
}

/// The result of a fault-tolerant study run.
#[derive(Debug)]
pub struct StudyOutcome {
    /// The (possibly partial) study: reports cover every workload with
    /// at least one surviving cell; `study.failures` lists the cells
    /// that failed or timed out.
    pub study: Study,
    /// Every cell's terminal record, in job order (graph-major, then
    /// app, then configuration) — the structured per-cell report.
    pub cells: Vec<CellReport>,
    /// The first journal write error, if checkpointing degraded. The
    /// study itself still completes (graceful degradation).
    pub journal_error: Option<GgsError>,
    /// Resume-journal load summary `(entries, skipped_lines)`, if a
    /// resume journal was read — skipped lines are corruption made
    /// visible (`N entries, M skipped` in the study summary).
    pub journal_loaded: Option<(usize, usize)>,
    /// What the store scan observed at study start (record count,
    /// corrupt spans), if a store was attached.
    pub store_report: Option<StoreLoadReport>,
    /// Trace-cache traffic totals, when the cache was enabled (see
    /// [`StudyOptions::trace_cache_bytes`]).
    pub trace_cache: Option<TraceCacheStats>,
}

impl StudyOutcome {
    /// Cell totals `(ok, failed, timeout, skipped)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for cell in &self.cells {
            match cell.status {
                CellStatus::Ok => c.0 += 1,
                CellStatus::Failed => c.1 += 1,
                CellStatus::Timeout => c.2 += 1,
                CellStatus::Skipped => c.3 += 1,
            }
        }
        c
    }
}

/// One schedulable cell.
#[derive(Debug, Clone, Copy)]
struct Cell {
    graph_index: usize,
    app: AppKind,
    config: SystemConfig,
}

/// What a worker records for one finished cell.
#[derive(Debug)]
struct CellOutcome {
    report: CellReport,
    row: Option<ResultRow>,
}

struct JournalWriter {
    state: Mutex<(std::fs::File, Option<std::io::Error>)>,
}

impl JournalWriter {
    fn open(path: &Path) -> Result<Self, GgsError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self {
            state: Mutex::new((file, None)),
        })
    }

    /// Appends and flushes one line; the first error is latched and
    /// later appends become no-ops (the run continues unjournaled).
    fn append(&self, line: &str) {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (file, error) = &mut *guard;
        if error.is_some() {
            return;
        }
        let result = file
            .write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush());
        if let Err(e) = result {
            *error = Some(e);
        }
    }

    fn take_error(&self) -> Option<std::io::Error> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .1
            .take()
    }
}

fn cell_key(app: &str, graph: &str, config: &str) -> String {
    format!("{app}/{graph}/{config}")
}

/// Runs the study under `spec` with full fault tolerance: panics are
/// isolated per cell, watchdogs convert runaways into timeouts, retryable
/// errors are retried with bounded backoff, and completed cells are
/// checkpointed to (and resumed from) a JSONL journal.
///
/// Returns `Err` only for setup failures (zero threads, an unreadable
/// resume journal); individual cell failures never abort the run — they
/// are reported in [`StudyOutcome::cells`] and `study.failures`.
pub fn run_study(
    spec: &ExperimentSpec,
    options: &StudyOptions,
    metrics: &MetricsRegistry,
    sink: &dyn TraceSink,
) -> Result<StudyOutcome, GgsError> {
    if options.threads == 0 {
        return Err(GgsError::InvalidSpec(
            "need at least one worker thread".to_owned(),
        ));
    }
    let epoch = Instant::now();
    let hash = spec_hash(spec, options.configs);
    let store_hash = versioned_spec_hash(&hash);
    let mut journal_loaded = None;
    let resumed: BTreeMap<String, ResultRow> = match &options.resume_from {
        Some(path) => {
            let loaded = Journal::load(path)?;
            journal_loaded = Some((loaded.entries.len(), loaded.skipped));
            loaded.completed_for(&hash)
        }
        None => BTreeMap::new(),
    };
    let journal = match &options.journal_path {
        Some(path) => Some(JournalWriter::open(path)?),
        None => None,
    };
    let store_report = match &options.store {
        Some(store) => {
            // One up-front scan: surface pre-existing corruption (the
            // per-cell claims re-read under the lock as they go).
            let snapshot = store.load()?;
            if sink.enabled() {
                for span in &snapshot.report.corrupt {
                    sink.emit(&TraceEvent::StoreCorruption {
                        offset: span.offset,
                        bytes: span.bytes,
                        at_us: epoch.elapsed().as_micros() as u64,
                    });
                }
            }
            Some(snapshot.report)
        }
        None => None,
    };

    let metric_params = spec.metric_params();
    // Every graph is built exactly once per study and shared by handle:
    // workers borrow the `Arc<Csr>`, and the content fingerprint keys
    // the trace cache. The `graph_build` events make the once-per-study
    // invariant testable (one event per preset, never per cell).
    let graphs: Vec<(GraphPreset, Arc<ggs_graph::Csr>, GraphProfile, u64)> = {
        let _phase = metrics.phase("generate_inputs");
        GraphPreset::ALL
            .into_iter()
            .map(|p| {
                let g = SynthConfig::preset(p)
                    .scale(spec.scale)
                    .generate()
                    .with_hashed_weights(64);
                let profile = GraphProfile::measure(&g, &metric_params);
                let fp = graph_fingerprint(&g);
                if sink.enabled() {
                    sink.emit(&TraceEvent::GraphBuild {
                        graph: p.mnemonic().to_owned(),
                        vertices: u64::from(g.num_vertices()),
                        edges: g.num_edges(),
                        at_us: epoch.elapsed().as_micros() as u64,
                    });
                }
                (p, Arc::new(g), profile, fp)
            })
            .collect()
    };
    let trace_cache =
        (options.trace_cache_bytes > 0).then(|| TraceCache::new(options.trace_cache_bytes));

    // Cell list: graph-major, then app, then configuration — the same
    // order the aggregate reports are emitted in.
    let cells: Vec<Cell> = (0..graphs.len())
        .flat_map(|graph_index| {
            AppKind::ALL.into_iter().flat_map(move |app| {
                let configs = match options.configs {
                    ConfigSet::Figure5 => figure5_configs(app),
                    ConfigSet::Full => SystemConfig::all_for(app.algo_profile().traversal),
                };
                configs.into_iter().map(move |config| Cell {
                    graph_index,
                    app,
                    config,
                })
            })
        })
        .collect();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<CellOutcome>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());

    {
        let _phase = metrics.phase("simulate");
        std::thread::scope(|scope| {
            for _ in 0..options.threads.min(cells.len()).max(1) {
                scope.spawn(|| {
                    let local = MetricsRegistry::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        let cell = cells[i];
                        let (preset, graph, _, graph_fp) = &graphs[cell.graph_index];
                        let ctx = ReuseCtx {
                            cache: trace_cache.as_deref(),
                            graph_fp: *graph_fp,
                            epoch,
                            sink,
                        };
                        let outcome = run_cell(
                            cell,
                            preset.mnemonic(),
                            graph.as_ref(),
                            spec,
                            options,
                            &resumed,
                            &store_hash,
                            ctx,
                        );
                        if outcome.report.status == CellStatus::Ok {
                            local.add("configs_simulated", 1);
                            if let Some(row) = &outcome.row {
                                local.observe("config_total_cycles", row.total_cycles);
                                if let Some(j) = &journal {
                                    j.append(&journal_line(
                                        &hash,
                                        &outcome.report.app,
                                        &outcome.report.graph,
                                        row,
                                    ));
                                }
                            }
                        }
                        let mut slots = results.lock().unwrap_or_else(|e| e.into_inner());
                        slots[i] = Some(outcome);
                    }
                    metrics.merge(&local);
                });
            }
        });
    }

    let _phase = metrics.phase("aggregate");
    let slots = results.into_inner().unwrap_or_else(|e| e.into_inner());
    let outcomes: Vec<CellOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                // A worker died without recording this cell (should be
                // unreachable given per-cell catch_unwind, but degrade
                // to a report rather than poisoning the aggregate).
                let cell = cells[i];
                CellOutcome {
                    report: CellReport {
                        app: cell.app.mnemonic().to_owned(),
                        graph: graphs[cell.graph_index].0.mnemonic().to_owned(),
                        config: cell.config.code(),
                        status: CellStatus::Failed,
                        detail: "worker terminated before completing this cell".to_owned(),
                        attempts: 0,
                    },
                    row: None,
                }
            })
        })
        .collect();
    let study = aggregate(spec, &graphs, &cells, &outcomes);
    let reports_out: Vec<CellReport> = outcomes.into_iter().map(|o| o.report).collect();

    metrics.add("workloads_simulated", study.reports.len() as u64);
    metrics.add("study_workloads", study.reports.len() as u64);

    let journal_error = journal
        .as_ref()
        .and_then(JournalWriter::take_error)
        .map(GgsError::Io);
    Ok(StudyOutcome {
        study,
        cells: reports_out,
        journal_error,
        journal_loaded,
        store_report,
        trace_cache: trace_cache.as_ref().map(|c| c.stats()),
    })
}

/// Shared per-cell context of the sweep-level reuse layer: the
/// study-wide trace cache plus what a cell needs to key lookups and
/// timestamp reuse events.
#[derive(Clone, Copy)]
struct ReuseCtx<'a> {
    cache: Option<&'a TraceCache>,
    graph_fp: u64,
    epoch: Instant,
    sink: &'a dyn TraceSink,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    cell: Cell,
    graph_name: &str,
    graph: &ggs_graph::Csr,
    spec: &ExperimentSpec,
    options: &StudyOptions,
    resumed: &BTreeMap<String, ResultRow>,
    store_hash: &str,
    ctx: ReuseCtx<'_>,
) -> CellOutcome {
    let app = cell.app.mnemonic().to_owned();
    let config = cell.config.code();
    let key = cell_key(&app, graph_name, &config);
    let start_us = ctx.epoch.elapsed().as_micros() as u64;
    let traced = ctx.sink.enabled();
    if traced {
        ctx.sink.emit(&TraceEvent::CellStart {
            app: app.clone(),
            graph: graph_name.to_owned(),
            config: config.clone(),
            start_us,
        });
    }

    let outcome = if let Some(row) = resumed.get(&key) {
        CellOutcome {
            report: CellReport {
                app: app.clone(),
                graph: graph_name.to_owned(),
                config: config.clone(),
                status: CellStatus::Skipped,
                detail: "resumed from journal".to_owned(),
                attempts: 0,
            },
            row: Some(row.clone()),
        }
    } else if let Some(store) = &options.store {
        claim_and_execute(
            store, store_hash, cell, &app, graph_name, &config, graph, spec, options, ctx,
        )
    } else {
        execute_with_retries(cell, &app, graph_name, &config, graph, spec, options, ctx)
    };

    if traced {
        ctx.sink.emit(&TraceEvent::CellFinish {
            app,
            graph: graph_name.to_owned(),
            config,
            status: outcome.report.status.name(),
            attempts: outcome.report.attempts,
            start_us,
            dur_us: ctx.epoch.elapsed().as_micros() as u64 - start_us,
        });
    }
    outcome
}

/// Store-mediated cell execution: resolve the cell through
/// [`Store::try_claim`] — an existing result short-circuits to
/// [`CellStatus::Skipped`] (a *store hit*: zero simulation), a live
/// foreign lease is polled until its owner publishes or it expires,
/// and a successful claim falls through to normal execution followed
/// by [`Store::publish`] (or a lease release on failure, so peers need
/// not wait out the TTL).
#[allow(clippy::too_many_arguments)]
fn claim_and_execute(
    store: &Store,
    store_hash: &str,
    cell: Cell,
    app: &str,
    graph_name: &str,
    config: &str,
    graph: &ggs_graph::Csr,
    spec: &ExperimentSpec,
    options: &StudyOptions,
    ctx: ReuseCtx<'_>,
) -> CellOutcome {
    let key = cell_key(app, graph_name, config);
    let wait_started = Instant::now();
    // A live foreign lease resolves itself: its owner either publishes
    // a result (Done) or the lease expires and becomes reclaimable.
    // Twice the TTL is the failsafe against pathological clocks.
    let wait_limit = options
        .lease_ttl
        .saturating_mul(2)
        .max(Duration::from_millis(100));
    let mut claim_attempts = 0u32;
    loop {
        match store.try_claim(store_hash, &key, options.lease_ttl) {
            Ok(Claim::Done(row)) => {
                if ctx.sink.enabled() {
                    ctx.sink.emit(&TraceEvent::StoreHit {
                        key: key.clone(),
                        at_us: ctx.epoch.elapsed().as_micros() as u64,
                    });
                }
                return CellOutcome {
                    report: CellReport {
                        app: app.to_owned(),
                        graph: graph_name.to_owned(),
                        config: config.to_owned(),
                        status: CellStatus::Skipped,
                        detail: "store hit".to_owned(),
                        attempts: 0,
                    },
                    row: Some(row),
                };
            }
            Ok(Claim::Claimed) => break,
            Ok(Claim::Busy(lease)) => {
                if wait_started.elapsed() >= wait_limit {
                    return failed_cell(
                        app,
                        graph_name,
                        config,
                        format!(
                            "store lease on {key} held by pid {} beyond the {} ms failsafe",
                            lease.owner,
                            wait_limit.as_millis()
                        ),
                        claim_attempts,
                    );
                }
                std::thread::sleep(Duration::from_millis(20).min(wait_limit));
            }
            Err(e) => {
                claim_attempts += 1;
                if e.is_retryable() && claim_attempts < options.retry.max_attempts.max(1) {
                    std::thread::sleep(options.retry.backoff(claim_attempts));
                    continue;
                }
                return failed_cell(app, graph_name, config, e.to_string(), claim_attempts);
            }
        }
    }
    if ctx.sink.enabled() {
        ctx.sink.emit(&TraceEvent::StoreMiss {
            key: key.clone(),
            at_us: ctx.epoch.elapsed().as_micros() as u64,
        });
    }
    let mut outcome =
        execute_with_retries(cell, app, graph_name, config, graph, spec, options, ctx);
    match (&outcome.report.status, &outcome.row) {
        (CellStatus::Ok, Some(row)) => {
            if let Err(e) = store.publish(store_hash, app, graph_name, row) {
                // The simulation succeeded; only durability degraded.
                // The lease stays until its TTL, keeping peers from
                // double-publishing a possibly-torn record.
                outcome.report.detail = format!("result not persisted to store: {e}");
            }
        }
        _ => {
            // Best effort: an unreleased lease merely delays peers.
            let _ = store.release(store_hash, &key);
        }
    }
    outcome
}

/// A `Failed` cell outcome for store-level errors that occur outside
/// `execute_with_retries` (claim, lease, lock).
fn failed_cell(
    app: &str,
    graph_name: &str,
    config: &str,
    detail: String,
    attempts: u32,
) -> CellOutcome {
    CellOutcome {
        report: CellReport {
            app: app.to_owned(),
            graph: graph_name.to_owned(),
            config: config.to_owned(),
            status: CellStatus::Failed,
            detail,
            attempts,
        },
        row: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_with_retries(
    cell: Cell,
    app: &str,
    graph_name: &str,
    config: &str,
    graph: &ggs_graph::Csr,
    spec: &ExperimentSpec,
    options: &StudyOptions,
    ctx: ReuseCtx<'_>,
) -> CellOutcome {
    let key = cell_key(app, graph_name, config);
    let fault = options.faults.get(&key);
    let max_attempts = options.retry.max_attempts.max(1);
    let mut attempts = 0u32;
    let result = loop {
        attempts += 1;
        let deadline = options.cell_deadline.map(|d| Instant::now() + d);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            execute_cell(cell, &key, graph_name, graph, spec, fault, deadline, ctx)
        }));
        match caught {
            Ok(Ok(stats)) => break Ok(stats),
            Ok(Err(e)) => {
                if e.is_retryable() && attempts < max_attempts {
                    std::thread::sleep(options.retry.backoff(attempts));
                    continue;
                }
                break Err(e);
            }
            // Panics are deterministic: fail fast, no retry.
            Err(payload) => {
                break Err(CellFailure::from_payload(app, graph_name, config, payload).into())
            }
        }
    };
    match result {
        Ok(stats) => CellOutcome {
            report: CellReport {
                app: app.to_owned(),
                graph: graph_name.to_owned(),
                config: config.to_owned(),
                status: CellStatus::Ok,
                detail: String::new(),
                attempts,
            },
            row: Some(ResultRow {
                config: config.to_owned(),
                total_cycles: stats.total_cycles(),
                fractions: [
                    stats.breakdown.fraction(StallClass::Busy),
                    stats.breakdown.fraction(StallClass::Comp),
                    stats.breakdown.fraction(StallClass::Data),
                    stats.breakdown.fraction(StallClass::Sync),
                    stats.breakdown.fraction(StallClass::Idle),
                ],
            }),
        },
        Err(e) => CellOutcome {
            report: CellReport {
                app: app.to_owned(),
                graph: graph_name.to_owned(),
                config: config.to_owned(),
                status: if e.is_timeout() {
                    CellStatus::Timeout
                } else {
                    CellStatus::Failed
                },
                detail: e.to_string(),
                attempts,
            },
            row: None,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_cell(
    cell: Cell,
    key: &str,
    graph_name: &str,
    graph: &ggs_graph::Csr,
    spec: &ExperimentSpec,
    fault: Option<&Fault>,
    deadline: Option<Instant>,
    ctx: ReuseCtx<'_>,
) -> Result<ggs_sim::ExecStats, GgsError> {
    match fault {
        Some(Fault::Panic) => panic!("injected fault: deliberate panic in {key}"),
        Some(Fault::Hang) => return run_hang(cell, spec, deadline),
        Some(Fault::TransientIo { remaining }) => {
            let took = remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if took {
                return Err(GgsError::Io(std::io::Error::other(
                    "injected transient I/O failure",
                )));
            }
        }
        None => {}
    }
    match ctx.cache {
        Some(cache) => {
            // Split run: functional half through the shared cache (one
            // build per app × graph × direction group), timing half on
            // a fresh engine. The same kernels flow through the same
            // simulator in the same order, so the statistics are
            // bit-identical to the streamed path below.
            let stream_key = StreamKey {
                app: cell.app,
                graph_fp: ctx.graph_fp,
                prop: cell.config.propagation,
                tb_size: spec.params.tb_size,
                policy_fp: ggs_apps::Workload::new(cell.app, graph)
                    .policy_fingerprint(cell.config.propagation),
            };
            let stream = cache.get_or_build(
                stream_key,
                graph_name,
                ctx.sink,
                || ctx.epoch.elapsed().as_micros() as u64,
                || {
                    Arc::new(produce_trace_stream(
                        cell.app,
                        graph,
                        cell.config.propagation,
                        spec.params.tb_size,
                    ))
                },
            );
            run_stream_budgeted(
                &stream,
                cell.app,
                cell.config,
                spec,
                Tracer::off(),
                deadline,
            )
        }
        None => run_workload_budgeted(cell.app, graph, cell.config, spec, Tracer::off(), deadline),
    }
}

/// The `Hang` fault: feed small compute kernels forever, exactly like a
/// non-converging workload would, so only the watchdogs stop it. A
/// failsafe kernel cap keeps tests honest when neither watchdog is
/// configured.
fn run_hang(
    cell: Cell,
    spec: &ExperimentSpec,
    deadline: Option<Instant>,
) -> Result<ggs_sim::ExecStats, GgsError> {
    const FAILSAFE_KERNELS: u64 = 4096;
    let mut sim = Simulation::builder(spec.params.clone(), cell.config.hw())
        .budget(spec.budget)
        .build();
    let started = Instant::now();
    let threads: Vec<Vec<MicroOp>> = (0..32).map(|_| vec![MicroOp::compute(64)]).collect();
    let kernel = KernelTrace::new(threads, spec.params.tb_size);
    let mut launched = 0u64;
    loop {
        if let Some(breach) = sim.budget_breach() {
            return Err(GgsError::Budget(breach));
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(GgsError::Deadline {
                    limit_ms: started.elapsed().as_millis() as u64,
                });
            }
        }
        if launched >= FAILSAFE_KERNELS {
            return Err(GgsError::Deadline {
                limit_ms: started.elapsed().as_millis() as u64,
            });
        }
        sim.run_kernel(&kernel);
        launched += 1;
    }
}

/// Builds the (possibly partial) study from per-cell outcomes: rows
/// come from `Ok` cells and journal-restored `Skipped` cells; workloads
/// with no surviving row are dropped from `reports` (their cells remain
/// in the failure report).
fn aggregate(
    spec: &ExperimentSpec,
    graphs: &[(GraphPreset, Arc<ggs_graph::Csr>, GraphProfile, u64)],
    cells: &[Cell],
    outcomes: &[CellOutcome],
) -> Study {
    let mut workload_reports = Vec::new();
    let mut i = 0usize;
    while i < cells.len() {
        let gi = cells[i].graph_index;
        let app = cells[i].app;
        // Consume this workload's contiguous run of cells, keeping the
        // rows of cells that survived (Ok or journal-restored) in
        // configuration order.
        let mut rows: Vec<ResultRow> = Vec::new();
        while i < cells.len() && cells[i].graph_index == gi && cells[i].app == app {
            if let Some(row) = &outcomes[i].row {
                rows.push(row.clone());
            }
            i += 1;
        }
        if rows.is_empty() {
            // Every cell of this workload failed; it is represented in
            // the failure report only.
            continue;
        }
        let (preset, _, profile, _) = &graphs[gi];
        let algo = app.algo_profile();
        let best = rows
            .iter()
            .min_by_key(|r| r.total_cycles)
            .map(|r| r.config.clone())
            .unwrap_or_default();
        workload_reports.push(WorkloadReport {
            app: app.mnemonic().to_owned(),
            graph: preset.mnemonic().to_owned(),
            classes: profile.class_code(),
            predicted: predict_full(&algo, profile).code(),
            predicted_partial: predict_partial(&algo, profile).code(),
            best,
            baseline: baseline_config(app).code(),
            rows,
        });
    }

    Study {
        scale: spec.scale,
        reports: workload_reports,
        failures: outcomes
            .iter()
            .filter(|o| matches!(o.report.status, CellStatus::Failed | CellStatus::Timeout))
            .map(|o| o.report.clone())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_status_names_round_trip() {
        for status in [
            CellStatus::Ok,
            CellStatus::Failed,
            CellStatus::Timeout,
            CellStatus::Skipped,
        ] {
            assert_eq!(CellStatus::from_name(status.name()), Some(status));
        }
        assert_eq!(CellStatus::from_name("exploded"), None);
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(40));
        assert_eq!(policy.backoff(10), Duration::from_millis(200));
        assert_eq!(policy.backoff(u32::MAX), Duration::from_millis(200));
    }

    #[test]
    fn fault_plan_parses_cli_specs() {
        let plan = FaultPlan::new()
            .parse_spec("PR/AMZ/SGR")
            .and_then(|p| p.parse_spec("CC/RAJ/DGR=hang"))
            .and_then(|p| p.parse_spec("MIS/EML/SD1=io"))
            .expect("valid specs");
        assert!(matches!(plan.get("PR/AMZ/SGR"), Some(Fault::Panic)));
        assert!(matches!(plan.get("CC/RAJ/DGR"), Some(Fault::Hang)));
        assert!(matches!(
            plan.get("MIS/EML/SD1"),
            Some(Fault::TransientIo { .. })
        ));
        assert!(FaultPlan::new().parse_spec("PR/AMZ").is_err());
        assert!(FaultPlan::new().parse_spec("PR/AMZ/SGR=meteor").is_err());
    }

    #[test]
    fn cell_failure_downcasts_common_payloads() {
        let f = CellFailure::from_payload("PR", "AMZ", "SGR", Box::new("boom"));
        assert_eq!(f.payload, "boom");
        let f = CellFailure::from_payload("PR", "AMZ", "SGR", Box::new(String::from("heap boom")));
        assert_eq!(f.payload, "heap boom");
        let f = CellFailure::from_payload("PR", "AMZ", "SGR", Box::new(42u32));
        assert_eq!(f.payload, "non-string panic payload");
        assert!(f.to_string().contains("PR/AMZ/SGR"));
        let err: GgsError = f.into();
        assert!(matches!(err, GgsError::CellPanic { .. }));
        assert!(!err.is_retryable() && !err.is_timeout());
    }

    #[test]
    fn journal_lines_round_trip_and_tolerate_garbage() {
        let row = ResultRow {
            config: "SGR".to_owned(),
            total_cycles: 123_456,
            fractions: [0.25, 0.1, 0.3, 0.15, 0.2],
        };
        let line = journal_line("deadbeefdeadbeef", "PR", "AMZ", &row);
        let entry = parse_journal_line(&line).expect("own lines parse");
        assert_eq!(entry.spec_hash, "deadbeefdeadbeef");
        assert_eq!(entry.app, "PR");
        assert_eq!(entry.graph, "AMZ");
        assert_eq!(entry.row, row);
        // Truncated / malformed lines are skipped, not fatal.
        assert!(parse_journal_line(&line[..line.len() / 2]).is_none());
        assert!(parse_journal_line("not json at all").is_none());
        assert!(parse_journal_line("{\"app\":\"PR\"}").is_none());
    }

    #[test]
    fn spec_hash_distinguishes_specs_and_config_sets() {
        let a = ExperimentSpec::at_scale(0.05);
        let b = ExperimentSpec::at_scale(0.1);
        assert_eq!(
            spec_hash(&a, ConfigSet::Figure5),
            spec_hash(&a, ConfigSet::Figure5)
        );
        assert_ne!(
            spec_hash(&a, ConfigSet::Figure5),
            spec_hash(&b, ConfigSet::Figure5)
        );
        assert_ne!(
            spec_hash(&a, ConfigSet::Figure5),
            spec_hash(&a, ConfigSet::Full)
        );
        let mut budgeted = a.clone();
        budgeted.budget.max_kernels = Some(5);
        assert_ne!(
            spec_hash(&a, ConfigSet::Figure5),
            spec_hash(&budgeted, ConfigSet::Figure5)
        );
    }

    #[test]
    fn zero_threads_is_an_invalid_spec_not_a_panic() {
        let spec = ExperimentSpec::at_scale(0.004);
        let options = StudyOptions {
            threads: 0,
            ..Default::default()
        };
        let err = run_study(&spec, &options, &MetricsRegistry::new(), &ggs_trace::NOOP)
            .expect_err("zero threads rejected");
        assert!(matches!(err, GgsError::InvalidSpec(_)));
    }
}
