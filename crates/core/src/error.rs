//! The workspace-wide error type for fallible public APIs.
//!
//! Every leaf crate defines its own small typed error (parse errors,
//! parameter validation, graph construction); [`GgsError`] wraps them
//! all behind `From` impls so application code — the `repro` harness,
//! examples, downstream users — can thread one error type with `?`.

use std::fmt;

use ggs_apps::ParseAppError;
use ggs_graph::builder::GraphError;
use ggs_graph::mtx::ParseMtxError;
use ggs_graph::synth::ParsePresetError;
use ggs_model::decision::ParseConfigError;
use ggs_sim::config::ParseHwConfigError;
use ggs_sim::params::ParamsError;

/// Unified error for the GGS public API surface.
///
/// # Example
///
/// ```
/// use ggs_core::error::GgsError;
///
/// fn parse(code: &str) -> Result<ggs_model::SystemConfig, GgsError> {
///     Ok(code.parse::<ggs_model::SystemConfig>()?)
/// }
/// assert!(parse("SGR").is_ok());
/// assert!(parse("XYZ").is_err());
/// ```
#[derive(Debug)]
pub enum GgsError {
    /// A system-configuration code (`SGR`, `TG0`, …) failed to parse.
    Config(ParseConfigError),
    /// A coherence/consistency hardware code failed to parse.
    HwConfig(ParseHwConfigError),
    /// An application mnemonic failed to parse.
    App(ParseAppError),
    /// A graph-preset mnemonic failed to parse.
    Preset(ParsePresetError),
    /// A Matrix Market file was malformed.
    Mtx(ParseMtxError),
    /// A simulator parameter was invalid.
    Params(ParamsError),
    /// A graph could not be built.
    Graph(GraphError),
    /// An experiment specification was invalid (bad scale, empty
    /// configuration set, …).
    InvalidSpec(String),
    /// The requested (application, configuration) pairing is
    /// unsupported — e.g. push propagation for Connected Components.
    Unsupported {
        /// Application mnemonic.
        app: String,
        /// The unsupported propagation direction.
        propagation: String,
    },
    /// A sweep or report was asked about a configuration it does not
    /// contain.
    MissingConfig(String),
    /// A serialized study could not be parsed.
    Json(String),
    /// An I/O failure (trace output, study files).
    Io(std::io::Error),
    /// A simulation exceeded its configured kernel or simulated-cycle
    /// budget (watchdog; see `ExperimentSpec::budget`).
    Budget(ggs_sim::BudgetBreach),
    /// A study cell exceeded its wall-clock deadline.
    Deadline {
        /// The configured per-cell deadline, in milliseconds.
        limit_ms: u64,
    },
    /// A study cell panicked; the panic was caught at the cell boundary
    /// and converted into this error (see `runner::CellFailure`).
    CellPanic {
        /// The panic payload, downcast to a string when possible.
        payload: String,
    },
    /// A result-store file could not be interpreted: wrong magic, an
    /// unsupported format version, or structural corruption beyond
    /// what the tolerant scanner can skip (see `core::store`).
    StoreFormat {
        /// What was wrong with the file.
        detail: String,
    },
    /// The result-store advisory lock could not be acquired within the
    /// bounded retry budget (another process holds it, or an injected
    /// lock fault). Transient by nature: retryable.
    StoreLock {
        /// Lock path and contention detail.
        detail: String,
    },
}

impl GgsError {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Only transient environmental failures (I/O, store-lock
    /// contention) are retryable; deterministic errors — bad specs,
    /// unsupported pairings, budget breaches, panics — fail the same
    /// way every time and are not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, GgsError::Io(_) | GgsError::StoreLock { .. })
    }

    /// Whether this error is a watchdog trip (budget or wall-clock
    /// deadline) rather than a genuine failure; the study runner
    /// records such cells as `Timeout` instead of `Failed`.
    pub fn is_timeout(&self) -> bool {
        matches!(self, GgsError::Budget(_) | GgsError::Deadline { .. })
    }
}

impl fmt::Display for GgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GgsError::Config(e) => e.fmt(f),
            GgsError::HwConfig(e) => e.fmt(f),
            GgsError::App(e) => e.fmt(f),
            GgsError::Preset(e) => e.fmt(f),
            GgsError::Mtx(e) => e.fmt(f),
            GgsError::Params(e) => e.fmt(f),
            GgsError::Graph(e) => e.fmt(f),
            GgsError::InvalidSpec(msg) => write!(f, "invalid experiment spec: {msg}"),
            GgsError::Unsupported { app, propagation } => {
                write!(f, "{app} does not support {propagation} propagation")
            }
            GgsError::MissingConfig(msg) => f.write_str(msg),
            GgsError::Json(msg) => write!(f, "malformed study JSON: {msg}"),
            GgsError::Io(e) => e.fmt(f),
            GgsError::Budget(b) => b.fmt(f),
            GgsError::Deadline { limit_ms } => {
                write!(f, "wall-clock deadline exceeded ({limit_ms} ms)")
            }
            GgsError::CellPanic { payload } => write!(f, "cell panicked: {payload}"),
            GgsError::StoreFormat { detail } => write!(f, "result store format error: {detail}"),
            GgsError::StoreLock { detail } => write!(f, "result store lock unavailable: {detail}"),
        }
    }
}

impl std::error::Error for GgsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GgsError::Config(e) => Some(e),
            GgsError::HwConfig(e) => Some(e),
            GgsError::App(e) => Some(e),
            GgsError::Preset(e) => Some(e),
            GgsError::Mtx(e) => Some(e),
            GgsError::Params(e) => Some(e),
            GgsError::Graph(e) => Some(e),
            GgsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseConfigError> for GgsError {
    fn from(e: ParseConfigError) -> Self {
        GgsError::Config(e)
    }
}

impl From<ParseHwConfigError> for GgsError {
    fn from(e: ParseHwConfigError) -> Self {
        GgsError::HwConfig(e)
    }
}

impl From<ParseAppError> for GgsError {
    fn from(e: ParseAppError) -> Self {
        GgsError::App(e)
    }
}

impl From<ParsePresetError> for GgsError {
    fn from(e: ParsePresetError) -> Self {
        GgsError::Preset(e)
    }
}

impl From<ParseMtxError> for GgsError {
    fn from(e: ParseMtxError) -> Self {
        GgsError::Mtx(e)
    }
}

impl From<ParamsError> for GgsError {
    fn from(e: ParamsError) -> Self {
        GgsError::Params(e)
    }
}

impl From<GraphError> for GgsError {
    fn from(e: GraphError) -> Self {
        GgsError::Graph(e)
    }
}

impl From<std::io::Error> for GgsError {
    fn from(e: std::io::Error) -> Self {
        GgsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_leaf_parse_error() {
        let cfg: GgsError = "bogus"
            .parse::<ggs_model::SystemConfig>()
            .unwrap_err()
            .into();
        assert!(matches!(cfg, GgsError::Config(_)));
        let app: GgsError = "bogus".parse::<ggs_apps::AppKind>().unwrap_err().into();
        assert!(matches!(app, GgsError::App(_)));
        let params: GgsError = ggs_sim::SystemParams::builder()
            .num_sms(0)
            .build()
            .unwrap_err()
            .into();
        assert!(matches!(params, GgsError::Params(_)));
        let graph: GgsError = ggs_graph::GraphBuilder::new(1)
            .edge(0, 9)
            .try_build()
            .unwrap_err()
            .into();
        assert!(matches!(graph, GgsError::Graph(_)));
    }

    #[test]
    fn display_preserves_legacy_panic_substrings() {
        let e = GgsError::Unsupported {
            app: "CC".into(),
            propagation: "push".into(),
        };
        assert!(e.to_string().contains("does not support"));
        let e = GgsError::MissingConfig("baseline configuration must be part of the sweep".into());
        assert!(e.to_string().contains("baseline configuration"));
    }
}
