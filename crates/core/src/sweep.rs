//! Sweeping one workload across system configurations (one group of
//! bars in the paper's Figure 5).

use ggs_apps::AppKind;
use ggs_graph::Csr;
use ggs_model::taxonomy::{Propagation, Traversal};
use ggs_model::SystemConfig;
use ggs_sim::{CoherenceKind, ConsistencyModel, ExecStats};

use ggs_trace::Tracer;

use crate::error::GgsError;
use crate::experiment::{run_workload_traced, ExperimentSpec};

/// The result of one configuration point within a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigResult {
    /// The configuration simulated.
    pub config: SystemConfig,
    /// Its execution statistics.
    pub stats: ExecStats,
}

/// One workload (application + graph) swept across configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSweep {
    /// The application.
    pub app: AppKind,
    /// Name of the input graph (preset mnemonic or custom name).
    pub graph_name: String,
    /// Per-configuration results, in the order simulated.
    pub results: Vec<ConfigResult>,
}

/// Builds a configuration point in const context (the struct fields are
/// public, so the tables below are verified at compile time — no
/// parsing, no panic path).
const fn cfg(
    propagation: Propagation,
    coherence: CoherenceKind,
    consistency: ConsistencyModel,
) -> SystemConfig {
    SystemConfig {
        propagation,
        coherence,
        consistency,
    }
}

/// The five Figure 5 bars for static workloads: TG0 (the only pull bar:
/// pull is insensitive to coherence/consistency) plus push over
/// {GPU, DeNovo} × {DRF1, DRFrlx} (DRF0 push is uniformly poor and
/// omitted, §VI).
const STATIC_FIGURE5: [SystemConfig; 5] = [
    cfg(
        Propagation::Pull,
        CoherenceKind::Gpu,
        ConsistencyModel::Drf0,
    ), // TG0
    cfg(
        Propagation::Push,
        CoherenceKind::Gpu,
        ConsistencyModel::Drf1,
    ), // SG1
    cfg(
        Propagation::Push,
        CoherenceKind::Gpu,
        ConsistencyModel::DrfRlx,
    ), // SGR
    cfg(
        Propagation::Push,
        CoherenceKind::DeNovo,
        ConsistencyModel::Drf1,
    ), // SD1
    cfg(
        Propagation::Push,
        CoherenceKind::DeNovo,
        ConsistencyModel::DrfRlx,
    ), // SDR
];

/// The four `D*` bars Figure 5 shows for CC (dynamic traversal).
const DYNAMIC_FIGURE5: [SystemConfig; 4] = [
    cfg(
        Propagation::PushPull,
        CoherenceKind::Gpu,
        ConsistencyModel::Drf1,
    ), // DG1
    cfg(
        Propagation::PushPull,
        CoherenceKind::Gpu,
        ConsistencyModel::DrfRlx,
    ), // DGR
    cfg(
        Propagation::PushPull,
        CoherenceKind::DeNovo,
        ConsistencyModel::Drf1,
    ), // DD1
    cfg(
        Propagation::PushPull,
        CoherenceKind::DeNovo,
        ConsistencyModel::DrfRlx,
    ), // DDR
];

/// The hybrid (frontier-adaptive push/pull) extension cells — this
/// repo's 13th configuration dimension, beyond the paper's 12-point
/// grid. The hardware halves mirror the push Figure 5 bars (any hybrid
/// iteration may realize push, so its atomics must be serviceable);
/// HG1 doubles as the hybrid normalization baseline.
const HYBRID_EXTENSION: [SystemConfig; 4] = [
    cfg(
        Propagation::Hybrid,
        CoherenceKind::Gpu,
        ConsistencyModel::Drf1,
    ), // HG1
    cfg(
        Propagation::Hybrid,
        CoherenceKind::Gpu,
        ConsistencyModel::DrfRlx,
    ), // HGR
    cfg(
        Propagation::Hybrid,
        CoherenceKind::DeNovo,
        ConsistencyModel::Drf1,
    ), // HD1
    cfg(
        Propagation::Hybrid,
        CoherenceKind::DeNovo,
        ConsistencyModel::DrfRlx,
    ), // HDR
];

/// The Figure 5 normalization baselines: TG0 for static workloads, DG1
/// for CC.
const STATIC_BASELINE: SystemConfig = STATIC_FIGURE5[0]; // TG0
const DYNAMIC_BASELINE: SystemConfig = DYNAMIC_FIGURE5[0]; // DG1

/// The configurations Figure 5 shows per workload: five for static
/// workloads, four for CC. The tables behind it (`STATIC_FIGURE5` /
/// `DYNAMIC_FIGURE5`) are compile-time constants, so this cannot fail.
pub fn figure5_configs(app: AppKind) -> Vec<SystemConfig> {
    match app.algo_profile().traversal {
        Traversal::Static => STATIC_FIGURE5.to_vec(),
        Traversal::Dynamic => DYNAMIC_FIGURE5.to_vec(),
    }
}

/// The baseline every bar of a Figure 5 group is normalized to: `TG0`
/// for static workloads, `DG1` for CC.
pub fn baseline_config(app: AppKind) -> SystemConfig {
    match app.algo_profile().traversal {
        Traversal::Static => STATIC_BASELINE,
        Traversal::Dynamic => DYNAMIC_BASELINE,
    }
}

/// The frontier-adaptive hybrid cells for `app` — the extension grid
/// simulated *alongside* the Figure 5 bars (never mixed into them, so
/// every paper-faithful table stays pinned). Empty for applications
/// whose producers expose no active set (see
/// [`AppKind::supported_propagations`]).
pub fn hybrid_configs(app: AppKind) -> Vec<SystemConfig> {
    if app.supported_propagations().contains(&Propagation::Hybrid) {
        HYBRID_EXTENSION.to_vec()
    } else {
        Vec::new()
    }
}

impl WorkloadSweep {
    /// Runs `app` on `graph` across `configs`.
    ///
    /// # Panics
    ///
    /// Panics if any configuration's propagation is unsupported by
    /// `app`. Prefer [`WorkloadSweep::try_run`] on paths that must not
    /// panic.
    pub fn run(
        app: AppKind,
        graph_name: impl Into<String>,
        graph: &Csr,
        configs: &[SystemConfig],
        spec: &ExperimentSpec,
    ) -> Self {
        Self::run_traced(app, graph_name, graph, configs, spec, Tracer::off())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`WorkloadSweep::run`].
    pub fn try_run(
        app: AppKind,
        graph_name: impl Into<String>,
        graph: &Csr,
        configs: &[SystemConfig],
        spec: &ExperimentSpec,
    ) -> Result<Self, GgsError> {
        Self::run_traced(app, graph_name, graph, configs, spec, Tracer::off())
    }

    /// Fallible, instrumented variant of [`WorkloadSweep::run`]: every
    /// configuration's simulation emits through `tracer` (see
    /// [`run_workload_traced`]).
    pub fn run_traced(
        app: AppKind,
        graph_name: impl Into<String>,
        graph: &Csr,
        configs: &[SystemConfig],
        spec: &ExperimentSpec,
        tracer: Tracer<'_>,
    ) -> Result<Self, GgsError> {
        let results = configs
            .iter()
            .map(|&config| {
                run_workload_traced(app, graph, config, spec, tracer)
                    .map(|stats| ConfigResult { config, stats })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            app,
            graph_name: graph_name.into(),
            results,
        })
    }

    /// The fastest configuration (the paper's per-workload BEST).
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty. Prefer [`WorkloadSweep::try_best`]
    /// on paths that must not panic.
    pub fn best(&self) -> &ConfigResult {
        self.try_best()
            .unwrap_or_else(|| panic!("sweep has at least one configuration"))
    }

    /// The fastest configuration, or `None` for an empty sweep.
    pub fn try_best(&self) -> Option<&ConfigResult> {
        self.results.iter().min_by_key(|r| r.stats.total_cycles())
    }

    /// The result for a specific configuration, if it was swept.
    pub fn result_for(&self, config: SystemConfig) -> Option<&ConfigResult> {
        self.results.iter().find(|r| r.config == config)
    }

    /// Execution times normalized to `baseline` (the paper's Figure 5
    /// y-axis). Configurations map to `time / baseline_time`.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` was not part of the sweep. Prefer
    /// [`WorkloadSweep::try_normalized_to`] on paths that must not
    /// panic.
    pub fn normalized_to(&self, baseline: SystemConfig) -> Vec<(SystemConfig, f64)> {
        self.try_normalized_to(baseline)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`WorkloadSweep::normalized_to`]: a missing
    /// baseline is reported as [`GgsError::MissingConfig`].
    pub fn try_normalized_to(
        &self,
        baseline: SystemConfig,
    ) -> Result<Vec<(SystemConfig, f64)>, GgsError> {
        let base = self
            .result_for(baseline)
            .ok_or_else(|| {
                GgsError::MissingConfig(format!(
                    "baseline configuration {baseline} must be part of the sweep"
                ))
            })?
            .stats
            .total_cycles() as f64;
        Ok(self
            .results
            .iter()
            .map(|r| (r.config, r.stats.total_cycles() as f64 / base))
            .collect())
    }

    /// Relative slowdown of configuration `cfg` versus the best
    /// (0.0 = it *is* the best; 0.10 = 10% slower).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` was not part of the sweep. Prefer
    /// [`WorkloadSweep::try_slowdown_vs_best`] on paths that must not
    /// panic.
    pub fn slowdown_vs_best(&self, cfg: SystemConfig) -> f64 {
        self.try_slowdown_vs_best(cfg)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`WorkloadSweep::slowdown_vs_best`]: an
    /// empty sweep or a configuration outside it is reported as
    /// [`GgsError::MissingConfig`].
    pub fn try_slowdown_vs_best(&self, cfg: SystemConfig) -> Result<f64, GgsError> {
        let best = self
            .try_best()
            .ok_or_else(|| GgsError::MissingConfig("sweep is empty".to_owned()))?
            .stats
            .total_cycles() as f64;
        let t = self
            .result_for(cfg)
            .ok_or_else(|| {
                GgsError::MissingConfig(format!("configuration {cfg} must be part of the sweep"))
            })?
            .stats
            .total_cycles() as f64;
        Ok(t / best - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn graph() -> Csr {
        GraphBuilder::new(768)
            .edges((0..767).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn figure5_config_sets() {
        let static_cfgs = figure5_configs(AppKind::Pr);
        assert_eq!(static_cfgs.len(), 5);
        assert_eq!(static_cfgs[0].code(), "TG0");
        let cc_cfgs = figure5_configs(AppKind::Cc);
        assert_eq!(cc_cfgs.len(), 4);
        assert!(cc_cfgs.iter().all(|c| c.code().starts_with('D')));
    }

    #[test]
    fn baselines_match_figure5_caption() {
        assert_eq!(baseline_config(AppKind::Mis).code(), "TG0");
        assert_eq!(baseline_config(AppKind::Cc).code(), "DG1");
    }

    #[test]
    fn hybrid_config_sets() {
        // Only the frontier apps get hybrid cells; codes round-trip
        // through the parser like the Figure 5 tables do.
        let codes = ["HG1", "HGR", "HD1", "HDR"];
        for app in [AppKind::Sssp, AppKind::Bfs] {
            let cfgs = hybrid_configs(app);
            assert_eq!(cfgs.len(), 4, "{app}");
            for (cfg, code) in cfgs.iter().zip(codes) {
                assert_eq!(cfg.code(), code);
                assert_eq!(*cfg, code.parse::<SystemConfig>().unwrap());
            }
        }
        assert!(hybrid_configs(AppKind::Pr).is_empty());
        assert!(hybrid_configs(AppKind::Cc).is_empty());
        // The Figure 5 tables stay hybrid-free.
        for app in [AppKind::Pr, AppKind::Sssp, AppKind::Cc] {
            assert!(figure5_configs(app)
                .iter()
                .all(|c| c.propagation != Propagation::Hybrid));
        }
    }

    #[test]
    fn hybrid_sweep_runs_end_to_end() {
        let g = GraphBuilder::new(256)
            .edges((1..256).map(|v| (0, v)))
            .edges((1..255).map(|v| (v, v + 1)))
            .symmetric(true)
            .build();
        let spec = ExperimentSpec::at_scale(0.02);
        let sweep = WorkloadSweep::run(
            AppKind::Sssp,
            "star",
            &g,
            &hybrid_configs(AppKind::Sssp),
            &spec,
        );
        assert_eq!(sweep.results.len(), 4);
        assert!(sweep.results.iter().all(|r| r.stats.total_cycles() > 0));
    }

    #[test]
    fn const_tables_agree_with_the_code_parser() {
        // The compile-time tables must name exactly the paper's codes;
        // round-trip each entry through the string parser to prove the
        // field triples are the ones the codes denote.
        let static_codes = ["TG0", "SG1", "SGR", "SD1", "SDR"];
        for (cfg, code) in figure5_configs(AppKind::Pr).iter().zip(static_codes) {
            assert_eq!(cfg.code(), code);
            assert_eq!(*cfg, code.parse::<SystemConfig>().unwrap());
        }
        let dynamic_codes = ["DG1", "DGR", "DD1", "DDR"];
        for (cfg, code) in figure5_configs(AppKind::Cc).iter().zip(dynamic_codes) {
            assert_eq!(cfg.code(), code);
            assert_eq!(*cfg, code.parse::<SystemConfig>().unwrap());
        }
    }

    #[test]
    fn sweep_normalization_and_best() {
        let g = graph();
        let spec = ExperimentSpec::at_scale(0.05);
        let sweep = WorkloadSweep::run(
            AppKind::Pr,
            "chain",
            &g,
            &figure5_configs(AppKind::Pr),
            &spec,
        );
        let norm = sweep.normalized_to(baseline_config(AppKind::Pr));
        assert_eq!(norm.len(), 5);
        let (_, base_val) = norm.iter().find(|(c, _)| c.code() == "TG0").unwrap();
        assert!((base_val - 1.0).abs() < 1e-12);
        assert!(sweep.slowdown_vs_best(sweep.best().config).abs() < 1e-12);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn graph() -> Csr {
        GraphBuilder::new(512)
            .edges((0..511).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn result_for_absent_config_is_none() {
        let spec = ExperimentSpec::at_scale(0.02);
        let sweep = WorkloadSweep::run(
            AppKind::Pr,
            "chain",
            &graph(),
            &["TG0".parse().unwrap()],
            &spec,
        );
        assert!(sweep.result_for("SGR".parse().unwrap()).is_none());
        assert!(sweep.result_for("TG0".parse().unwrap()).is_some());
    }

    #[test]
    fn slowdown_vs_best_is_nonnegative_everywhere() {
        let spec = ExperimentSpec::at_scale(0.02);
        let sweep = WorkloadSweep::run(
            AppKind::Sssp,
            "chain",
            &graph(),
            &figure5_configs(AppKind::Sssp),
            &spec,
        );
        for r in &sweep.results {
            assert!(sweep.slowdown_vs_best(r.config) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "baseline configuration")]
    fn normalization_requires_baseline_in_sweep() {
        let spec = ExperimentSpec::at_scale(0.02);
        let sweep = WorkloadSweep::run(
            AppKind::Pr,
            "chain",
            &graph(),
            &["SGR".parse().unwrap()],
            &spec,
        );
        let _ = sweep.normalized_to("TG0".parse().unwrap());
    }

    #[test]
    fn try_variants_report_errors_instead_of_panicking() {
        let spec = ExperimentSpec::at_scale(0.02);
        let sweep = WorkloadSweep::try_run(
            AppKind::Pr,
            "chain",
            &graph(),
            &["SGR".parse().unwrap()],
            &spec,
        )
        .unwrap();
        let err = sweep.try_normalized_to("TG0".parse().unwrap()).unwrap_err();
        assert!(err.to_string().contains("baseline configuration"));
        assert!(sweep.try_slowdown_vs_best("TG0".parse().unwrap()).is_err());
        assert!(sweep.try_slowdown_vs_best("SGR".parse().unwrap()).is_ok());
        // Unsupported pairing surfaces as Err, not panic.
        assert!(WorkloadSweep::try_run(
            AppKind::Cc,
            "chain",
            &graph(),
            &["SGR".parse().unwrap()],
            &spec,
        )
        .is_err());
        // Empty sweep has no best.
        let empty = WorkloadSweep::try_run(AppKind::Pr, "chain", &graph(), &[], &spec).unwrap();
        assert!(empty.try_best().is_none());
    }

    #[test]
    fn full_config_set_sweep_runs() {
        let spec = ExperimentSpec::at_scale(0.02);
        let configs = ggs_model::SystemConfig::all_for(ggs_model::taxonomy::Traversal::Static);
        let sweep = WorkloadSweep::run(AppKind::Mis, "chain", &graph(), &configs, &spec);
        assert_eq!(sweep.results.len(), 12);
        // Pull bars are hardware-insensitive on the consistency axis.
        let t = |code: &str| {
            sweep
                .result_for(code.parse().unwrap())
                .unwrap()
                .stats
                .total_cycles()
        };
        assert_eq!(t("TG0"), t("TG1"));
        assert_eq!(t("TG0"), t("TGR"));
    }
}
