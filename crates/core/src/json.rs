//! Minimal JSON reading/writing used by [`crate::study`].
//!
//! The offline build has no `serde`/`serde_json`, so study reports are
//! serialized by hand through this module: a small event-free parser
//! into a [`Value`] tree plus a writer with optional pretty-printing.
//! Floats are emitted with Rust's shortest-roundtrip formatting, so a
//! serialize → parse cycle reproduces every `f64` bit-exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are
    /// exact, which covers every counter this crate serializes).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is sorted (BTreeMap), which keeps output
    /// deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up `key`, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Serializes on one line.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => write_seq(
                out,
                indent,
                depth,
                '[',
                ']',
                items.iter(),
                |out, item, d| item.write(out, indent, d),
            ),
            Value::Object(map) => write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                map.iter(),
                |out, (k, v), d| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                },
            ),
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0
        && n.abs() <= 9_007_199_254_740_992.0 // 2^53: exactly representable
        && !(n == 0.0 && n.is_sign_negative())
    {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest representation that parses back to
        // the same f64.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // crate's output (it never emits them).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_owned(), Value::String("a \"b\"\n".to_owned()));
        obj.insert("n".to_owned(), Value::Number(42.0));
        obj.insert("frac".to_owned(), Value::Number(0.1 + 0.2));
        obj.insert(
            "xs".to_owned(),
            Value::Array(vec![Value::Bool(true), Value::Null, Value::Number(-3.5)]),
        );
        let v = Value::Object(obj);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let text = Value::Number(f).to_string_compact();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(
            Value::Number(9007199254740991.0).to_string_compact(),
            "9007199254740991"
        );
        assert_eq!(Value::Number(-17.0).to_string_compact(), "-17");
    }
}
