//! Running one (application, graph, configuration) experiment point.

use std::time::Instant;

use ggs_apps::{AppKind, Workload};
use ggs_graph::Csr;
use ggs_model::SystemConfig;
use ggs_sim::{ExecStats, SimBudget, Simulation, SystemParams};
use ggs_trace::Tracer;

use crate::error::GgsError;

/// Experiment-wide settings shared by every simulation of a study.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Scale factor applied to the synthetic inputs *and* (already) to
    /// the cache capacities inside `params`. Stored for reporting.
    pub scale: f64,
    /// Simulated hardware parameters (Table IV, possibly cache-scaled).
    pub params: SystemParams,
    /// Watchdog budget applied to every simulation run under this spec
    /// (kernel/iteration and simulated-cycle limits). Unlimited by
    /// default; a breached run is reported as [`GgsError::Budget`] by
    /// [`run_workload_budgeted`].
    pub budget: SimBudget,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        Self::at_scale(1.0)
    }
}

impl ExperimentSpec {
    /// A spec for inputs generated at `scale`, with cache capacities
    /// scaled to match (so the paper's volume classes are preserved —
    /// DESIGN.md §7).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite. Prefer
    /// [`ExperimentSpec::try_at_scale`] or [`ExperimentSpec::builder`]
    /// on paths that must not panic.
    pub fn at_scale(scale: f64) -> Self {
        Self::try_at_scale(scale).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`ExperimentSpec::at_scale`]: rejects a
    /// non-positive or non-finite `scale` instead of panicking.
    pub fn try_at_scale(scale: f64) -> Result<Self, GgsError> {
        let mut params = SystemParams::default().try_scaled_caches(scale)?;
        // Scale the fixed kernel-launch overhead with the input size so
        // the overhead-to-work ratio matches the full-scale system
        // (otherwise launches dominate small inputs and bias against
        // multi-kernel variants).
        params.kernel_launch_cycles =
            ((params.kernel_launch_cycles as f64 * scale) as u64).max(100);
        // Scale resident thread blocks with the caches so each thread's
        // share of the L1 matches the full-scale machine (otherwise the
        // shrunken L1 is thrashed by an unshrunken warp population and
        // the dense-read caching that push relies on disappears).
        params.max_blocks_per_sm =
            ((params.max_blocks_per_sm as f64 * scale).round() as u32).max(1);
        // Floor the simulated L1 at one thread block's working window
        // (~8 KB): a thread block's CSR slice does not shrink with the
        // scale factor, so an exactly-scaled L1 below this floor loses
        // the intra-block locality both pull and DeNovo rely on. The
        // *classifier* keeps nominal scaling (see `metric_params`) so
        // every Table II volume class is preserved.
        params.l1_bytes = params.l1_bytes.max(8 * 1024);
        Ok(Self {
            scale,
            params,
            budget: SimBudget::UNLIMITED,
        })
    }

    /// A fluent builder over [`ExperimentSpec::try_at_scale`] that also
    /// allows overriding the derived [`SystemParams`].
    ///
    /// # Example
    ///
    /// ```
    /// use ggs_core::experiment::ExperimentSpec;
    ///
    /// let spec = ExperimentSpec::builder().scale(0.05).build()?;
    /// assert!(spec.params.l1_bytes >= 8 * 1024);
    /// assert!(ExperimentSpec::builder().scale(-1.0).build().is_err());
    /// # Ok::<(), ggs_core::error::GgsError>(())
    /// ```
    pub fn builder() -> ExperimentSpecBuilder {
        ExperimentSpecBuilder {
            scale: 1.0,
            params: None,
            budget: SimBudget::UNLIMITED,
        }
    }

    /// Metric parameters for the *nominal* scaled machine (cache
    /// capacities scaled exactly, without the simulator's L1 fidelity
    /// floor), so metric classes match the paper's Table II at every
    /// scale.
    pub fn metric_params(&self) -> ggs_model::MetricParams {
        ggs_model::MetricParams::default().scaled_caches(self.scale)
    }
}

/// Fluent builder for [`ExperimentSpec`] (see
/// [`ExperimentSpec::builder`]).
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    scale: f64,
    params: Option<SystemParams>,
    budget: SimBudget,
}

impl ExperimentSpecBuilder {
    /// Scale factor for synthetic inputs and cache capacities
    /// (default 1.0).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Watchdog budget for every simulation run under the spec
    /// (default [`SimBudget::UNLIMITED`]).
    pub fn budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the number of kernels (≈ iterations for the level-
    /// synchronous graph workloads) any single simulation may launch.
    pub fn max_kernels(mut self, limit: u64) -> Self {
        self.budget.max_kernels = Some(limit);
        self
    }

    /// Caps the simulated cycles any single simulation may accumulate.
    pub fn max_sim_cycles(mut self, limit: u64) -> Self {
        self.budget.max_cycles = Some(limit);
        self
    }

    /// Replaces the derived [`SystemParams`] wholesale. The params are
    /// used as given — no cache scaling or launch-overhead adjustment
    /// is applied on top.
    pub fn params(mut self, params: SystemParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`GgsError::Params`] if `scale` is not positive and
    /// finite.
    pub fn build(self) -> Result<ExperimentSpec, GgsError> {
        let mut spec = ExperimentSpec::try_at_scale(self.scale)?;
        if let Some(params) = self.params {
            spec.params = params;
        }
        spec.budget = self.budget;
        Ok(spec)
    }
}

/// Simulates `app` on `graph` under `config`, returning the final
/// execution statistics.
///
/// The application's kernel sequence is generated (streamed) and fed to
/// a fresh [`Simulation`] configured with the hardware half of
/// `config`; cache and ownership state persist across the workload's
/// kernels, as on the simulated machine.
///
/// SSSP requires a weighted graph; deterministic weights are attached
/// on the fly when missing.
///
/// # Panics
///
/// Panics if `config.propagation` is not supported by `app` (e.g. push
/// for CC). Prefer [`run_workload_traced`] on paths that must not
/// panic.
pub fn run_workload(
    app: AppKind,
    graph: &Csr,
    config: SystemConfig,
    spec: &ExperimentSpec,
) -> ExecStats {
    run_workload_traced(app, graph, config, spec, Tracer::off()).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible, instrumented variant of [`run_workload`]: every simulator
/// event (kernel boundaries, stall samples, cache/NoC counters,
/// synchronization) is emitted through `tracer`, and an unsupported
/// (application, propagation) pairing is reported as
/// [`GgsError::Unsupported`] instead of panicking.
///
/// Pass [`Tracer::off`] to run without instrumentation at zero cost.
pub fn run_workload_traced(
    app: AppKind,
    graph: &Csr,
    config: SystemConfig,
    spec: &ExperimentSpec,
    tracer: Tracer<'_>,
) -> Result<ExecStats, GgsError> {
    check_supported(app, config)?;
    let weighted;
    let graph = if app.needs_weights() && !graph.is_weighted() {
        weighted = graph.clone().with_hashed_weights(64);
        &weighted
    } else {
        graph
    };
    let mut sim = Simulation::builder(spec.params.clone(), config.hw())
        .tracer(tracer)
        .build();
    let tb = spec.params.tb_size;
    Workload::new(app, graph).generate(config.propagation, tb, &mut |kernel| {
        sim.run_kernel(kernel);
    });
    Ok(sim.finish())
}

/// Watchdog-guarded variant of [`run_workload_traced`]: the spec's
/// [`SimBudget`] and an optional wall-clock `deadline` are enforced
/// inside the engine — cycle limits at the exact breach cycle and the
/// deadline mid-kernel, so even a single hung kernel is abandoned.
/// Once either trips, remaining kernels are skipped and the run is
/// reported as [`GgsError::Budget`] / [`GgsError::Deadline`] instead
/// of returning partial statistics.
pub fn run_workload_budgeted(
    app: AppKind,
    graph: &Csr,
    config: SystemConfig,
    spec: &ExperimentSpec,
    tracer: Tracer<'_>,
    deadline: Option<Instant>,
) -> Result<ExecStats, GgsError> {
    check_supported(app, config)?;
    let weighted;
    let graph = if app.needs_weights() && !graph.is_weighted() {
        weighted = graph.clone().with_hashed_weights(64);
        &weighted
    } else {
        graph
    };
    let mut budget = spec.budget;
    budget.deadline = deadline.or(budget.deadline);
    let mut sim = Simulation::builder(spec.params.clone(), config.hw())
        .tracer(tracer)
        .budget(budget)
        .build();
    let started = Instant::now();
    let tb = spec.params.tb_size;
    Workload::new(app, graph).generate(config.propagation, tb, &mut |kernel| {
        if sim.budget_exhausted() {
            return;
        }
        sim.run_kernel(kernel);
    });
    match sim.budget_breach() {
        Some(ggs_sim::BudgetBreach::Deadline { .. }) => {
            let limit_ms = deadline
                .map(|d| d.saturating_duration_since(started).as_millis() as u64)
                .unwrap_or(0);
            Err(GgsError::Deadline { limit_ms })
        }
        Some(breach) => Err(GgsError::Budget(breach)),
        None => Ok(sim.finish()),
    }
}

/// Materializes the kernel stream of `(app, graph, prop, tb_size)` —
/// the *functional* half of a workload run, shared by every
/// configuration cell of a direction (the stream never depends on
/// coherence, consistency, or timing; see [`Workload::produce`]).
///
/// SSSP's deterministic weight attachment is replicated here, so the
/// stream for an unweighted graph matches what [`run_workload_traced`]
/// would simulate.
///
/// # Panics
///
/// Panics if `prop` is not supported by `app` (see
/// [`AppKind::supported_propagations`]).
pub fn produce_trace_stream(
    app: AppKind,
    graph: &Csr,
    prop: ggs_model::Propagation,
    tb_size: u32,
) -> Vec<std::sync::Arc<ggs_sim::trace::KernelTrace>> {
    let weighted;
    let graph = if app.needs_weights() && !graph.is_weighted() {
        weighted = graph.clone().with_hashed_weights(64);
        &weighted
    } else {
        graph
    };
    Workload::new(app, graph).stream(prop, tb_size)
}

/// Timing half of the split workload run: simulates a pre-built kernel
/// `stream` (from [`produce_trace_stream`], possibly via a
/// `TraceCache`) under `config`, with the same budget/deadline
/// semantics as [`run_workload_budgeted`]. Feeding the same kernels in
/// the same order through the same engine makes the statistics
/// bit-identical to the streamed path.
pub fn run_stream_budgeted(
    stream: &[std::sync::Arc<ggs_sim::trace::KernelTrace>],
    app: AppKind,
    config: SystemConfig,
    spec: &ExperimentSpec,
    tracer: Tracer<'_>,
    deadline: Option<Instant>,
) -> Result<ExecStats, GgsError> {
    check_supported(app, config)?;
    let mut budget = spec.budget;
    budget.deadline = deadline.or(budget.deadline);
    let mut sim = Simulation::builder(spec.params.clone(), config.hw())
        .tracer(tracer)
        .budget(budget)
        .build();
    let started = Instant::now();
    for kernel in stream {
        if sim.budget_exhausted() {
            break;
        }
        sim.run_kernel(kernel);
    }
    match sim.budget_breach() {
        Some(ggs_sim::BudgetBreach::Deadline { .. }) => {
            let limit_ms = deadline
                .map(|d| d.saturating_duration_since(started).as_millis() as u64)
                .unwrap_or(0);
            Err(GgsError::Deadline { limit_ms })
        }
        Some(breach) => Err(GgsError::Budget(breach)),
        None => Ok(sim.finish()),
    }
}

fn check_supported(app: AppKind, config: SystemConfig) -> Result<(), GgsError> {
    if app.supported_propagations().contains(&config.propagation) {
        Ok(())
    } else {
        Err(GgsError::Unsupported {
            app: app.to_string(),
            propagation: config.propagation.to_string(),
        })
    }
}

/// Like [`run_workload`], additionally registering the application's
/// address map so the result carries GSI-style per-data-structure
/// attribution (`(array name, stats)` in address order).
///
/// # Panics
///
/// Panics if `config.propagation` is not supported by `app`. Prefer
/// [`run_workload_profiled_traced`] on paths that must not panic.
pub fn run_workload_profiled(
    app: AppKind,
    graph: &Csr,
    config: SystemConfig,
    spec: &ExperimentSpec,
) -> (ExecStats, Vec<(String, ggs_sim::stats::RegionStats)>) {
    run_workload_profiled_traced(app, graph, config, spec, Tracer::off())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible, instrumented variant of [`run_workload_profiled`] (see
/// [`run_workload_traced`] for the tracing contract).
pub fn run_workload_profiled_traced(
    app: AppKind,
    graph: &Csr,
    config: SystemConfig,
    spec: &ExperimentSpec,
    tracer: Tracer<'_>,
) -> Result<(ExecStats, Vec<(String, ggs_sim::stats::RegionStats)>), GgsError> {
    check_supported(app, config)?;
    let weighted;
    let graph = if app.needs_weights() && !graph.is_weighted() {
        weighted = graph.clone().with_hashed_weights(64);
        &weighted
    } else {
        graph
    };
    let workload = Workload::new(app, graph);
    let mut builder = Simulation::builder(spec.params.clone(), config.hw()).tracer(tracer);
    for (name, base, bytes) in workload.memory_map() {
        builder = builder.region(name, base, bytes);
    }
    let mut sim = builder.build();
    workload.generate(config.propagation, spec.params.tb_size, &mut |kernel| {
        sim.run_kernel(kernel);
    });
    let regions = sim.region_stats();
    Ok((sim.finish(), regions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn graph() -> Csr {
        GraphBuilder::new(1024)
            .edges((0..1023).map(|i| (i, i + 1)))
            .edges(
                (0..1024)
                    .map(|i| (i, (i * 37) % 1024))
                    .filter(|&(a, b)| a != b),
            )
            .symmetric(true)
            .build()
    }

    #[test]
    fn every_app_runs_on_every_supported_config() {
        let g = graph();
        let spec = ExperimentSpec::at_scale(0.05);
        for app in AppKind::ALL {
            for cfg in ggs_model::SystemConfig::all_for(app.algo_profile().traversal) {
                let stats = run_workload(app, &g, cfg, &spec);
                assert!(stats.total_cycles() > 0, "{app}/{cfg} produced no cycles");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn rejects_unsupported_propagation() {
        let g = graph();
        let spec = ExperimentSpec::default();
        let _ = run_workload(AppKind::Cc, &g, "SGR".parse().unwrap(), &spec);
    }

    #[test]
    fn traced_run_reports_unsupported_propagation_as_error() {
        let g = graph();
        let spec = ExperimentSpec::default();
        let err = run_workload_traced(
            AppKind::Cc,
            &g,
            "SGR".parse().unwrap(),
            &spec,
            ggs_trace::Tracer::off(),
        )
        .unwrap_err();
        assert!(matches!(err, GgsError::Unsupported { .. }));
        assert!(err.to_string().contains("does not support"));
    }

    #[test]
    fn spec_builder_validates_scale() {
        let spec = ExperimentSpec::builder().scale(0.05).build().unwrap();
        assert_eq!(spec.scale, 0.05);
        assert_eq!(spec, ExperimentSpec::at_scale(0.05));
        assert!(ExperimentSpec::builder().scale(0.0).build().is_err());
        assert!(ExperimentSpec::builder().scale(f64::NAN).build().is_err());
        assert!(ExperimentSpec::try_at_scale(-2.0).is_err());
    }

    #[test]
    fn spec_builder_accepts_explicit_params() {
        let params = ggs_sim::SystemParams::builder()
            .tb_size(128)
            .build()
            .unwrap();
        let spec = ExperimentSpec::builder()
            .params(params.clone())
            .build()
            .unwrap();
        assert_eq!(spec.params, params);
    }

    #[test]
    fn budgeted_run_reports_kernel_budget_breach_as_timeout() {
        let g = graph();
        let spec = ExperimentSpec::builder()
            .scale(0.05)
            .max_kernels(1)
            .build()
            .unwrap();
        let err = run_workload_budgeted(
            AppKind::Pr,
            &g,
            "SGR".parse().unwrap(),
            &spec,
            Tracer::off(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, GgsError::Budget(_)), "{err}");
        assert!(err.is_timeout() && !err.is_retryable());
        assert!(err.to_string().contains("kernel budget exhausted"));
    }

    #[test]
    fn budgeted_run_honors_wall_clock_deadline() {
        let g = graph();
        let spec = ExperimentSpec::at_scale(0.05);
        let deadline = Instant::now() - std::time::Duration::from_millis(1);
        let err = run_workload_budgeted(
            AppKind::Pr,
            &g,
            "SGR".parse().unwrap(),
            &spec,
            Tracer::off(),
            Some(deadline),
        )
        .unwrap_err();
        assert!(matches!(err, GgsError::Deadline { .. }), "{err}");
        assert!(err.is_timeout());
    }

    #[test]
    fn unlimited_budget_matches_untracked_run() {
        let g = graph();
        let spec = ExperimentSpec::at_scale(0.05);
        let cfg = "SGR".parse().unwrap();
        let budgeted =
            run_workload_budgeted(AppKind::Pr, &g, cfg, &spec, Tracer::off(), None).unwrap();
        let plain = run_workload(AppKind::Pr, &g, cfg, &spec);
        assert_eq!(budgeted.total_cycles(), plain.total_cycles());
    }

    #[test]
    fn stream_path_is_bit_identical_to_generate_path() {
        let g = graph();
        let spec = ExperimentSpec::at_scale(0.05);
        for (app, cfg) in [
            (AppKind::Pr, "TG0"),
            (AppKind::Sssp, "SD1"), // exercises the weighted clone
            (AppKind::Cc, "DDR"),
        ] {
            let cfg: ggs_model::SystemConfig = cfg.parse().unwrap();
            let stream = produce_trace_stream(app, &g, cfg.propagation, spec.params.tb_size);
            let cached =
                run_stream_budgeted(&stream, app, cfg, &spec, Tracer::off(), None).unwrap();
            let direct = run_workload_budgeted(app, &g, cfg, &spec, Tracer::off(), None).unwrap();
            assert_eq!(cached, direct, "{app}/{cfg}");
        }
    }

    #[test]
    fn stream_path_reports_budget_breach() {
        let g = graph();
        let spec = ExperimentSpec::builder()
            .scale(0.05)
            .max_kernels(1)
            .build()
            .unwrap();
        let cfg: ggs_model::SystemConfig = "SGR".parse().unwrap();
        let stream = produce_trace_stream(AppKind::Pr, &g, cfg.propagation, spec.params.tb_size);
        let err =
            run_stream_budgeted(&stream, AppKind::Pr, cfg, &spec, Tracer::off(), None).unwrap_err();
        assert!(matches!(err, GgsError::Budget(_)), "{err}");
    }

    #[test]
    fn sssp_weights_attached_automatically() {
        let g = graph();
        assert!(!g.is_weighted());
        let spec = ExperimentSpec::at_scale(0.05);
        let stats = run_workload(AppKind::Sssp, &g, "SG1".parse().unwrap(), &spec);
        assert!(stats.total_cycles() > 0);
    }

    #[test]
    fn profiled_run_attributes_every_graph_walk() {
        let g = graph();
        let spec = ExperimentSpec::at_scale(0.05);
        let (stats, regions) =
            run_workload_profiled(AppKind::Pr, &g, "SGR".parse().unwrap(), &spec);
        assert!(stats.total_cycles() > 0);
        let by_name = |n: &str| {
            regions
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, s)| *s)
                .expect("region present")
        };
        // Push PR walks col_idx and atomically updates one rank buffer
        // per iteration.
        assert!(by_name("col_idx").loads > 0);
        let rank_atomics = by_name("rank_a").atomics + by_name("rank_b").atomics;
        assert_eq!(
            rank_atomics,
            g.num_edges() * u64::from(ggs_apps::pr::ITERATIONS),
        );
        // No atomics ever hit the read-only CSR arrays.
        assert_eq!(by_name("col_idx").atomics, 0);
        assert_eq!(by_name("row_ptr").atomics, 0);
    }

    #[test]
    fn drf0_push_is_slowest_push_variant() {
        // The paper shows DRF0 performs poorly for all push configs
        // (§VI): heavy atomics + full invalidate/flush per atomic.
        let g = graph();
        let spec = ExperimentSpec::at_scale(0.05);
        let t0 = run_workload(AppKind::Pr, &g, "SG0".parse().unwrap(), &spec).total_cycles();
        let t1 = run_workload(AppKind::Pr, &g, "SG1".parse().unwrap(), &spec).total_cycles();
        let tr = run_workload(AppKind::Pr, &g, "SGR".parse().unwrap(), &spec).total_cycles();
        assert!(t0 > t1, "DRF0 ({t0}) must be slower than DRF1 ({t1})");
        assert!(t1 >= tr, "DRF1 ({t1}) must not beat DRFrlx ({tr})");
    }
}
