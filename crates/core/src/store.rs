//! Durable, crash-safe, content-addressed result store shared across
//! studies and processes.
//!
//! The PR 3 journal (`crate::runner::Journal`) checkpoints one study
//! into one JSONL file. The ROADMAP's sweep-as-a-service item needs
//! more: repeated cells must be *simulated once, ever*, across many
//! `repro study` / `repro bench` invocations, possibly running
//! concurrently, and the file they share must survive being killed
//! mid-write, truncated, or bit-flipped. [`Store`] is that shared
//! substrate:
//!
//! * **Content addressing** — records are keyed by the
//!   [`crate::runner::spec_hash`] of the experiment (app set, graph
//!   set, configuration set, scale, budgets) mixed with the crate
//!   version ([`CODE_VERSION`]), so results produced by a different
//!   spec *or a different simulator build* never silently mix.
//! * **Crash safety** — the on-disk format is length-framed and
//!   checksummed per record ([format](#on-disk-format)); torn,
//!   truncated, or bit-flipped records are detected, skipped, and
//!   *reported* ([`StoreLoadReport`]) rather than trusted or fatal.
//!   Loading never panics. Opening the store for writing repairs a
//!   torn tail by truncating it to the last intact frame, so appends
//!   after a crash stay parseable.
//! * **Multi-process safety** — appends and claims serialize through
//!   an advisory lock file (owner pid + timestamp, expiry-based
//!   stale reclaim, bounded-backoff retry with seeded jitter via
//!   [`crate::runner::RetryPolicy`]); per-cell *lease* records let N
//!   concurrent processes partition a sweep without simulating any
//!   cell twice ([`Store::try_claim`]).
//! * **Compaction** — [`Store::compact`] rewrites the store to only
//!   the newest result per cell via write-to-temp + atomic rename, so
//!   a crash during compaction leaves either the old or the new file,
//!   never a hybrid.
//!
//! # On-disk format
//!
//! ```text
//! header  := b"GGSSTOR1" version:u32le reserved:u32le          (16 bytes)
//! record  := magic:u32le len:u32le crc:u32le payload[len]
//! magic   == 0x52_52_47_47 ("GGRR")
//! crc     == FNV-1a-32 of payload
//! payload == one compact JSON object (see `Record`)
//! ```
//!
//! A reader that fails to frame a record (bad magic, absurd length,
//! checksum mismatch, unparseable payload, or bytes missing at the
//! tail) resynchronizes by scanning forward for the next record magic
//! and reports the skipped span, so one corrupt record never takes
//! down the rest of the file.
//!
//! Fault injection for all of the above lives in [`StoreFaults`]; the
//! crash-recovery guarantees are held by `crates/core/tests/store_crash.rs`
//! and documented in `docs/robustness.md`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::GgsError;
use crate::json::{self, Value};
use crate::runner::RetryPolicy;
use crate::study::ResultRow;

/// File magic: the first eight bytes of every store file.
pub const STORE_MAGIC: [u8; 8] = *b"GGSSTOR1";

/// On-disk format version. Bump on incompatible layout changes; a
/// mismatched version is a hard [`GgsError::StoreFormat`] error (the
/// file is *not* rewritten — refusing to guess beats corrupting data
/// written by a newer build).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Per-record frame magic (`"GGRR"` little-endian), the
/// resynchronization anchor for corrupt-region recovery.
pub const RECORD_MAGIC: u32 = 0x5252_4747;

/// Code version mixed into every store key. Results are only reusable
/// by the simulator build that produced them: golden statistics are
/// pinned per version, so a version bump invalidates (without
/// deleting) older records.
pub const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Upper bound on a record payload; a framed length beyond this is
/// treated as corruption, which keeps a bit-flipped length field from
/// swallowing the rest of the file.
const MAX_RECORD_LEN: u32 = 1 << 20;

const HEADER_LEN: usize = 16;
const FRAME_LEN: usize = 12;

/// How long a lock file may exist before another process may presume
/// its owner dead and reclaim it.
const LOCK_STALE_MS: u64 = 10_000;

fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Mixes a study's spec hash with [`CODE_VERSION`]: the content
/// address under which this build's results are stored and looked up.
pub fn versioned_spec_hash(spec_hash: &str) -> String {
    let text = format!("{spec_hash}|code={CODE_VERSION}|fmt={STORE_FORMAT_VERSION}");
    format!("{:016x}", fnv1a64(text.as_bytes()))
}

/// One logical record of the store file.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed cell result: the durable payload.
    Result {
        /// Versioned spec hash the result belongs to.
        spec_hash: String,
        /// Application mnemonic.
        app: String,
        /// Graph mnemonic.
        graph: String,
        /// The cell's result row.
        row: ResultRow,
    },
    /// A per-cell lease: `owner` is simulating `key`; other processes
    /// must not start it until the lease expires or is released.
    Lease {
        /// Versioned spec hash the lease belongs to.
        spec_hash: String,
        /// `APP/GRAPH/CONFIG` cell key.
        key: String,
        /// Owning process id.
        owner: u32,
        /// Heartbeat timestamp, ms since the Unix epoch.
        acquired_ms: u64,
        /// Time-to-live; the lease expires at `acquired_ms + ttl_ms`.
        ttl_ms: u64,
    },
    /// An explicit lease release (a cell that failed rather than
    /// producing a result; results release implicitly).
    Release {
        /// Versioned spec hash the release belongs to.
        spec_hash: String,
        /// `APP/GRAPH/CONFIG` cell key.
        key: String,
        /// Process id that held the lease.
        owner: u32,
    },
}

impl Record {
    fn cell_key(app: &str, graph: &str, config: &str) -> String {
        format!("{app}/{graph}/{config}")
    }

    /// Serializes the record as its compact JSON payload.
    pub fn payload(&self) -> String {
        let obj = match self {
            Record::Result {
                spec_hash,
                app,
                graph,
                row,
            } => {
                let fractions = row.fractions.iter().map(|&f| Value::Number(f)).collect();
                BTreeMap::from([
                    ("kind".to_owned(), Value::String("result".to_owned())),
                    ("spec_hash".to_owned(), Value::String(spec_hash.clone())),
                    ("app".to_owned(), Value::String(app.clone())),
                    ("graph".to_owned(), Value::String(graph.clone())),
                    ("config".to_owned(), Value::String(row.config.clone())),
                    (
                        "total_cycles".to_owned(),
                        Value::Number(row.total_cycles as f64),
                    ),
                    ("fractions".to_owned(), Value::Array(fractions)),
                ])
            }
            Record::Lease {
                spec_hash,
                key,
                owner,
                acquired_ms,
                ttl_ms,
            } => BTreeMap::from([
                ("kind".to_owned(), Value::String("lease".to_owned())),
                ("spec_hash".to_owned(), Value::String(spec_hash.clone())),
                ("key".to_owned(), Value::String(key.clone())),
                ("owner".to_owned(), Value::Number(f64::from(*owner))),
                ("acquired_ms".to_owned(), Value::Number(*acquired_ms as f64)),
                ("ttl_ms".to_owned(), Value::Number(*ttl_ms as f64)),
            ]),
            Record::Release {
                spec_hash,
                key,
                owner,
            } => BTreeMap::from([
                ("kind".to_owned(), Value::String("release".to_owned())),
                ("spec_hash".to_owned(), Value::String(spec_hash.clone())),
                ("key".to_owned(), Value::String(key.clone())),
                ("owner".to_owned(), Value::Number(f64::from(*owner))),
            ]),
        };
        Value::Object(obj).to_string_compact()
    }

    /// Parses a record payload; `None` on anything malformed (the
    /// caller reports it as corruption).
    pub fn parse(payload: &str) -> Option<Record> {
        let v = json::parse(payload).ok()?;
        let s = |key: &str| v.get(key).and_then(Value::as_str).map(str::to_owned);
        match v.get("kind").and_then(Value::as_str)? {
            "result" => {
                let fracs = v.get("fractions").and_then(Value::as_array)?;
                if fracs.len() != 5 {
                    return None;
                }
                let mut fractions = [0.0f64; 5];
                for (slot, f) in fractions.iter_mut().zip(fracs) {
                    *slot = f.as_f64()?;
                }
                Some(Record::Result {
                    spec_hash: s("spec_hash")?,
                    app: s("app")?,
                    graph: s("graph")?,
                    row: ResultRow {
                        config: s("config")?,
                        total_cycles: v.get("total_cycles").and_then(Value::as_u64)?,
                        fractions,
                    },
                })
            }
            "lease" => Some(Record::Lease {
                spec_hash: s("spec_hash")?,
                key: s("key")?,
                owner: v.get("owner").and_then(Value::as_u64)? as u32,
                acquired_ms: v.get("acquired_ms").and_then(Value::as_u64)?,
                ttl_ms: v.get("ttl_ms").and_then(Value::as_u64)?,
            }),
            "release" => Some(Record::Release {
                spec_hash: s("spec_hash")?,
                key: s("key")?,
                owner: v.get("owner").and_then(Value::as_u64)? as u32,
            }),
            _ => None,
        }
    }

    /// Frames the record for appending: magic, length, checksum,
    /// payload.
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.payload();
        let bytes = payload.as_bytes();
        let mut out = Vec::with_capacity(FRAME_LEN + bytes.len());
        out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a32(bytes).to_le_bytes());
        out.extend_from_slice(bytes);
        out
    }
}

/// A corrupt span encountered while scanning the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptSpan {
    /// Byte offset the span starts at.
    pub offset: u64,
    /// Bytes skipped before the scanner resynchronized (or reached
    /// the end of the file).
    pub bytes: u64,
    /// What went wrong, for the human report.
    pub detail: &'static str,
}

/// What a tolerant load observed, surfaced so corruption is visible
/// instead of silent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreLoadReport {
    /// Records decoded successfully.
    pub records: usize,
    /// Corrupt spans skipped (torn/truncated/bit-flipped records).
    pub corrupt: Vec<CorruptSpan>,
    /// Offset one past the last intact frame; open-for-write repair
    /// truncates trailing garbage back to this point.
    pub valid_end: u64,
}

impl StoreLoadReport {
    /// Total bytes skipped as corrupt.
    pub fn corrupt_bytes(&self) -> u64 {
        self.corrupt.iter().map(|c| c.bytes).sum()
    }
}

/// The store's replayed logical state plus the load report.
#[derive(Debug, Clone, Default)]
pub struct StoreSnapshot {
    /// Latest result per `(spec_hash, cell key)`; later records win.
    results: BTreeMap<(String, String), ResultRow>,
    /// Live (unreleased, unsuperseded) leases per `(spec_hash, key)`.
    leases: BTreeMap<(String, String), (u32, u64, u64)>,
    /// What the scan observed.
    pub report: StoreLoadReport,
}

impl StoreSnapshot {
    fn replay(&mut self, record: Record) {
        match record {
            Record::Result {
                spec_hash,
                app,
                graph,
                row,
            } => {
                let key = Record::cell_key(&app, &graph, &row.config);
                self.leases.remove(&(spec_hash.clone(), key.clone()));
                self.results.insert((spec_hash, key), row);
            }
            Record::Lease {
                spec_hash,
                key,
                owner,
                acquired_ms,
                ttl_ms,
            } => {
                self.leases
                    .insert((spec_hash, key), (owner, acquired_ms, ttl_ms));
            }
            Record::Release {
                spec_hash,
                key,
                owner,
            } => {
                if self
                    .leases
                    .get(&(spec_hash.clone(), key.clone()))
                    .map(|l| l.0)
                    == Some(owner)
                {
                    self.leases.remove(&(spec_hash, key));
                }
            }
        }
    }

    /// The completed cells recorded under `spec_hash`, keyed by
    /// `APP/GRAPH/CONFIG`.
    pub fn completed_for(&self, spec_hash: &str) -> BTreeMap<String, ResultRow> {
        self.results
            .iter()
            .filter(|((h, _), _)| h == spec_hash)
            .map(|((_, k), row)| (k.clone(), row.clone()))
            .collect()
    }

    /// The result for one cell, if present.
    pub fn lookup(&self, spec_hash: &str, key: &str) -> Option<&ResultRow> {
        self.results.get(&(spec_hash.to_owned(), key.to_owned()))
    }

    /// The live lease on `key` at wall-clock `now_ms`, if any.
    pub fn live_lease(&self, spec_hash: &str, key: &str, now_ms: u64) -> Option<StoreLease> {
        let &(owner, acquired_ms, ttl_ms) =
            self.leases.get(&(spec_hash.to_owned(), key.to_owned()))?;
        if now_ms >= acquired_ms.saturating_add(ttl_ms) {
            return None;
        }
        Some(StoreLease {
            owner,
            acquired_ms,
            ttl_ms,
        })
    }

    /// Total distinct results across every spec hash.
    pub fn total_results(&self) -> usize {
        self.results.len()
    }
}

/// A live lease, as seen by another process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLease {
    /// Owning process id.
    pub owner: u32,
    /// When the lease was taken, ms since the Unix epoch.
    pub acquired_ms: u64,
    /// Lease time-to-live in ms.
    pub ttl_ms: u64,
}

impl StoreLease {
    /// Milliseconds until this lease expires at `now_ms` (0 if already
    /// expired).
    pub fn expires_in_ms(&self, now_ms: u64) -> u64 {
        self.acquired_ms
            .saturating_add(self.ttl_ms)
            .saturating_sub(now_ms)
    }
}

/// Outcome of a claim attempt ([`Store::try_claim`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Claim {
    /// The cell already has a result; no simulation needed.
    Done(ResultRow),
    /// This process now holds the lease and must simulate the cell.
    Claimed,
    /// Another live process holds the lease; poll again later.
    Busy(StoreLease),
}

/// Deliberate store-level failure modes, extending the PR 3 fault
/// plumbing down into the persistence layer (tests and the CI store
/// smoke). All counters are one-shot/decrementing and shared behind an
/// `Arc`, so a cloned handle observes the same budget.
#[derive(Debug, Clone)]
pub struct StoreFaults {
    inner: Arc<StoreFaultsInner>,
}

impl Default for StoreFaults {
    fn default() -> Self {
        Self::none()
    }
}

#[derive(Debug, Default)]
struct StoreFaultsInner {
    /// Cut the next *result* append after writing this many bytes of
    /// the frame, then report an I/O error (simulates dying mid-write).
    /// `u64::MAX` = disarmed.
    torn_write_at: AtomicU64,
    /// Flip the checksum of the next N result appends (simulates a
    /// bit flip that fsync cannot catch; the write itself "succeeds").
    crc_flips: AtomicU32,
    /// Fail the next N lock acquisitions with an I/O error.
    lock_failures: AtomicU32,
}

impl StoreFaults {
    /// No faults.
    pub fn none() -> Self {
        let inner = StoreFaultsInner {
            torn_write_at: AtomicU64::new(u64::MAX),
            crc_flips: AtomicU32::new(0),
            lock_failures: AtomicU32::new(0),
        };
        Self {
            inner: Arc::new(inner),
        }
    }

    /// Arm a torn write: the next result append stops after `at`
    /// bytes of the frame and reports an I/O error. `at = 0` models a
    /// crash before anything hit the disk; a value inside the frame
    /// models a torn tail.
    pub fn torn_write(self, at: u64) -> Self {
        self.inner.torn_write_at.store(at, Ordering::Relaxed);
        self
    }

    /// Arm `n` checksum flips on upcoming result appends.
    pub fn crc_flips(self, n: u32) -> Self {
        self.inner.crc_flips.store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` lock-acquire failures.
    pub fn lock_failures(self, n: u32) -> Self {
        self.inner.lock_failures.store(n, Ordering::Relaxed);
        self
    }

    /// Parses a CLI store-fault spec: `torn[:BYTES]`, `short`, `crc`,
    /// or `lock` (see `repro study --inject-store-fault`).
    pub fn parse_spec(self, spec: &str) -> Result<Self, GgsError> {
        match spec.split_once(':') {
            Some(("torn", at)) => {
                let at = at.parse::<u64>().map_err(|_| {
                    GgsError::InvalidSpec(format!(
                        "torn store fault needs a byte count, got {at:?}"
                    ))
                })?;
                Ok(self.torn_write(at))
            }
            None if spec == "torn" => Ok(self.torn_write(FRAME_LEN as u64 + 7)),
            // A short write is a torn write that loses only the frame's
            // final byte: the length field promises more than arrived.
            None if spec == "short" => Ok(self.torn_write(u64::MAX - 1)),
            None if spec == "crc" => Ok(self.crc_flips(1)),
            None if spec == "lock" => Ok(self.lock_failures(2)),
            _ => Err(GgsError::InvalidSpec(format!(
                "unknown store fault {spec:?} (expected torn[:BYTES], short, crc, or lock)"
            ))),
        }
    }

    fn take_torn(&self) -> Option<u64> {
        let at = self.inner.torn_write_at.swap(u64::MAX, Ordering::Relaxed);
        (at != u64::MAX).then_some(at)
    }

    fn take_crc_flip(&self) -> bool {
        self.inner
            .crc_flips
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    fn take_lock_failure(&self) -> bool {
        self.inner
            .lock_failures
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// Report of one [`Store::compact`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Result records kept (latest per cell).
    pub kept_records: usize,
    /// Records dropped: superseded duplicates, leases, releases.
    pub dropped_records: usize,
    /// Corrupt spans dropped.
    pub dropped_corrupt: usize,
    /// Bytes reclaimed (old size − new size).
    pub reclaimed_bytes: u64,
}

impl fmt::Display for CompactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kept {} result(s), dropped {} record(s) and {} corrupt span(s), reclaimed {} bytes",
            self.kept_records, self.dropped_records, self.dropped_corrupt, self.reclaimed_bytes
        )
    }
}

/// A handle on one on-disk result store.
///
/// The handle is `Sync`: study worker threads share one `Store`, and
/// independent processes open their own handles on the same path. All
/// mutation serializes through the advisory lock file; the in-process
/// mutex merely keeps sibling threads from thrashing the lock.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    lock_path: PathBuf,
    owner: u32,
    lock_retry: RetryPolicy,
    faults: StoreFaults,
    /// Serializes lock-file acquisition among this process's threads.
    local: Mutex<()>,
}

impl Store {
    /// Opens (creating if absent) the store at `path` with no fault
    /// injection and the default lock retry policy.
    pub fn open(path: &Path) -> Result<Self, GgsError> {
        Self::open_with(path, StoreFaults::none())
    }

    /// Opens (creating if absent) the store at `path` with injected
    /// `faults`.
    ///
    /// Creation writes the magic + version header; opening an existing
    /// file validates it and repairs a torn tail (truncating trailing
    /// garbage back to the last intact frame) so later appends stay
    /// parseable. A file with the wrong magic or a newer format
    /// version is refused with [`GgsError::StoreFormat`].
    pub fn open_with(path: &Path, faults: StoreFaults) -> Result<Self, GgsError> {
        let owner = std::process::id();
        let store = Self {
            path: path.to_owned(),
            lock_path: lock_path_for(path),
            owner,
            // Lock holds are milliseconds; retry often, briefly, and
            // with per-process jitter so contending processes do not
            // hammer the lock in phase (docs/robustness.md).
            lock_retry: RetryPolicy {
                max_attempts: 64,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(50),
                jitter_seed: Some(u64::from(owner) ^ 0x9e37_79b9_7f4a_7c15),
            },
            faults,
            local: Mutex::new(()),
        };
        {
            let _lock = store.acquire_lock()?;
            store.ensure_header_locked()?;
            store.repair_tail_locked()?;
        }
        Ok(store)
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Overrides the lease owner id (defaults to the process id).
    /// Lets tests — and future in-process shard runners — model
    /// multiple independent claimants inside one process.
    pub fn with_owner(mut self, owner: u32) -> Self {
        self.owner = owner;
        self
    }

    /// Tolerantly loads the store: every intact record is replayed
    /// into a [`StoreSnapshot`]; torn/truncated/bit-flipped records
    /// are skipped and reported on `snapshot.report`. Never panics;
    /// errors only on unreadable files or a foreign/newer header.
    pub fn load(&self) -> Result<StoreSnapshot, GgsError> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(StoreSnapshot::default())
            }
            Err(e) => return Err(GgsError::Io(e)),
        };
        scan(&bytes)
    }

    /// Publishes a completed cell result (append + flush under the
    /// file lock). The result supersedes any lease on the cell.
    pub fn publish(
        &self,
        spec_hash: &str,
        app: &str,
        graph: &str,
        row: &ResultRow,
    ) -> Result<(), GgsError> {
        let record = Record::Result {
            spec_hash: spec_hash.to_owned(),
            app: app.to_owned(),
            graph: graph.to_owned(),
            row: row.clone(),
        };
        let _lock = self.acquire_lock_durable()?;
        self.append_locked(&record, true)
    }

    /// Attempts to claim cell `key` for this process: re-reads the
    /// store under the lock, and returns the existing result, a fresh
    /// lease, or the live competing lease. Expired leases are
    /// reclaimed (expiry-based recovery from crashed owners).
    pub fn try_claim(&self, spec_hash: &str, key: &str, ttl: Duration) -> Result<Claim, GgsError> {
        let _lock = self.acquire_lock()?;
        let snapshot = self.load()?;
        if let Some(row) = snapshot.lookup(spec_hash, key) {
            return Ok(Claim::Done(row.clone()));
        }
        let now = now_ms();
        if let Some(lease) = snapshot.live_lease(spec_hash, key, now) {
            if lease.owner != self.owner {
                return Ok(Claim::Busy(lease));
            }
        }
        let record = Record::Lease {
            spec_hash: spec_hash.to_owned(),
            key: key.to_owned(),
            owner: self.owner,
            acquired_ms: now,
            ttl_ms: ttl.as_millis() as u64,
        };
        self.append_locked(&record, false)?;
        Ok(Claim::Claimed)
    }

    /// Releases a lease this process holds on `key` (used when a
    /// claimed cell fails instead of producing a result, so other
    /// processes need not wait out the TTL). Best-effort by design.
    pub fn release(&self, spec_hash: &str, key: &str) -> Result<(), GgsError> {
        let record = Record::Release {
            spec_hash: spec_hash.to_owned(),
            key: key.to_owned(),
            owner: self.owner,
        };
        let _lock = self.acquire_lock()?;
        self.append_locked(&record, false)
    }

    /// Rewrites the store to only the newest result record per cell
    /// plus any unexpired leases, dropping superseded duplicates,
    /// releases, expired leases, and corrupt spans. The rewrite goes
    /// to a temporary sibling file, is flushed to disk, and replaces
    /// the store by atomic rename: a crash mid-compaction leaves the
    /// old file intact.
    pub fn compact(&self) -> Result<CompactReport, GgsError> {
        let _lock = self.acquire_lock()?;
        let old_len = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        let snapshot = self.load()?;
        let now = now_ms();

        let mut out = Vec::with_capacity(HEADER_LEN + snapshot.results.len() * 128);
        out.extend_from_slice(&STORE_MAGIC);
        out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let mut kept = 0usize;
        for ((spec_hash, key), row) in &snapshot.results {
            // The key embeds app/graph/config; recover app and graph
            // for the record from its first two segments.
            let mut parts = key.splitn(3, '/');
            let (Some(app), Some(graph), Some(_)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            out.extend_from_slice(
                &Record::Result {
                    spec_hash: spec_hash.clone(),
                    app: app.to_owned(),
                    graph: graph.to_owned(),
                    row: row.clone(),
                }
                .frame(),
            );
            kept += 1;
        }
        let mut live_leases = 0usize;
        for ((spec_hash, key), &(owner, acquired_ms, ttl_ms)) in &snapshot.leases {
            if now >= acquired_ms.saturating_add(ttl_ms) {
                continue; // expired: reclaimable, drop it
            }
            out.extend_from_slice(
                &Record::Lease {
                    spec_hash: spec_hash.clone(),
                    key: key.clone(),
                    owner,
                    acquired_ms,
                    ttl_ms,
                }
                .frame(),
            );
            live_leases += 1;
        }

        let tmp = self.path.with_extension("tmp");
        let mut file = File::create(&tmp)?;
        file.write_all(&out)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, &self.path)?;

        let total_replayed = snapshot.report.records;
        Ok(CompactReport {
            kept_records: kept,
            dropped_records: total_replayed - kept - live_leases,
            dropped_corrupt: snapshot.report.corrupt.len(),
            reclaimed_bytes: old_len.saturating_sub(out.len() as u64),
        })
    }

    // ---- internals ----------------------------------------------------

    /// Writes the header if the file is missing or empty. Must hold
    /// the lock.
    fn ensure_header_locked(&self) -> Result<(), GgsError> {
        let len = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if len == 0 {
            let mut file = File::create(&self.path)?;
            file.write_all(&STORE_MAGIC)?;
            file.write_all(&STORE_FORMAT_VERSION.to_le_bytes())?;
            file.write_all(&0u32.to_le_bytes())?;
            file.sync_all()?;
            return Ok(());
        }
        // Validate an existing header (scan() re-validates on load;
        // this catches foreign files before we ever append to them).
        let mut head = [0u8; HEADER_LEN];
        let mut file = File::open(&self.path)?;
        let got = file.read(&mut head)?;
        let consumed = check_header(&head[..got])?;
        if consumed < HEADER_LEN {
            // A crash tore the initial header write (magic prefix is
            // ours, but the header is incomplete). No record can have
            // followed it, so rewriting a fresh header loses nothing —
            // and without it every later append would be unreadable.
            drop(file);
            let mut file = File::create(&self.path)?;
            file.write_all(&STORE_MAGIC)?;
            file.write_all(&STORE_FORMAT_VERSION.to_le_bytes())?;
            file.write_all(&0u32.to_le_bytes())?;
            file.sync_all()?;
        }
        Ok(())
    }

    /// Truncates trailing garbage (a torn final write) back to the
    /// last intact frame, so appends after a crash remain parseable.
    /// Mid-file corruption is left in place — readers skip it — but a
    /// corrupt *tail* would corrupt every subsequent append. Must hold
    /// the lock.
    fn repair_tail_locked(&self) -> Result<(), GgsError> {
        let bytes = std::fs::read(&self.path)?;
        let snapshot = scan(&bytes)?;
        let valid_end = snapshot.report.valid_end;
        if valid_end < bytes.len() as u64 {
            let file = OpenOptions::new().write(true).open(&self.path)?;
            file.set_len(valid_end)?;
            file.sync_all()?;
        }
        Ok(())
    }

    /// Appends one framed record and flushes it. Must hold the lock.
    /// `durable` additionally fsyncs (used for results; leases and
    /// releases are advisory and survive on best effort).
    fn append_locked(&self, record: &Record, durable: bool) -> Result<(), GgsError> {
        let mut frame = record.frame();
        let is_result = matches!(record, Record::Result { .. });
        if is_result && self.faults.take_crc_flip() {
            // Corrupt the stored checksum; the write itself succeeds,
            // exactly like a bit flip between memory and platter.
            frame[8] ^= 0x01;
        }
        let torn = if is_result {
            self.faults.take_torn()
        } else {
            None
        };
        let mut file = OpenOptions::new().append(true).open(&self.path)?;
        if let Some(at) = torn {
            let cut = (at as usize).min(frame.len().saturating_sub(1));
            file.write_all(&frame[..cut])?;
            let _ = file.flush();
            let _ = file.sync_all();
            return Err(GgsError::Io(std::io::Error::other(format!(
                "injected torn write after {cut} of {} bytes",
                frame.len()
            ))));
        }
        file.write_all(&frame)?;
        file.flush()?;
        if durable {
            file.sync_all()?;
        }
        Ok(())
    }

    /// Acquires the advisory lock file with bounded, jittered backoff;
    /// stale locks (older than [`LOCK_STALE_MS`]) are reclaimed.
    fn acquire_lock(&self) -> Result<LockGuard<'_>, GgsError> {
        self.acquire_lock_impl(None)
    }

    /// Like [`Self::acquire_lock`], but retries until a wall-clock
    /// deadline instead of a bounded attempt count. Used on the
    /// publish path: a computed result in hand is worth far more than
    /// the wait, and giving up there would strand a lease whose
    /// expiry makes a peer re-simulate the cell. Stale-lock reclaim
    /// guarantees forward progress within [`LOCK_STALE_MS`] even if a
    /// competing holder died mid-append, so `2.5×` that bound means
    /// the deadline only fires on a genuinely wedged filesystem.
    fn acquire_lock_durable(&self) -> Result<LockGuard<'_>, GgsError> {
        let deadline = Instant::now() + Duration::from_millis(LOCK_STALE_MS.saturating_mul(5) / 2);
        self.acquire_lock_impl(Some(deadline))
    }

    fn acquire_lock_impl(&self, deadline: Option<Instant>) -> Result<LockGuard<'_>, GgsError> {
        let _local = self.local.lock().unwrap_or_else(|e| e.into_inner());
        if self.faults.take_lock_failure() {
            return Err(GgsError::StoreLock {
                detail: format!(
                    "injected lock-acquire failure on {}",
                    self.lock_path.display()
                ),
            });
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&self.lock_path)
            {
                Ok(mut file) => {
                    let _ = write!(
                        file,
                        "{{\"pid\":{},\"acquired_ms\":{}}}",
                        self.owner,
                        now_ms()
                    );
                    return Ok(LockGuard { store: self });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if self.lock_is_stale() {
                        // Best-effort reclaim; losing the race to
                        // another reclaimer just means one more retry.
                        let _ = std::fs::remove_file(&self.lock_path);
                        continue;
                    }
                    let exhausted = match deadline {
                        Some(deadline) => Instant::now() >= deadline,
                        None => attempt >= self.lock_retry.max_attempts,
                    };
                    if exhausted {
                        return Err(GgsError::StoreLock {
                            detail: format!(
                                "{} still held after {} attempts",
                                self.lock_path.display(),
                                attempt
                            ),
                        });
                    }
                    std::thread::sleep(self.lock_retry.backoff(attempt));
                }
                Err(e) => return Err(GgsError::Io(e)),
            }
        }
    }

    /// Whether the current lock file is older than [`LOCK_STALE_MS`]
    /// (its owner presumed dead mid-critical-section).
    fn lock_is_stale(&self) -> bool {
        let Ok(text) = std::fs::read_to_string(&self.lock_path) else {
            // Unreadable or already gone: retry will sort it out.
            return false;
        };
        let acquired = json::parse(&text)
            .ok()
            .and_then(|v| v.get("acquired_ms").and_then(Value::as_u64));
        match acquired {
            Some(t) => now_ms().saturating_sub(t) > LOCK_STALE_MS,
            // No owner record: a peer that just create_new'd the lock
            // has not written its record yet, so judge by file age —
            // reclaiming a freshly created empty lock would break
            // mutual exclusion mid-claim. A crash between create and
            // write leaves an *old* empty file, which this still
            // reclaims rather than wedging the store forever.
            None => std::fs::metadata(&self.lock_path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > Duration::from_millis(LOCK_STALE_MS)),
        }
    }
}

/// Derives the lock-file path: `store.bin` → `store.bin.lock`.
fn lock_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".lock");
    PathBuf::from(os)
}

/// RAII advisory-lock guard; removes the lock file on drop.
struct LockGuard<'a> {
    store: &'a Store,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.store.lock_path);
    }
}

/// Validates the 16-byte header. Returns the number of header bytes
/// consumed, or an error. A file shorter than the header that is a
/// *prefix* of a valid header is the killed-during-creation case and
/// reads as empty; anything else is a foreign file.
fn check_header(head: &[u8]) -> Result<usize, GgsError> {
    let magic_len = head.len().min(STORE_MAGIC.len());
    if head[..magic_len] != STORE_MAGIC[..magic_len] {
        return Err(GgsError::StoreFormat {
            detail: "bad magic (not a GGS result store)".to_owned(),
        });
    }
    if head.len() < HEADER_LEN {
        // Truncated during creation: tolerate as an empty store.
        return Ok(head.len());
    }
    let version = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    if version != STORE_FORMAT_VERSION {
        return Err(GgsError::StoreFormat {
            detail: format!("format version {version} (this build reads {STORE_FORMAT_VERSION})"),
        });
    }
    Ok(HEADER_LEN)
}

/// Tolerant scan of a whole store image: frames and replays every
/// intact record, resynchronizing on corruption. Never panics.
fn scan(bytes: &[u8]) -> Result<StoreSnapshot, GgsError> {
    let mut snapshot = StoreSnapshot::default();
    if bytes.is_empty() {
        return Ok(snapshot);
    }
    let consumed = check_header(bytes)?;
    let mut pos = consumed;
    snapshot.report.valid_end = pos as u64;
    if consumed < HEADER_LEN {
        // Truncated header: nothing else can follow.
        return Ok(snapshot);
    }

    while pos < bytes.len() {
        match frame_at(bytes, pos) {
            Ok((payload, next)) => {
                match Record::parse(payload) {
                    Some(record) => snapshot.replay(record),
                    None => snapshot.report.corrupt.push(CorruptSpan {
                        offset: pos as u64,
                        bytes: (next - pos) as u64,
                        detail: "framed record with unparseable payload",
                    }),
                }
                // Framing was intact either way, so it is safe to
                // append after this point.
                snapshot.report.records += usize::from(
                    snapshot
                        .report
                        .corrupt
                        .last()
                        .is_none_or(|c| c.offset != pos as u64),
                );
                snapshot.report.valid_end = next as u64;
                pos = next;
            }
            Err(detail) => {
                // Resynchronize: hunt for the next record magic.
                let resume = resync(bytes, pos + 1);
                snapshot.report.corrupt.push(CorruptSpan {
                    offset: pos as u64,
                    bytes: (resume - pos) as u64,
                    detail,
                });
                pos = resume;
            }
        }
    }
    Ok(snapshot)
}

/// Attempts to decode one frame at `pos`; returns the payload and the
/// offset one past the frame.
fn frame_at(bytes: &[u8], pos: usize) -> Result<(&str, usize), &'static str> {
    let header = bytes
        .get(pos..pos + FRAME_LEN)
        .ok_or("truncated frame header")?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != RECORD_MAGIC {
        return Err("bad record magic");
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_RECORD_LEN {
        return Err("implausible record length");
    }
    let crc = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    let payload = bytes
        .get(pos + FRAME_LEN..pos + FRAME_LEN + len as usize)
        .ok_or("truncated record payload")?;
    if fnv1a32(payload) != crc {
        return Err("checksum mismatch");
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "non-UTF-8 payload")?;
    Ok((payload, pos + FRAME_LEN + len as usize))
}

/// Finds the next plausible frame start at or after `from`.
fn resync(bytes: &[u8], from: usize) -> usize {
    let needle = RECORD_MAGIC.to_le_bytes();
    let mut pos = from;
    while pos + 4 <= bytes.len() {
        if bytes[pos..pos + 4] == needle {
            return pos;
        }
        pos += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ggs-store-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(lock_path_for(&path));
        path
    }

    fn row(config: &str, cycles: u64) -> ResultRow {
        ResultRow {
            config: config.to_owned(),
            total_cycles: cycles,
            fractions: [0.2, 0.2, 0.2, 0.2, 0.2],
        }
    }

    #[test]
    fn records_round_trip_through_frames() {
        for record in [
            Record::Result {
                spec_hash: "aa".into(),
                app: "PR".into(),
                graph: "AMZ".into(),
                row: row("SGR", 123),
            },
            Record::Lease {
                spec_hash: "aa".into(),
                key: "PR/AMZ/SGR".into(),
                owner: 7,
                acquired_ms: 1000,
                ttl_ms: 500,
            },
            Record::Release {
                spec_hash: "aa".into(),
                key: "PR/AMZ/SGR".into(),
                owner: 7,
            },
        ] {
            let frame = record.frame();
            let (payload, next) = frame_at(&frame, 0).expect("own frames decode");
            assert_eq!(next, frame.len());
            assert_eq!(Record::parse(payload), Some(record));
        }
    }

    #[test]
    fn publish_lookup_and_later_duplicates_win() {
        let path = temp_store("basic.store");
        let store = Store::open(&path).expect("open");
        store.publish("h1", "PR", "AMZ", &row("SGR", 100)).unwrap();
        store.publish("h1", "PR", "AMZ", &row("SGR", 200)).unwrap();
        store.publish("h2", "PR", "AMZ", &row("SGR", 300)).unwrap();
        let snap = store.load().unwrap();
        assert_eq!(snap.lookup("h1", "PR/AMZ/SGR"), Some(&row("SGR", 200)));
        assert_eq!(snap.lookup("h2", "PR/AMZ/SGR"), Some(&row("SGR", 300)));
        assert_eq!(snap.completed_for("h1").len(), 1);
        assert!(snap.report.corrupt.is_empty());
    }

    #[test]
    fn claim_lease_release_cycle() {
        let path = temp_store("lease.store");
        let store = Store::open(&path).expect("open");
        let ttl = Duration::from_secs(60);
        assert_eq!(
            store.try_claim("h", "PR/AMZ/SGR", ttl).unwrap(),
            Claim::Claimed
        );
        // Same process can always reclaim its own cell.
        assert_eq!(
            store.try_claim("h", "PR/AMZ/SGR", ttl).unwrap(),
            Claim::Claimed
        );
        store.release("h", "PR/AMZ/SGR").unwrap();
        let snap = store.load().unwrap();
        assert!(snap.live_lease("h", "PR/AMZ/SGR", now_ms()).is_none());
        // A published result answers later claims with Done.
        store.publish("h", "PR", "AMZ", &row("SGR", 42)).unwrap();
        assert_eq!(
            store.try_claim("h", "PR/AMZ/SGR", ttl).unwrap(),
            Claim::Done(row("SGR", 42))
        );
    }

    #[test]
    fn foreign_lease_blocks_until_expiry() {
        let path = temp_store("foreign-lease.store");
        let store = Store::open(&path).expect("open");
        // Forge a lease from another pid directly.
        let fresh = Record::Lease {
            spec_hash: "h".into(),
            key: "PR/AMZ/SGR".into(),
            owner: store.owner + 1,
            acquired_ms: now_ms(),
            ttl_ms: 60_000,
        };
        {
            let _lock = store.acquire_lock().unwrap();
            store.append_locked(&fresh, false).unwrap();
        }
        match store
            .try_claim("h", "PR/AMZ/SGR", Duration::from_secs(1))
            .unwrap()
        {
            Claim::Busy(lease) => {
                assert_eq!(lease.owner, store.owner + 1);
                assert!(lease.expires_in_ms(now_ms()) > 0);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // An expired foreign lease is reclaimed.
        let stale = Record::Lease {
            spec_hash: "h".into(),
            key: "PR/AMZ/DGR".into(),
            owner: store.owner + 1,
            acquired_ms: now_ms().saturating_sub(10_000),
            ttl_ms: 1,
        };
        {
            let _lock = store.acquire_lock().unwrap();
            store.append_locked(&stale, false).unwrap();
        }
        assert_eq!(
            store
                .try_claim("h", "PR/AMZ/DGR", Duration::from_secs(1))
                .unwrap(),
            Claim::Claimed
        );
    }

    #[test]
    fn corrupt_records_are_skipped_and_reported() {
        let path = temp_store("corrupt.store");
        let store = Store::open(&path).expect("open");
        for i in 0..4 {
            store
                .publish("h", "PR", "AMZ", &row(&format!("C{i}"), i))
                .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the second record's payload.
        let second = {
            let first_end = frame_at(&bytes, HEADER_LEN).unwrap().1;
            first_end + FRAME_LEN + 4
        };
        bytes[second] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let snap = store.load().unwrap();
        assert_eq!(snap.completed_for("h").len(), 3, "{:?}", snap.report);
        assert_eq!(snap.report.corrupt.len(), 1);
        assert!(snap.report.corrupt_bytes() > 0);
    }

    #[test]
    fn torn_tail_is_repaired_on_open() {
        let path = temp_store("torn.store");
        {
            let store = Store::open(&path).expect("open");
            store.publish("h", "PR", "AMZ", &row("SGR", 1)).unwrap();
            store.publish("h", "PR", "AMZ", &row("TG0", 2)).unwrap();
        }
        // Tear the final record mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        // Reopening repairs the tail; a fresh append then parses clean.
        let store = Store::open(&path).expect("reopen");
        store.publish("h", "PR", "AMZ", &row("SD1", 3)).unwrap();
        let snap = store.load().unwrap();
        assert!(snap.report.corrupt.is_empty(), "{:?}", snap.report);
        let completed = snap.completed_for("h");
        assert_eq!(
            completed.keys().cloned().collect::<Vec<_>>(),
            ["PR/AMZ/SD1", "PR/AMZ/SGR"]
        );
    }

    #[test]
    fn injected_faults_fire_once_each() {
        let path = temp_store("faults.store");
        let faults = StoreFaults::none()
            .torn_write(15)
            .crc_flips(1)
            .lock_failures(1);
        let store = Store::open_with(&path, faults).expect_err("lock fault fires on open");
        assert!(matches!(store, GgsError::StoreLock { .. }));

        let faults = StoreFaults::none();
        let store = Store::open_with(&path, faults.clone()).expect("open");
        // First publish: checksum flip — write succeeds, record is dead.
        let _ = faults.clone().crc_flips(1);
        store.publish("h", "PR", "AMZ", &row("SGR", 1)).unwrap();
        // Second publish: torn write — reported as an I/O error.
        let _ = faults.clone().torn_write(15);
        let err = store.publish("h", "PR", "AMZ", &row("TG0", 2)).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert!(err.is_retryable());
        // Both sabotaged records are detected and reported, not trusted.
        let snap = store.load().unwrap();
        assert_eq!(snap.completed_for("h").len(), 0, "{:?}", snap.report);
        assert_eq!(snap.report.corrupt.len(), 2, "{:?}", snap.report);
        // Reopening repairs the (entirely corrupt) tail; a clean publish
        // then loads without corruption.
        let store = Store::open(&path).expect("reopen repairs");
        store.publish("h", "PR", "AMZ", &row("SD1", 3)).unwrap();
        let snap = store.load().unwrap();
        assert_eq!(snap.completed_for("h").len(), 1, "{:?}", snap.report);
        assert!(snap.report.corrupt.is_empty(), "{:?}", snap.report);
    }

    #[test]
    fn foreign_and_newer_files_are_refused() {
        let path = temp_store("foreign.bin");
        std::fs::write(&path, b"definitely not a store file").unwrap();
        assert!(matches!(
            Store::open(&path),
            Err(GgsError::StoreFormat { .. })
        ));

        let path = temp_store("newer.store");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STORE_MAGIC);
        bytes.extend_from_slice(&(STORE_FORMAT_VERSION + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Store::open(&path),
            Err(GgsError::StoreFormat { .. })
        ));
    }

    #[test]
    fn compaction_keeps_latest_results_and_is_loadable() {
        let path = temp_store("compact.store");
        let store = Store::open(&path).expect("open");
        for i in 0..10 {
            store.publish("h", "PR", "AMZ", &row("SGR", i)).unwrap();
        }
        store
            .try_claim("h", "CC/RAJ/DGR", Duration::from_millis(1))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5)); // let the lease expire
        let before = std::fs::metadata(&path).unwrap().len();
        let report = store.compact().unwrap();
        assert_eq!(report.kept_records, 1);
        assert_eq!(report.dropped_records, 10); // 9 superseded + 1 expired lease
        assert!(report.reclaimed_bytes > 0);
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        let snap = store.load().unwrap();
        assert_eq!(snap.lookup("h", "PR/AMZ/SGR"), Some(&row("SGR", 9)));
        assert!(snap.report.corrupt.is_empty());
    }

    #[test]
    fn stale_lock_files_are_reclaimed() {
        let path = temp_store("stale-lock.store");
        let store = Store::open(&path).expect("open");
        // Plant a lock from a "dead" process, acquired long ago.
        std::fs::write(
            lock_path_for(&path),
            format!(
                "{{\"pid\":999999,\"acquired_ms\":{}}}",
                now_ms() - LOCK_STALE_MS - 1
            ),
        )
        .unwrap();
        store.publish("h", "PR", "AMZ", &row("SGR", 1)).unwrap();
        // A *fresh* contentless lock is NOT stale: a peer that just
        // created it may not have written its owner record yet, and
        // reclaiming it would break mutual exclusion mid-claim.
        let lock = lock_path_for(&path);
        std::fs::write(&lock, "garbage").unwrap();
        assert!(!store.lock_is_stale());
        // Once the file itself is old (a crash between create and
        // write), garbage content is reclaimed like any stale lock.
        let old = std::time::SystemTime::now() - Duration::from_millis(LOCK_STALE_MS + 1_000);
        OpenOptions::new()
            .write(true)
            .open(&lock)
            .unwrap()
            .set_modified(old)
            .unwrap();
        assert!(store.lock_is_stale());
        store.publish("h", "PR", "AMZ", &row("TG0", 2)).unwrap();
        assert_eq!(store.load().unwrap().completed_for("h").len(), 2);
    }

    #[test]
    fn store_fault_specs_parse() {
        assert!(StoreFaults::none().parse_spec("torn").is_ok());
        assert!(StoreFaults::none().parse_spec("torn:40").is_ok());
        assert!(StoreFaults::none().parse_spec("short").is_ok());
        assert!(StoreFaults::none().parse_spec("crc").is_ok());
        assert!(StoreFaults::none().parse_spec("lock").is_ok());
        assert!(StoreFaults::none().parse_spec("meteor").is_err());
        assert!(StoreFaults::none().parse_spec("torn:x").is_err());
    }

    #[test]
    fn versioned_hash_is_stable_and_version_sensitive() {
        let a = versioned_spec_hash("deadbeef");
        assert_eq!(a, versioned_spec_hash("deadbeef"));
        assert_ne!(a, versioned_spec_hash("deadbeee"));
        assert_eq!(a.len(), 16);
    }
}
