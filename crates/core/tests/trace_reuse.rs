//! Sweep-level reuse acceptance tests (docs/performance.md,
//! "Sweep-level reuse"):
//!
//! * the kernel-trace stream of a cell is a pure function of
//!   (application, graph, direction, TB size): streams produced at
//!   different times, interleaved with simulations, are identical
//!   across every coherence × consistency cell sharing a direction,
//!   and replaying a shared stream is bit-identical to replaying a
//!   per-cell rebuild;
//! * a study builds each input graph exactly once per preset, however
//!   many configuration cells consume it (asserted via `graph_build`
//!   trace events);
//! * a study with the trace cache enabled is bit-identical to the
//!   same study with the cache disabled, and reports the expected
//!   hit/miss split.

use ggs_apps::AppKind;
use ggs_core::experiment::{produce_trace_stream, run_stream_budgeted, ExperimentSpec};
use ggs_core::runner::{run_study, StudyOptions};
use ggs_core::study::ConfigSet;
use ggs_core::MetricsRegistry;
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{Propagation, SystemConfig};
use ggs_trace::{JsonlSink, Tracer, NOOP};

const SCALE: f64 = 0.004;
const THREADS: usize = 8;

fn budgeted_spec() -> ExperimentSpec {
    ExperimentSpec::builder()
        .scale(SCALE)
        .max_kernels(256)
        .build()
        .expect("valid spec")
}

/// The six coherence × consistency cells sharing one traversal
/// direction.
fn configs_of(prop: Propagation) -> Vec<SystemConfig> {
    let dir = match prop {
        Propagation::Pull => 'T',
        Propagation::Push => 'S',
        Propagation::PushPull => 'D',
        Propagation::Hybrid => 'H',
    };
    let mut configs = Vec::new();
    for coh in ['G', 'D'] {
        for cons in ['0', '1', 'R'] {
            let code = format!("{dir}{coh}{cons}");
            configs.push(code.parse().expect("grid codes are valid"));
        }
    }
    configs
}

/// Satellite: per application and direction, the per-iteration kernel
/// trace stream is identical across every coherence × consistency
/// cell of that direction — rebuilt per cell (as an uncached sweep
/// would) or shared (as the `TraceCache` does), the streams and the
/// resulting stats agree exactly.
#[test]
fn streams_are_identical_across_cells_sharing_a_direction() {
    let graph = SynthConfig::preset(GraphPreset::Ols)
        .scale(SCALE)
        .generate();
    let spec = budgeted_spec();
    let tb = spec.params.tb_size;
    let apps = AppKind::ALL.into_iter().chain(AppKind::EXTENDED);
    for app in apps {
        for &prop in app.supported_propagations() {
            let shared = produce_trace_stream(app, &graph, prop, tb);
            for config in configs_of(prop) {
                // The stream a cell would build on its own, produced
                // *after* other cells of the grid already simulated —
                // byte-identical to the shared one.
                let fresh = produce_trace_stream(app, &graph, prop, tb);
                assert_eq!(
                    shared, fresh,
                    "{app:?}/{prop:?} stream differs across cells (config {config})"
                );
                let from_shared =
                    run_stream_budgeted(&shared, app, config, &spec, Tracer::off(), None)
                        .expect("grid cells are supported");
                let from_fresh =
                    run_stream_budgeted(&fresh, app, config, &spec, Tracer::off(), None)
                        .expect("grid cells are supported");
                assert_eq!(
                    from_shared, from_fresh,
                    "{app:?}/{config} stats differ between shared and per-cell streams"
                );
            }
        }
    }
}

/// Satellite: a full-grid study builds each graph preset exactly once;
/// every configuration cell shares the build via `Arc<Csr>`. Asserted
/// from the `graph_build` trace events the runner emits.
#[test]
fn a_full_study_builds_each_graph_exactly_once() {
    let sink = JsonlSink::new(Vec::new());
    let outcome = run_study(
        &budgeted_spec(),
        &StudyOptions::new(ConfigSet::Full, THREADS),
        &MetricsRegistry::new(),
        &sink,
    )
    .expect("study runs");
    assert!(outcome.study.failures.is_empty());
    let text = String::from_utf8(sink.into_inner()).expect("utf8 trace");
    let builds = text
        .lines()
        .filter(|l| l.contains("\"type\":\"graph_build\""))
        .count();
    assert_eq!(
        builds,
        GraphPreset::ALL.len(),
        "expected one graph build per preset"
    );
    // The full grid runs 12 static (6 dynamic) cells per workload over
    // two (one) traversal directions, so the trace cache misses once
    // per direction and hits on every sibling cell.
    let cache = outcome.trace_cache.expect("cache enabled by default");
    assert!(cache.hits > 0, "full grid must reuse cached streams");
    let hit_events = text
        .lines()
        .filter(|l| l.contains("\"type\":\"trace_cache_hit\""))
        .count() as u64;
    let miss_events = text
        .lines()
        .filter(|l| l.contains("\"type\":\"trace_cache_miss\""))
        .count() as u64;
    assert_eq!((cache.hits, cache.misses), (hit_events, miss_events));
    assert!(cache.misses < hit_events, "most lookups must hit");
}

/// Tentpole: hybrid streams occupy their own cache entries. A hybrid
/// lookup never returns a static push or pull stream of the same
/// (app, graph, TB size) — the realized direction schedule is part of
/// the key — and repeated hybrid lookups hit the entry built by the
/// first.
#[test]
fn hybrid_streams_cache_independently_of_static_directions() {
    use ggs_apps::Workload;
    use ggs_core::trace_cache::{StreamKey, TraceCache};
    use std::sync::Arc;

    let graph = SynthConfig::preset(GraphPreset::Ols)
        .scale(SCALE)
        .generate();
    let spec = budgeted_spec();
    let tb = spec.params.tb_size;
    let cache = TraceCache::new(64 * 1024 * 1024);
    let app = AppKind::Bfs;
    let workload = Workload::new(app, &graph);

    let fetch = |prop: Propagation| {
        cache.get_or_build(
            StreamKey::for_workload(&workload, prop, tb),
            "OLS",
            &NOOP,
            || 0,
            || Arc::new(produce_trace_stream(app, &graph, prop, tb)),
        )
    };
    let push = fetch(Propagation::Push);
    let pull = fetch(Propagation::Pull);
    let hybrid = fetch(Propagation::Hybrid);
    // Three directions, three distinct entries: every lookup so far was
    // a miss, and the hybrid stream is not an alias of either static
    // stream's cache entry.
    assert_eq!(cache.stats().misses, 3, "each direction builds its own");
    assert!(!Arc::ptr_eq(&hybrid, &push) && !Arc::ptr_eq(&hybrid, &pull));

    // A second hybrid lookup hits the hybrid entry (same Arc), while
    // the static entries stay untouched.
    let hybrid_again = fetch(Propagation::Hybrid);
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 3));
    assert!(Arc::ptr_eq(&hybrid, &hybrid_again));
}

/// Acceptance: the trace cache is a pure optimization — a study run
/// with it enabled is bit-identical to the same study with it
/// disabled.
#[test]
fn cached_study_is_bit_identical_to_uncached_study() {
    let spec = budgeted_spec();
    let cached_opts = StudyOptions::new(ConfigSet::Figure5, THREADS);
    assert!(cached_opts.trace_cache_bytes > 0, "cache is on by default");
    let mut uncached_opts = StudyOptions::new(ConfigSet::Figure5, THREADS);
    uncached_opts.trace_cache_bytes = 0;

    let cached =
        run_study(&spec, &cached_opts, &MetricsRegistry::new(), &NOOP).expect("cached study runs");
    let uncached = run_study(&spec, &uncached_opts, &MetricsRegistry::new(), &NOOP)
        .expect("uncached study runs");
    assert_eq!(cached.study, uncached.study);
    assert!(cached.trace_cache.is_some());
    assert!(uncached.trace_cache.is_none());
}
