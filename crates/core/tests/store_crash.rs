//! Crash-recovery and multi-runner harness for the content-addressed
//! result store (`ggs_core::store`, docs/robustness.md):
//!
//! * truncating a valid store at **every byte offset** never panics
//!   the loader and recovers exactly the records whose frames survived;
//! * a warm store answers a repeated study with **zero simulations**
//!   (asserted via trace events), byte-identical to the original run;
//! * a study sabotaged by injected panic + torn-write faults and then
//!   re-run from the store reproduces the uninterrupted results byte
//!   for byte, as does a re-run from a store truncated at adversarial
//!   offsets;
//! * two concurrent runners sharing one store complete the sweep with
//!   **no cell simulated twice**.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use ggs_core::runner::{run_study, CellStatus, Fault, FaultPlan, StudyOptions, StudyOutcome};
use ggs_core::store::{Store, StoreFaults};
use ggs_core::study::{ConfigSet, ResultRow};
use ggs_core::{ExperimentSpec, MetricsRegistry};
use ggs_trace::{JsonlSink, NOOP};

const SCALE: f64 = 0.004;
const THREADS: usize = 8;

fn budgeted_spec() -> ExperimentSpec {
    ExperimentSpec::builder()
        .scale(SCALE)
        .max_kernels(256)
        .build()
        .expect("valid spec")
}

fn options() -> StudyOptions {
    StudyOptions::new(ConfigSet::Figure5, THREADS)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ggs-store-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join(format!("{name}.lock")));
    path
}

fn store_options(path: &Path) -> StudyOptions {
    let mut o = options();
    o.store = Some(Store::open(path).expect("open store"));
    o
}

fn row(config: &str, cycles: u64) -> ResultRow {
    ResultRow {
        config: config.to_owned(),
        total_cycles: cycles,
        fractions: [0.5, 0.2, 0.1, 0.1, 0.1],
    }
}

/// Satellite: truncate a valid store at every byte offset. Loading must
/// never panic, and must recover exactly the records whose frames lie
/// entirely within the surviving prefix.
#[test]
fn truncation_at_every_byte_offset_never_panics_and_keeps_intact_records() {
    let path = temp_path("every-offset.store");
    let configs = ["SGR", "TG0", "SD1", "DGR", "SG0", "SDR", "TGR", "DG0"];
    let mut frame_ends: Vec<(u64, usize)> = Vec::new(); // (end offset, records so far)
    {
        let store = Store::open(&path).expect("create");
        for (i, cfg) in configs.iter().enumerate() {
            store
                .publish("hash", "PR", "AMZ", &row(cfg, 1000 + i as u64))
                .expect("publish");
            let len = std::fs::metadata(&path).expect("meta").len();
            frame_ends.push((len, i + 1));
        }
    }
    let bytes = std::fs::read(&path).expect("read full store");

    let cut_path = temp_path("every-offset-cut.store");
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncation");
        let _ = std::fs::remove_file(format!("{}.lock", cut_path.display()));
        // (a) open + load never panic, whatever the cut point.
        let store = Store::open(&cut_path).expect("truncations are tolerated, not fatal");
        let snapshot = store.load().expect("load never fails on a truncation");
        // (b) every record whose frame survived intact is recovered.
        let expect = frame_ends
            .iter()
            .take_while(|&&(end, _)| end <= cut as u64)
            .last()
            .map_or(0, |&(_, n)| n);
        assert_eq!(
            snapshot.completed_for("hash").len(),
            expect,
            "cut at byte {cut}"
        );
        assert!(snapshot.report.corrupt.is_empty(), "open repaired the tail");
    }
}

/// Acceptance: a completed study re-run against a warm store performs
/// zero simulations — every cell is a store hit — and the results are
/// byte-identical to the uninterrupted run.
#[test]
fn warm_store_rerun_simulates_nothing_and_is_byte_identical() {
    let spec = budgeted_spec();
    let clean = run_study(&spec, &options(), &MetricsRegistry::new(), &NOOP).expect("clean run");
    assert!(clean.study.failures.is_empty());

    let path = temp_path("warm.store");
    let cold = run_study(&spec, &store_options(&path), &MetricsRegistry::new(), &NOOP)
        .expect("cold store run");
    let (ok, failed, timeout, skipped) = cold.counts();
    assert_eq!((failed, timeout, skipped), (0, 0, 0));
    assert_eq!(ok, cold.cells.len());
    assert_eq!(cold.study, clean.study);

    // Warm re-run, traced: all hits, zero simulations.
    let sink = JsonlSink::new(Vec::new());
    let warm = run_study(&spec, &store_options(&path), &MetricsRegistry::new(), &sink)
        .expect("warm store run");
    let trace = String::from_utf8(sink.into_inner()).expect("utf8 trace");
    let (ok, failed, timeout, skipped) = warm.counts();
    assert_eq!((ok, failed, timeout), (0, 0, 0), "zero simulations");
    assert_eq!(skipped, warm.cells.len());
    assert_eq!(warm.study, clean.study);
    assert_eq!(warm.study.to_json(), clean.study.to_json());

    let count = |needle: &str| trace.lines().filter(|l| l.contains(needle)).count();
    assert_eq!(count("\"type\":\"store_hit\""), warm.cells.len());
    assert_eq!(count("\"type\":\"store_miss\""), 0);
    assert_eq!(count("\"status\":\"ok\""), 0, "no cell actually simulated");
    assert_eq!(count("\"type\":\"cell_start\""), warm.cells.len());
}

/// Acceptance: a study sabotaged by an injected cell panic *and* an
/// injected torn store write, then re-run from the store, reproduces
/// the uninterrupted results byte for byte.
#[test]
fn faulted_run_resumed_from_store_is_byte_identical() {
    let spec = budgeted_spec();
    let clean = run_study(&spec, &options(), &MetricsRegistry::new(), &NOOP).expect("clean run");

    let path = temp_path("faulted.store");
    let faults = StoreFaults::none().torn_write(20);
    let mut first = options();
    first.store = Some(Store::open_with(&path, faults).expect("open store"));
    first.faults = FaultPlan::new().inject("PR", "AMZ", "SGR", Fault::Panic);
    let first = run_study(&spec, &first, &MetricsRegistry::new(), &NOOP).expect("sabotaged run");
    let (_, failed, _, _) = first.counts();
    assert_eq!(failed, 1, "the injected panic fails exactly one cell");
    // The torn write left one simulated-but-unpersisted cell behind.
    let unpersisted: Vec<_> = first
        .cells
        .iter()
        .filter(|c| c.detail.contains("not persisted"))
        .collect();
    assert_eq!(unpersisted.len(), 1, "torn write degraded one publish");

    // Second run: reopening repairs the torn tail, the panicked and
    // unpersisted cells are re-simulated, everything else is a hit.
    let second = run_study(&spec, &store_options(&path), &MetricsRegistry::new(), &NOOP)
        .expect("recovery run");
    let (ok, failed, timeout, _) = second.counts();
    assert_eq!((failed, timeout), (0, 0));
    assert_eq!(ok, 2, "exactly the two damaged cells re-simulate");
    assert_eq!(second.study, clean.study);
    assert_eq!(second.study.to_json(), clean.study.to_json());
}

/// Satellite: resuming from a store truncated at adversarial offsets
/// (inside the header, mid-record, exactly on a frame boundary) still
/// reproduces the uninterrupted study byte for byte.
#[test]
fn truncated_store_resume_is_byte_identical() {
    let spec = budgeted_spec();
    let clean = run_study(&spec, &options(), &MetricsRegistry::new(), &NOOP).expect("clean run");

    let path = temp_path("truncate-resume.store");
    let warm = run_study(&spec, &store_options(&path), &MetricsRegistry::new(), &NOOP)
        .expect("warm-up run");
    assert!(warm.study.failures.is_empty());
    let bytes = std::fs::read(&path).expect("read store");

    // Offsets: inside the header, just past it, mid-file (mid-record
    // with near certainty), and one byte short of the full file.
    let cuts = [9usize, 17, bytes.len() / 2, bytes.len() - 1];
    for cut in cuts {
        let cut_path = temp_path("truncate-resume-cut.store");
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncation");
        let resumed = run_study(
            &spec,
            &store_options(&cut_path),
            &MetricsRegistry::new(),
            &NOOP,
        )
        .expect("resumed run");
        let (_, failed, timeout, _) = resumed.counts();
        assert_eq!((failed, timeout), (0, 0), "cut at byte {cut}");
        assert_eq!(resumed.study, clean.study, "cut at byte {cut}");
        assert_eq!(
            resumed.study.to_json(),
            clean.study.to_json(),
            "cut at byte {cut}"
        );
    }
}

/// Acceptance: two concurrent runners (distinct lease owners) sharing
/// one store complete the sweep with no cell simulated twice and both
/// reproduce the clean study.
#[test]
fn concurrent_runners_share_the_sweep_without_duplicating_cells() {
    let spec = budgeted_spec();
    let clean = run_study(&spec, &options(), &MetricsRegistry::new(), &NOOP).expect("clean run");

    let path = temp_path("concurrent.store");
    let mk_options = |owner: u32| {
        let mut o = StudyOptions::new(ConfigSet::Figure5, 4);
        o.store = Some(Store::open(&path).expect("open store").with_owner(owner));
        o
    };
    let (a, b) = std::thread::scope(|scope| {
        let spec_a = &spec;
        let ja = scope.spawn(move || {
            let o = mk_options(1001);
            run_study(spec_a, &o, &MetricsRegistry::new(), &NOOP).expect("runner A")
        });
        let spec_b = &spec;
        let jb = scope.spawn(move || {
            let o = mk_options(2002);
            run_study(spec_b, &o, &MetricsRegistry::new(), &NOOP).expect("runner B")
        });
        (ja.join().expect("A joins"), jb.join().expect("B joins"))
    });

    let simulated = |outcome: &StudyOutcome| -> BTreeSet<String> {
        outcome
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Ok)
            .map(|c| c.key())
            .collect()
    };
    let sim_a = simulated(&a);
    let sim_b = simulated(&b);
    assert!(
        sim_a.is_disjoint(&sim_b),
        "cells simulated twice: {:?}",
        sim_a.intersection(&sim_b).collect::<Vec<_>>()
    );
    let union: BTreeSet<_> = sim_a.union(&sim_b).cloned().collect();
    assert_eq!(
        union.len(),
        a.cells.len(),
        "every cell simulated exactly once"
    );

    // Both runners see the complete, identical study.
    assert_eq!(a.study, clean.study);
    assert_eq!(b.study, clean.study);

    // The store ends holding exactly one result per cell.
    let snapshot = Store::open(&path)
        .expect("reopen")
        .load()
        .expect("load final store");
    assert_eq!(snapshot.total_results(), a.cells.len());
}

/// An injected lock-acquire failure is transient: the claim retry
/// (bounded backoff with seeded jitter) recovers and the study still
/// completes with every cell accounted for.
#[test]
fn injected_lock_failures_are_retried_to_success() {
    let spec = budgeted_spec();
    let path = temp_path("lockfault.store");
    let faults = StoreFaults::none();
    let mut o = options();
    o.store = Some(Store::open_with(&path, faults.clone()).expect("open store"));
    // Arm after open so the failures hit claims, not setup.
    let _ = faults.clone().lock_failures(2);
    let outcome = run_study(&spec, &o, &MetricsRegistry::new(), &NOOP).expect("study completes");
    let (ok, failed, timeout, skipped) = outcome.counts();
    assert_eq!((failed, timeout, skipped), (0, 0, 0), "lock faults retried");
    assert_eq!(ok, outcome.cells.len());
}

/// Deterministic seeded jitter (satellite): reproducible per seed,
/// seed-sensitive, bounded to the upper half of the exponential slot,
/// and absent when unseeded.
#[test]
fn retry_backoff_jitter_is_deterministic_and_bounded() {
    use ggs_core::runner::RetryPolicy;
    use std::time::Duration;

    let unseeded = RetryPolicy::default();
    let seeded = RetryPolicy {
        jitter_seed: Some(42),
        ..RetryPolicy::default()
    };
    let reseeded = RetryPolicy {
        jitter_seed: Some(43),
        ..RetryPolicy::default()
    };
    let mut diverged = false;
    for attempt in 1..=10 {
        let slot = unseeded.backoff(attempt);
        let j = seeded.backoff(attempt);
        assert_eq!(j, seeded.backoff(attempt), "same seed, same sleep");
        assert!(j <= slot, "jitter never exceeds the exponential slot");
        assert!(j >= slot / 2, "jitter stays in the upper half-slot");
        assert!(j > Duration::ZERO);
        diverged |= reseeded.backoff(attempt) != j;
    }
    assert!(diverged, "different seeds must produce different schedules");
}

/// Journal corruption is counted, not silent (satellite): malformed
/// lines surface in the load result and the study outcome.
#[test]
fn journal_skipped_lines_are_counted_and_surfaced() {
    use ggs_core::runner::Journal;

    let spec = budgeted_spec();
    let journal_path = temp_path("skip-count.journal");
    let mut first = options();
    first.journal_path = Some(journal_path.clone());
    let first = run_study(&spec, &first, &MetricsRegistry::new(), &NOOP).expect("journaled run");
    assert!(first.study.failures.is_empty());

    // Corrupt the journal: one garbage line, one truncated JSON line.
    let mut text = std::fs::read_to_string(&journal_path).expect("read journal");
    let keep = text.lines().count();
    text.push_str("definitely-not-json\n");
    text.push_str("{\"app\":\"PR\",\"graph\":\"AMZ\"\n");
    std::fs::write(&journal_path, &text).expect("rewrite journal");

    let journal = Journal::load(&journal_path).expect("tolerant load");
    assert_eq!(journal.entries.len(), keep);
    assert_eq!(journal.skipped, 2, "both corrupt lines counted");

    let mut resumed = options();
    resumed.resume_from = Some(journal_path);
    let resumed = run_study(&spec, &resumed, &MetricsRegistry::new(), &NOOP).expect("resumed run");
    assert_eq!(resumed.journal_loaded, Some((keep, 2)));
    assert_eq!(resumed.study, first.study);
}
