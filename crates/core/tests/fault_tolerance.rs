//! Fault-injection and checkpoint/resume integration tests for the
//! study runner: a panicking cell and a hung cell must leave the other
//! workloads' results intact, and a study killed mid-run must resume
//! from its journal to byte-identical aggregate results.

use std::path::PathBuf;

use ggs_core::runner::{run_study, CellStatus, Fault, FaultPlan, StudyOptions};
use ggs_core::study::ConfigSet;
use ggs_core::{ExperimentSpec, MetricsRegistry};
use ggs_trace::NOOP;

const SCALE: f64 = 0.004;
const THREADS: usize = 8;

/// A spec whose kernel budget no legitimate cell can breach at this
/// scale (the largest clean cell launches ~24 kernels) but that stops
/// the `Hang` fault's kernel feed quickly.
fn budgeted_spec() -> ExperimentSpec {
    ExperimentSpec::builder()
        .scale(SCALE)
        .max_kernels(256)
        .build()
        .expect("valid spec")
}

fn options() -> StudyOptions {
    StudyOptions::new(ConfigSet::Figure5, THREADS)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ggs-fault-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn panicking_and_hanging_cells_leave_the_rest_intact() {
    let spec = budgeted_spec();
    let clean = run_study(&spec, &options(), &MetricsRegistry::new(), &NOOP).expect("clean run");
    assert!(clean.study.failures.is_empty());
    assert_eq!(clean.study.reports.len(), 36);

    let mut faulted_options = options();
    faulted_options.faults = FaultPlan::new()
        .inject("PR", "AMZ", "SGR", Fault::Panic)
        .inject("CC", "RAJ", "DGR", Fault::Hang);
    let faulted = run_study(&spec, &faulted_options, &MetricsRegistry::new(), &NOOP)
        .expect("faulted run completes");

    // Exactly the two injected cells are reported, with the right taxonomy.
    let failures = &faulted.study.failures;
    assert_eq!(failures.len(), 2, "failures: {failures:?}");
    let panic_cell = failures
        .iter()
        .find(|c| c.key() == "PR/AMZ/SGR")
        .expect("panicking cell reported");
    assert_eq!(panic_cell.status, CellStatus::Failed);
    assert!(panic_cell.detail.contains("injected fault"));
    assert_eq!(panic_cell.attempts, 1, "panics must fail fast, no retry");
    let hang_cell = failures
        .iter()
        .find(|c| c.key() == "CC/RAJ/DGR")
        .expect("hung cell reported");
    assert_eq!(hang_cell.status, CellStatus::Timeout);
    assert!(hang_cell.detail.contains("kernel budget exhausted"));

    // All 36 workloads still report; only the sabotaged ones lose a row.
    assert_eq!(faulted.study.reports.len(), 36);
    for clean_report in &clean.study.reports {
        let report = faulted
            .study
            .report(&clean_report.graph, &clean_report.app)
            .expect("workload present despite faults");
        for row in &report.rows {
            let clean_row = clean_report
                .rows
                .iter()
                .find(|r| r.config == row.config)
                .expect("row present in clean run");
            assert_eq!(row, clean_row, "surviving cell diverged from clean run");
        }
        let workload = format!("{}/{}", clean_report.app, clean_report.graph);
        let lost = clean_report.rows.len() - report.rows.len();
        let expected = usize::from(workload == "PR/AMZ" || workload == "CC/RAJ");
        assert_eq!(lost, expected, "{workload} lost {lost} rows");
    }

    let (ok, failed, timeout, skipped) = faulted.counts();
    assert_eq!((failed, timeout, skipped), (1, 1, 0));
    assert_eq!(ok + 2, clean.cells.len());
}

#[test]
fn transient_io_failures_are_retried_to_success() {
    let spec = budgeted_spec();
    let mut opts = options();
    opts.faults = FaultPlan::new().inject(
        "MIS",
        "EML",
        "SD1",
        Fault::TransientIo {
            remaining: std::sync::atomic::AtomicU32::new(2),
        },
    );
    let outcome = run_study(&spec, &opts, &MetricsRegistry::new(), &NOOP).expect("run completes");
    assert!(outcome.study.failures.is_empty(), "retries must succeed");
    let cell = outcome
        .cells
        .iter()
        .find(|c| c.key() == "MIS/EML/SD1")
        .expect("cell reported");
    assert_eq!(cell.status, CellStatus::Ok);
    assert_eq!(cell.attempts, 3, "two injected failures, then success");
}

#[test]
fn exhausted_retries_report_the_transient_error() {
    let spec = budgeted_spec();
    let mut opts = options();
    opts.retry.max_attempts = 2;
    opts.retry.base_backoff = std::time::Duration::from_millis(1);
    opts.faults = FaultPlan::new().inject(
        "MIS",
        "EML",
        "SD1",
        Fault::TransientIo {
            remaining: std::sync::atomic::AtomicU32::new(10),
        },
    );
    let outcome = run_study(&spec, &opts, &MetricsRegistry::new(), &NOOP).expect("run completes");
    let cell = outcome
        .cells
        .iter()
        .find(|c| c.key() == "MIS/EML/SD1")
        .expect("cell reported");
    assert_eq!(cell.status, CellStatus::Failed);
    assert_eq!(cell.attempts, 2);
    assert!(cell.detail.contains("injected transient I/O failure"));
    // The workload still reports with its other four configurations.
    let report = outcome
        .study
        .report("EML", "MIS")
        .expect("workload present");
    assert_eq!(report.rows.len(), 4);
}

#[test]
fn journal_resume_reproduces_uninterrupted_results_byte_for_byte() {
    let spec = budgeted_spec();
    let journal = temp_path("study.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Uninterrupted reference run.
    let clean = run_study(&spec, &options(), &MetricsRegistry::new(), &NOOP).expect("clean run");

    // "Killed" run: one cell panics partway; completed cells are
    // checkpointed as they finish.
    let mut opts = options();
    opts.journal_path = Some(journal.clone());
    opts.faults = FaultPlan::new().inject("BC", "OLS", "SG1", Fault::Panic);
    let interrupted =
        run_study(&spec, &opts, &MetricsRegistry::new(), &NOOP).expect("interrupted run");
    assert!(interrupted.journal_error.is_none());
    assert_eq!(interrupted.study.failures.len(), 1);

    // Simulate dying mid-write: drop the last 3 complete lines and
    // leave half of another as a truncated tail.
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    let complete = lines.len() - 3;
    let mut truncated = lines[..complete].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[complete][..lines[complete].len() / 2]);
    std::fs::write(&journal, truncated).expect("truncate journal");

    // Resume (fault gone — the panicking cell gets re-run too).
    let mut opts = options();
    opts.resume_from = Some(journal.clone());
    let resumed = run_study(&spec, &opts, &MetricsRegistry::new(), &NOOP).expect("resumed run");

    let (ok, failed, timeout, skipped) = resumed.counts();
    assert_eq!((failed, timeout), (0, 0));
    assert_eq!(
        skipped, complete,
        "every parseable journal line skips a cell"
    );
    assert_eq!(ok + skipped, clean.cells.len(), "only missing cells re-ran");

    // The aggregate is byte-identical to the uninterrupted run.
    assert_eq!(resumed.study, clean.study);
    assert_eq!(resumed.study.to_json(), clean.study.to_json());
}
