//! Structured observability for the GGS simulator stack.
//!
//! The paper's argument rests on *attributing* cycles — its stall taxonomy
//! and per-configuration traffic metrics explain why a coherence /
//! consistency / propagation-direction choice wins on a given workload.
//! This crate makes that attribution inspectable while a simulation runs,
//! instead of only through end-of-run aggregates:
//!
//! * [`TraceEvent`] — typed events covering kernel begin/end, per-round
//!   iteration boundaries, sampled per-SM stall-class transitions, L1/L2
//!   hit–miss–ownership counter deltas, NoC flit totals, and atomic
//!   acquire/release occurrences.
//! * [`TraceSink`] — where events go. [`NoopSink`] is the zero-cost
//!   default; [`JsonlSink`] writes one JSON object per line, and
//!   [`ChromeTraceSink`] writes a `chrome://tracing` / Perfetto-loadable
//!   trace-event file.
//! * [`Tracer`] — a `Copy` handle (`&dyn TraceSink` + sampling stride)
//!   that instrumented code threads through the stack. There is no global
//!   sink: injection is explicit, and a disabled tracer costs one boolean
//!   load per potential event.
//! * [`MetricsRegistry`] — named counters, histograms, and wall-clock
//!   phase spans that the study/sweep driver aggregates across its worker
//!   pool.
//!
//! # Example
//!
//! ```
//! use ggs_trace::{ChromeTraceSink, TraceEvent, TraceSink, Tracer};
//!
//! let sink = ChromeTraceSink::new(Vec::new());
//! let tracer = Tracer::new(&sink, 1000);
//! tracer.emit(&TraceEvent::KernelBegin { kernel: 0, cycle: 2000, blocks: 4, threads: 1024 });
//! tracer.emit(&TraceEvent::KernelEnd { kernel: 0, cycle: 9000 });
//! sink.finish().expect("in-memory write cannot fail");
//! let bytes = sink.into_inner();
//! assert!(String::from_utf8(bytes).unwrap().starts_with("{\"traceEvents\":["));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;
mod tracer;

pub use event::TraceEvent;
pub use metrics::{Histogram, MetricsRegistry, PhaseGuard, PhaseSpan};
pub use sink::{ChromeTraceSink, JsonlSink, NoopSink, TraceSink, NOOP};
pub use tracer::Tracer;
