//! Typed trace events and their JSONL / Chrome-trace serializations.

use std::fmt::Write as _;

/// A structured event emitted by an instrumented component.
///
/// Cycle fields are *simulated* GPU cycles (the engine clock), except for
/// [`TraceEvent::Phase`], whose timestamps are host wall-clock
/// microseconds relative to the owning [`crate::MetricsRegistry`]'s
/// creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A kernel launch reached the SMs (after launch overhead).
    KernelBegin {
        /// Zero-based kernel sequence number within the run.
        kernel: u64,
        /// Simulated cycle at which the kernel starts executing.
        cycle: u64,
        /// Number of thread blocks in the launch.
        blocks: u64,
        /// Number of threads in the launch.
        threads: u64,
    },
    /// A kernel finished draining.
    KernelEnd {
        /// Zero-based kernel sequence number within the run.
        kernel: u64,
        /// Simulated cycle at which the kernel (incl. drain) completed.
        cycle: u64,
    },
    /// A per-round iteration boundary (one kernel launch per round in
    /// level-synchronous graph workloads).
    Iteration {
        /// Zero-based round number (equals the kernel sequence number).
        round: u64,
        /// Simulated cycle at which the round was submitted.
        cycle: u64,
    },
    /// A sampled stall interval on one SM. Emitted at most once per
    /// sampling stride per SM, so high-frequency stalls are represented
    /// rather than enumerated.
    StallSample {
        /// SM identifier.
        sm: u32,
        /// Simulated cycle at which the stall began.
        cycle: u64,
        /// Stall class name (`Busy`/`Comp`/`Data`/`Sync`/`Idle`).
        class: &'static str,
        /// Length of the stalled interval in cycles.
        cycles: u64,
    },
    /// Per-kernel delta of the L1/L2 hit–miss–ownership counters.
    CacheCounters {
        /// Kernel the delta belongs to.
        kernel: u64,
        /// Simulated cycle at which the snapshot was taken (kernel end).
        cycle: u64,
        /// L1 load/store hits.
        l1_hits: u64,
        /// L1 load/store misses.
        l1_misses: u64,
        /// L2 hits.
        l2_hits: u64,
        /// L2 misses (memory accesses).
        l2_misses: u64,
        /// Atomics performed in L1 (DeNovo ownership hits).
        l1_atomics: u64,
        /// Atomics performed at L2.
        l2_atomics: u64,
        /// DeNovo ownership registrations at L2.
        registrations: u64,
        /// Remote-L1 ownership transfers.
        remote_transfers: u64,
        /// Lines invalidated by acquires (GPU coherence flushes).
        invalidations: u64,
    },
    /// Per-kernel NoC traffic totals.
    NocTotals {
        /// Kernel the delta belongs to.
        kernel: u64,
        /// Simulated cycle at which the snapshot was taken (kernel end).
        cycle: u64,
        /// Full cache-line payload transfers across the mesh.
        line_transfers: u64,
        /// Single-flit control messages (ownership requests/acks).
        control_messages: u64,
        /// Total flits moved (payload + header + control).
        flits: u64,
    },
    /// An atomic executed as a fence: release drain + acquire
    /// self-invalidation (DRF0 semantics).
    AcquireRelease {
        /// SM that issued the fence.
        sm: u32,
        /// Simulated cycle at which the fence issued.
        cycle: u64,
        /// Cycle up to which the SM's prior writes must drain.
        drain_to: u64,
    },
    /// A DeNovo ownership registration observed at L2 (sampled at the
    /// tracer stride).
    OwnershipTransfer {
        /// SM acquiring ownership.
        sm: u32,
        /// Simulated cycle of the registration.
        cycle: u64,
        /// Line address (byte address >> line shift).
        line: u64,
        /// Whether the line was owned by a *different* SM (remote
        /// transfer) rather than unowned / already local.
        remote: bool,
    },
    /// A host wall-clock phase span (study/sweep self-profile).
    Phase {
        /// Phase name (e.g. `generate-inputs`, `simulate`).
        name: String,
        /// Start, in microseconds since the registry was created.
        start_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A study cell (one workload × configuration point) started
    /// executing on a worker. Timestamps are host wall-clock
    /// microseconds relative to the study run's start.
    CellStart {
        /// Application mnemonic.
        app: String,
        /// Graph mnemonic.
        graph: String,
        /// Configuration code (`SGR`, `TG0`, …).
        config: String,
        /// Start, in microseconds since the study began.
        start_us: u64,
    },
    /// A study cell finished (successfully or not).
    CellFinish {
        /// Application mnemonic.
        app: String,
        /// Graph mnemonic.
        graph: String,
        /// Configuration code.
        config: String,
        /// Final status (`ok`/`failed`/`timeout`/`skipped`).
        status: &'static str,
        /// Number of execution attempts (1 unless retried).
        attempts: u32,
        /// Start, in microseconds since the study began.
        start_us: u64,
        /// Wall-clock duration of all attempts, in microseconds.
        dur_us: u64,
    },
    /// A study cell was answered from the result store without
    /// simulating (warm-store reuse). Timestamps are host wall-clock
    /// microseconds relative to the study run's start.
    StoreHit {
        /// `APP/GRAPH/CONFIG` cell key.
        key: String,
        /// When the hit resolved, in microseconds since the study began.
        at_us: u64,
    },
    /// A study cell was absent from the result store; a lease was taken
    /// and the cell will be simulated.
    StoreMiss {
        /// `APP/GRAPH/CONFIG` cell key.
        key: String,
        /// When the claim resolved, in microseconds since the study began.
        at_us: u64,
    },
    /// Store compaction dropped superseded / expired / corrupt data
    /// (atomic rewrite; see `ggs_core::store`).
    StoreEvict {
        /// Records dropped (superseded results, leases, releases).
        records: u64,
        /// Bytes reclaimed by the rewrite.
        bytes: u64,
        /// When compaction finished, in microseconds since the run began.
        at_us: u64,
    },
    /// A corrupt span was detected (and skipped) while scanning the
    /// result store: a torn, truncated, or bit-flipped record.
    StoreCorruption {
        /// Byte offset of the corrupt span in the store file.
        offset: u64,
        /// Bytes skipped before the scanner resynchronized.
        bytes: u64,
        /// When the scan observed it, in microseconds since the run began.
        at_us: u64,
    },
    /// An input graph was synthesized/loaded for a study (once per
    /// graph per study; every configuration cell shares the build via
    /// `Arc<Csr>`).
    GraphBuild {
        /// Graph mnemonic.
        graph: String,
        /// Vertex count of the built graph.
        vertices: u64,
        /// Edge count of the built graph.
        edges: u64,
        /// When the build finished, in microseconds since the run began.
        at_us: u64,
    },
    /// A workload's kernel-trace stream was served from the sweep-level
    /// `TraceCache` (another cell of the same app × graph × direction
    /// already built it).
    TraceCacheHit {
        /// `APP/GRAPH/PROP/TB` stream key.
        key: String,
        /// When the lookup resolved, in microseconds since the run began.
        at_us: u64,
    },
    /// A workload's kernel-trace stream was absent from the sweep-level
    /// `TraceCache`; this cell runs the functional producer and inserts
    /// the stream for its siblings.
    TraceCacheMiss {
        /// `APP/GRAPH/PROP/TB` stream key.
        key: String,
        /// When the lookup resolved, in microseconds since the run began.
        at_us: u64,
    },
    /// The sweep-level `TraceCache` evicted least-recently-used streams
    /// to stay under its byte budget.
    TraceCacheEvict {
        /// Cached streams dropped.
        streams: u64,
        /// Heap bytes released.
        bytes: u64,
        /// When the eviction ran, in microseconds since the run began.
        at_us: u64,
    },
}

impl TraceEvent {
    /// Machine-readable event kind, used as the `type` field in JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::KernelBegin { .. } => "kernel_begin",
            TraceEvent::KernelEnd { .. } => "kernel_end",
            TraceEvent::Iteration { .. } => "iteration",
            TraceEvent::StallSample { .. } => "stall_sample",
            TraceEvent::CacheCounters { .. } => "cache_counters",
            TraceEvent::NocTotals { .. } => "noc_totals",
            TraceEvent::AcquireRelease { .. } => "acquire_release",
            TraceEvent::OwnershipTransfer { .. } => "ownership_transfer",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::CellStart { .. } => "cell_start",
            TraceEvent::CellFinish { .. } => "cell_finish",
            TraceEvent::StoreHit { .. } => "store_hit",
            TraceEvent::StoreMiss { .. } => "store_miss",
            TraceEvent::StoreEvict { .. } => "store_evict",
            TraceEvent::StoreCorruption { .. } => "store_corruption",
            TraceEvent::GraphBuild { .. } => "graph_build",
            TraceEvent::TraceCacheHit { .. } => "trace_cache_hit",
            TraceEvent::TraceCacheMiss { .. } => "trace_cache_miss",
            TraceEvent::TraceCacheEvict { .. } => "trace_cache_evict",
        }
    }

    /// Event category, used as the Chrome-trace `cat` field.
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::KernelBegin { .. } | TraceEvent::KernelEnd { .. } => "kernel",
            TraceEvent::Iteration { .. } => "iter",
            TraceEvent::StallSample { .. } => "stall",
            TraceEvent::CacheCounters { .. } | TraceEvent::OwnershipTransfer { .. } => "cache",
            TraceEvent::NocTotals { .. } => "noc",
            TraceEvent::AcquireRelease { .. } => "sync",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::CellStart { .. } | TraceEvent::CellFinish { .. } => "cell",
            TraceEvent::StoreHit { .. }
            | TraceEvent::StoreMiss { .. }
            | TraceEvent::StoreEvict { .. }
            | TraceEvent::StoreCorruption { .. } => "store",
            TraceEvent::GraphBuild { .. }
            | TraceEvent::TraceCacheHit { .. }
            | TraceEvent::TraceCacheMiss { .. }
            | TraceEvent::TraceCacheEvict { .. } => "reuse",
        }
    }

    /// Timestamp of the event: simulated cycle, or microseconds for
    /// the host wall-clock events ([`TraceEvent::Phase`], the cell
    /// events, and the store events).
    pub fn timestamp(&self) -> u64 {
        match *self {
            TraceEvent::KernelBegin { cycle, .. }
            | TraceEvent::KernelEnd { cycle, .. }
            | TraceEvent::Iteration { cycle, .. }
            | TraceEvent::StallSample { cycle, .. }
            | TraceEvent::CacheCounters { cycle, .. }
            | TraceEvent::NocTotals { cycle, .. }
            | TraceEvent::AcquireRelease { cycle, .. }
            | TraceEvent::OwnershipTransfer { cycle, .. } => cycle,
            TraceEvent::Phase { start_us, .. }
            | TraceEvent::CellStart { start_us, .. }
            | TraceEvent::CellFinish { start_us, .. } => start_us,
            TraceEvent::StoreHit { at_us, .. }
            | TraceEvent::StoreMiss { at_us, .. }
            | TraceEvent::StoreEvict { at_us, .. }
            | TraceEvent::StoreCorruption { at_us, .. }
            | TraceEvent::GraphBuild { at_us, .. }
            | TraceEvent::TraceCacheHit { at_us, .. }
            | TraceEvent::TraceCacheMiss { at_us, .. }
            | TraceEvent::TraceCacheEvict { at_us, .. } => at_us,
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    ///
    /// Every line carries `type`, `cat`, and `cycle` (or `start_us` for
    /// phases) plus the event's own fields.
    pub fn jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"type\":\"{}\",\"cat\":\"{}\"",
            self.kind(),
            self.category()
        );
        match self {
            TraceEvent::KernelBegin {
                kernel,
                cycle,
                blocks,
                threads,
            } => {
                let _ = write!(
                    s,
                    ",\"cycle\":{cycle},\"kernel\":{kernel},\"blocks\":{blocks},\"threads\":{threads}"
                );
            }
            TraceEvent::KernelEnd { kernel, cycle } => {
                let _ = write!(s, ",\"cycle\":{cycle},\"kernel\":{kernel}");
            }
            TraceEvent::Iteration { round, cycle } => {
                let _ = write!(s, ",\"cycle\":{cycle},\"round\":{round}");
            }
            TraceEvent::StallSample {
                sm,
                cycle,
                class,
                cycles,
            } => {
                let _ = write!(
                    s,
                    ",\"cycle\":{cycle},\"sm\":{sm},\"class\":\"{class}\",\"cycles\":{cycles}"
                );
            }
            TraceEvent::CacheCounters {
                kernel,
                cycle,
                l1_hits,
                l1_misses,
                l2_hits,
                l2_misses,
                l1_atomics,
                l2_atomics,
                registrations,
                remote_transfers,
                invalidations,
            } => {
                let _ = write!(
                    s,
                    ",\"cycle\":{cycle},\"kernel\":{kernel},\"l1_hits\":{l1_hits},\
                     \"l1_misses\":{l1_misses},\"l2_hits\":{l2_hits},\"l2_misses\":{l2_misses},\
                     \"l1_atomics\":{l1_atomics},\"l2_atomics\":{l2_atomics},\
                     \"registrations\":{registrations},\"remote_transfers\":{remote_transfers},\
                     \"invalidations\":{invalidations}"
                );
            }
            TraceEvent::NocTotals {
                kernel,
                cycle,
                line_transfers,
                control_messages,
                flits,
            } => {
                let _ = write!(
                    s,
                    ",\"cycle\":{cycle},\"kernel\":{kernel},\"line_transfers\":{line_transfers},\
                     \"control_messages\":{control_messages},\"flits\":{flits}"
                );
            }
            TraceEvent::AcquireRelease {
                sm,
                cycle,
                drain_to,
            } => {
                let _ = write!(s, ",\"cycle\":{cycle},\"sm\":{sm},\"drain_to\":{drain_to}");
            }
            TraceEvent::OwnershipTransfer {
                sm,
                cycle,
                line,
                remote,
            } => {
                let _ = write!(
                    s,
                    ",\"cycle\":{cycle},\"sm\":{sm},\"line\":{line},\"remote\":{remote}"
                );
            }
            TraceEvent::Phase {
                name,
                start_us,
                dur_us,
            } => {
                let _ = write!(
                    s,
                    ",\"start_us\":{start_us},\"dur_us\":{dur_us},\"name\":\"{}\"",
                    escape(name)
                );
            }
            TraceEvent::CellStart {
                app,
                graph,
                config,
                start_us,
            } => {
                let _ = write!(
                    s,
                    ",\"start_us\":{start_us},\"app\":\"{}\",\"graph\":\"{}\",\"config\":\"{}\"",
                    escape(app),
                    escape(graph),
                    escape(config)
                );
            }
            TraceEvent::CellFinish {
                app,
                graph,
                config,
                status,
                attempts,
                start_us,
                dur_us,
            } => {
                let _ = write!(
                    s,
                    ",\"start_us\":{start_us},\"dur_us\":{dur_us},\"app\":\"{}\",\
                     \"graph\":\"{}\",\"config\":\"{}\",\"status\":\"{status}\",\
                     \"attempts\":{attempts}",
                    escape(app),
                    escape(graph),
                    escape(config)
                );
            }
            TraceEvent::StoreHit { key, at_us } | TraceEvent::StoreMiss { key, at_us } => {
                let _ = write!(s, ",\"at_us\":{at_us},\"key\":\"{}\"", escape(key));
            }
            TraceEvent::StoreEvict {
                records,
                bytes,
                at_us,
            } => {
                let _ = write!(
                    s,
                    ",\"at_us\":{at_us},\"records\":{records},\"bytes\":{bytes}"
                );
            }
            TraceEvent::StoreCorruption {
                offset,
                bytes,
                at_us,
            } => {
                let _ = write!(
                    s,
                    ",\"at_us\":{at_us},\"offset\":{offset},\"bytes\":{bytes}"
                );
            }
            TraceEvent::GraphBuild {
                graph,
                vertices,
                edges,
                at_us,
            } => {
                let _ = write!(
                    s,
                    ",\"at_us\":{at_us},\"graph\":\"{}\",\"vertices\":{vertices},\
                     \"edges\":{edges}",
                    escape(graph)
                );
            }
            TraceEvent::TraceCacheHit { key, at_us }
            | TraceEvent::TraceCacheMiss { key, at_us } => {
                let _ = write!(s, ",\"at_us\":{at_us},\"key\":\"{}\"", escape(key));
            }
            TraceEvent::TraceCacheEvict {
                streams,
                bytes,
                at_us,
            } => {
                let _ = write!(
                    s,
                    ",\"at_us\":{at_us},\"streams\":{streams},\"bytes\":{bytes}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Serialize as one Chrome trace-event object (no trailing comma).
    ///
    /// The mapping targets `chrome://tracing` / Perfetto conventions:
    /// kernels are `B`/`E` duration pairs on tid 0, stall samples are
    /// complete (`X`) events on per-SM tracks (tid = SM id + 1), counter
    /// snapshots are `C` events, and point occurrences are instants
    /// (`i`). Timestamps (`ts`) are simulated cycles interpreted as
    /// microseconds by the viewer.
    pub fn chrome(&self) -> String {
        let ts = self.timestamp();
        let cat = self.category();
        let mut s = String::with_capacity(160);
        match self {
            TraceEvent::KernelBegin {
                kernel,
                blocks,
                threads,
                ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"kernel-{kernel}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"args\":{{\"blocks\":{blocks},\"threads\":{threads}}}}}"
                );
            }
            TraceEvent::KernelEnd { kernel, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"kernel-{kernel}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0}}"
                );
            }
            TraceEvent::Iteration { round, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"round-{round}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\"}}"
                );
            }
            TraceEvent::StallSample {
                sm, class, cycles, ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"{class}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{cycles},\"pid\":0,\"tid\":{}}}",
                    sm + 1
                );
            }
            TraceEvent::CacheCounters {
                l1_hits,
                l1_misses,
                l2_hits,
                l2_misses,
                l1_atomics,
                l2_atomics,
                registrations,
                remote_transfers,
                invalidations,
                ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"cache\",\"cat\":\"{cat}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"tid\":0,\"args\":{{\"l1_hits\":{l1_hits},\"l1_misses\":{l1_misses},\
                     \"l2_hits\":{l2_hits},\"l2_misses\":{l2_misses},\"l1_atomics\":{l1_atomics},\
                     \"l2_atomics\":{l2_atomics},\"registrations\":{registrations},\
                     \"remote_transfers\":{remote_transfers},\"invalidations\":{invalidations}}}}}"
                );
            }
            TraceEvent::NocTotals {
                line_transfers,
                control_messages,
                flits,
                ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"noc\",\"cat\":\"{cat}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"tid\":0,\"args\":{{\"line_transfers\":{line_transfers},\
                     \"control_messages\":{control_messages},\"flits\":{flits}}}}}"
                );
            }
            TraceEvent::AcquireRelease { sm, drain_to, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"acq-rel\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\
                     \"tid\":{},\"s\":\"t\",\"args\":{{\"drain_to\":{drain_to}}}}}",
                    sm + 1
                );
            }
            TraceEvent::OwnershipTransfer {
                sm, line, remote, ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"ownership\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{\"line\":{line},\
                     \"remote\":{remote}}}}}",
                    sm + 1
                );
            }
            TraceEvent::Phase { name, dur_us, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur_us},\"pid\":0,\"tid\":0}}",
                    escape(name)
                );
            }
            TraceEvent::CellStart {
                app, graph, config, ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"{}/{}/{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                    escape(app),
                    escape(graph),
                    escape(config)
                );
            }
            TraceEvent::CellFinish {
                app,
                graph,
                config,
                status,
                attempts,
                dur_us,
                ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"{}/{}/{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur_us},\"pid\":0,\"tid\":0,\
                     \"args\":{{\"status\":\"{status}\",\"attempts\":{attempts}}}}}",
                    escape(app),
                    escape(graph),
                    escape(config)
                );
            }
            TraceEvent::StoreHit { key, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"hit {}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                    escape(key)
                );
            }
            TraceEvent::StoreMiss { key, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"miss {}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                    escape(key)
                );
            }
            TraceEvent::StoreEvict { records, bytes, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"store-evict\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\",\
                     \"args\":{{\"records\":{records},\"bytes\":{bytes}}}}}"
                );
            }
            TraceEvent::StoreCorruption { offset, bytes, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"store-corruption\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\",\
                     \"args\":{{\"offset\":{offset},\"bytes\":{bytes}}}}}"
                );
            }
            TraceEvent::GraphBuild {
                graph,
                vertices,
                edges,
                ..
            } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"build {}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\",\
                     \"args\":{{\"vertices\":{vertices},\"edges\":{edges}}}}}",
                    escape(graph)
                );
            }
            TraceEvent::TraceCacheHit { key, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"trace-hit {}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                    escape(key)
                );
            }
            TraceEvent::TraceCacheMiss { key, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"trace-miss {}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                    escape(key)
                );
            }
            TraceEvent::TraceCacheEvict { streams, bytes, .. } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"trace-evict\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":0,\"s\":\"g\",\
                     \"args\":{{\"streams\":{streams},\"bytes\":{bytes}}}}}"
                );
            }
        }
        s
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<TraceEvent> {
        vec![
            TraceEvent::KernelBegin {
                kernel: 1,
                cycle: 2000,
                blocks: 4,
                threads: 1024,
            },
            TraceEvent::KernelEnd {
                kernel: 1,
                cycle: 9000,
            },
            TraceEvent::Iteration {
                round: 1,
                cycle: 1999,
            },
            TraceEvent::StallSample {
                sm: 3,
                cycle: 2500,
                class: "Data",
                cycles: 88,
            },
            TraceEvent::CacheCounters {
                kernel: 1,
                cycle: 9000,
                l1_hits: 10,
                l1_misses: 5,
                l2_hits: 4,
                l2_misses: 1,
                l1_atomics: 2,
                l2_atomics: 3,
                registrations: 6,
                remote_transfers: 1,
                invalidations: 0,
            },
            TraceEvent::NocTotals {
                kernel: 1,
                cycle: 9000,
                line_transfers: 7,
                control_messages: 12,
                flits: 47,
            },
            TraceEvent::AcquireRelease {
                sm: 0,
                cycle: 3000,
                drain_to: 3100,
            },
            TraceEvent::OwnershipTransfer {
                sm: 2,
                cycle: 2750,
                line: 42,
                remote: true,
            },
            TraceEvent::Phase {
                name: "simulate".into(),
                start_us: 10,
                dur_us: 900,
            },
            TraceEvent::CellStart {
                app: "PR".into(),
                graph: "RMAT".into(),
                config: "SGR".into(),
                start_us: 15,
            },
            TraceEvent::CellFinish {
                app: "PR".into(),
                graph: "RMAT".into(),
                config: "SGR".into(),
                status: "ok",
                attempts: 1,
                start_us: 15,
                dur_us: 420,
            },
            TraceEvent::StoreHit {
                key: "PR/RMAT/SGR".into(),
                at_us: 18,
            },
            TraceEvent::StoreMiss {
                key: "PR/RMAT/TG0".into(),
                at_us: 19,
            },
            TraceEvent::StoreEvict {
                records: 12,
                bytes: 1536,
                at_us: 950,
            },
            TraceEvent::StoreCorruption {
                offset: 16,
                bytes: 44,
                at_us: 5,
            },
            TraceEvent::GraphBuild {
                graph: "RMAT".into(),
                vertices: 16384,
                edges: 262144,
                at_us: 7,
            },
            TraceEvent::TraceCacheHit {
                key: "PR/RMAT/push/256".into(),
                at_us: 21,
            },
            TraceEvent::TraceCacheMiss {
                key: "PR/RMAT/pull/256".into(),
                at_us: 22,
            },
            TraceEvent::TraceCacheEvict {
                streams: 2,
                bytes: 4096,
                at_us: 940,
            },
        ]
    }

    #[test]
    fn jsonl_lines_are_self_describing() {
        for ev in all_variants() {
            let line = ev.jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(
                line.contains(&format!("\"type\":\"{}\"", ev.kind())),
                "{line}"
            );
            assert!(
                line.contains(&format!("\"cat\":\"{}\"", ev.category())),
                "{line}"
            );
        }
    }

    #[test]
    fn chrome_objects_carry_phase_and_timestamp() {
        for ev in all_variants() {
            let obj = ev.chrome();
            assert!(obj.contains("\"ph\":\""), "{obj}");
            assert!(obj.contains(&format!("\"ts\":{}", ev.timestamp())), "{obj}");
            assert!(obj.contains("\"pid\":0"), "{obj}");
        }
    }

    #[test]
    fn categories_cover_the_acceptance_set() {
        let cats: std::collections::BTreeSet<&str> =
            all_variants().iter().map(|e| e.category()).collect();
        for needed in ["kernel", "stall", "cache", "noc"] {
            assert!(cats.contains(needed), "missing category {needed}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let ev = TraceEvent::Phase {
            name: "a\"b\\c".into(),
            start_us: 0,
            dur_us: 1,
        };
        assert!(ev.jsonl().contains("a\\\"b\\\\c"));
        assert!(ev.chrome().contains("a\\\"b\\\\c"));
    }
}
