//! The `Copy` handle that instrumented code threads through the stack.

use crate::event::TraceEvent;
use crate::sink::{TraceSink, NOOP};

/// A borrowed trace sink plus sampling configuration.
///
/// `Tracer` is `Copy` (a fat pointer and two words), so the engine can
/// hand one to every SM and the memory system without lifetime
/// gymnastics. The `enabled` answer is cached at construction: with a
/// [`crate::NoopSink`] the per-event cost in instrumented code is a
/// single boolean load, keeping the uninstrumented hot path within noise.
#[derive(Clone, Copy)]
pub struct Tracer<'t> {
    sink: &'t dyn TraceSink,
    stride: u64,
    on: bool,
}

impl<'t> Tracer<'t> {
    /// Attach to a sink with the given sampling stride (in simulated
    /// cycles) for high-frequency events. A stride of 0 is treated as 1
    /// (sample every window).
    pub fn new(sink: &'t dyn TraceSink, stride: u64) -> Self {
        Self {
            sink,
            stride: stride.max(1),
            on: sink.enabled(),
        }
    }

    /// The disabled tracer: borrows the shared [`NOOP`] sink.
    pub const fn off() -> Tracer<'static> {
        Tracer {
            sink: &NOOP,
            stride: 1,
            on: false,
        }
    }

    /// Whether events will be recorded. Instrumented code should guard
    /// event *construction* with this.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Sampling stride in cycles for high-frequency event classes
    /// (stall samples, ownership transfers). Always ≥ 1.
    #[inline]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn emit(&self, event: &TraceEvent) {
        if self.on {
            self.sink.emit(event);
        }
    }
}

impl std::fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.on)
            .field("stride", &self.stride)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::JsonlSink;

    #[test]
    fn off_tracer_is_disabled_and_emits_nothing() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.emit(&TraceEvent::KernelEnd {
            kernel: 0,
            cycle: 1,
        });
    }

    #[test]
    fn tracer_forwards_to_sink() {
        let sink = JsonlSink::new(Vec::new());
        let t = Tracer::new(&sink, 0);
        assert!(t.enabled());
        assert_eq!(t.stride(), 1, "stride 0 clamps to 1");
        t.emit(&TraceEvent::KernelEnd {
            kernel: 0,
            cycle: 1,
        });
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn tracer_is_copy_and_coerces_lifetimes() {
        let sink = JsonlSink::new(Vec::new());
        let t = Tracer::new(&sink, 500);
        let t2 = t; // Copy
        t.emit(&TraceEvent::Iteration { round: 0, cycle: 0 });
        t2.emit(&TraceEvent::Iteration { round: 1, cycle: 0 });
        assert_eq!(sink.len(), 2);
    }
}
