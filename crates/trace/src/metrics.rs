//! Named counters, histograms, and wall-clock phase spans.

use crate::sink::TraceSink;
use crate::TraceEvent;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Summary statistics for an observed value stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// Record one value.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A completed wall-clock phase, relative to the owning registry's
/// creation instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name.
    pub name: String,
    /// Start offset in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<PhaseSpan>,
}

/// Thread-safe registry of named counters, histograms, and phase spans.
///
/// The study driver gives each worker thread its own registry and
/// [`MetricsRegistry::merge`]s them into a shared one when the pool
/// drains, so workers never contend on a lock in their inner loop.
pub struct MetricsRegistry {
    origin: Instant,
    inner: Mutex<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Create an empty registry; phase spans are measured relative to
    /// this instant.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `by` to the named counter (created at 0 on first use).
    pub fn add(&self, name: &str, by: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record one observation in the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Snapshot of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.lock()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Snapshot of all completed phase spans, in completion order.
    pub fn spans(&self) -> Vec<PhaseSpan> {
        self.lock().spans.clone()
    }

    /// Start a named wall-clock phase; the span is recorded (and an
    /// `<name>_us` histogram observation made) when the guard drops.
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        PhaseGuard {
            registry: self,
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Fold another registry into this one. Counters add, histograms
    /// merge, and phase spans are rebased onto this registry's origin.
    pub fn merge(&self, other: &MetricsRegistry) {
        let offset_us = other
            .origin
            .checked_duration_since(self.origin)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let theirs = other.lock();
        let mut ours = self.lock();
        for (k, v) in &theirs.counters {
            *ours.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &theirs.histograms {
            ours.histograms.entry(k.clone()).or_default().merge(h);
        }
        for span in &theirs.spans {
            ours.spans.push(PhaseSpan {
                name: span.name.clone(),
                start_us: span.start_us + offset_us,
                dur_us: span.dur_us,
            });
        }
    }

    /// Emit every completed phase span to a sink as
    /// [`TraceEvent::Phase`] events (a self-profile of the driver).
    pub fn emit_phases(&self, sink: &dyn TraceSink) {
        for span in self.spans() {
            sink.emit(&TraceEvent::Phase {
                name: span.name,
                start_us: span.start_us,
                dur_us: span.dur_us,
            });
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .field("spans", &inner.spans.len())
            .finish()
    }
}

/// Drop guard returned by [`MetricsRegistry::phase`].
pub struct PhaseGuard<'a> {
    registry: &'a MetricsRegistry,
    name: String,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let start_us = self
            .start
            .checked_duration_since(self.registry.origin)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let dur_us = self.start.elapsed().as_micros() as u64;
        let mut inner = self.registry.lock();
        inner.spans.push(PhaseSpan {
            name: self.name.clone(),
            start_us,
            dur_us,
        });
        inner
            .histograms
            .entry(format!("{}_us", self.name))
            .or_default()
            .observe(dur_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::JsonlSink;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.add("jobs", 2);
        reg.add("jobs", 3);
        assert_eq!(reg.counter("jobs"), 5);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.counters(), vec![("jobs".to_string(), 5)]);
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::default();
        h.observe(10);
        h.observe(2);
        h.observe(6);
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 18, 2, 10));
        assert!((h.mean() - 6.0).abs() < 1e-12);

        let mut other = Histogram::default();
        other.observe(100);
        h.merge(&other);
        assert_eq!((h.count, h.max), (4, 100));
        let empty = Histogram::default();
        h.merge(&empty);
        assert_eq!(h.count, 4);
    }

    #[test]
    fn phase_guard_records_span_and_histogram() {
        let reg = MetricsRegistry::new();
        {
            let _g = reg.phase("simulate");
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "simulate");
        let hists = reg.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, "simulate_us");
        assert_eq!(hists[0].1.count, 1);
    }

    #[test]
    fn merge_combines_worker_registries() {
        let shared = MetricsRegistry::new();
        let worker = MetricsRegistry::new();
        worker.add("workloads", 4);
        worker.observe("cycles", 1000);
        {
            let _g = worker.phase("job");
        }
        shared.add("workloads", 1);
        shared.merge(&worker);
        assert_eq!(shared.counter("workloads"), 5);
        let hists = shared.histograms();
        assert!(hists.iter().any(|(k, h)| k == "cycles" && h.count == 1));
        assert_eq!(shared.spans().len(), 1);
    }

    #[test]
    fn emit_phases_writes_phase_events() {
        let reg = MetricsRegistry::new();
        {
            let _g = reg.phase("generate-inputs");
        }
        let sink = JsonlSink::new(Vec::new());
        reg.emit_phases(&sink);
        assert_eq!(sink.len(), 1);
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert!(text.contains("\"type\":\"phase\""));
        assert!(text.contains("generate-inputs"));
    }
}
