//! Trace sinks: where events go.

use crate::event::TraceEvent;
use std::io::{self, Write};
use std::sync::Mutex;

/// A destination for trace events.
///
/// Sinks take `&self` and must be [`Sync`]: one sink may be shared by the
/// engine, every SM, and the memory system of a simulation, and study
/// workers may share a sink across threads. File-backed sinks use
/// interior mutability (a [`Mutex`] around the writer).
pub trait TraceSink: Sync {
    /// Whether this sink wants events at all. Instrumented code caches
    /// this once per simulation, so a `false` here reduces the hot path
    /// to a single boolean test per potential event.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. Implementations must not panic on I/O errors;
    /// they latch the error for [`TraceSink::finish`] to report.
    fn emit(&self, event: &TraceEvent);

    /// Flush buffered output and close any container syntax, reporting
    /// the first latched I/O error. Idempotent; also invoked on drop for
    /// the file-backed sinks (where the error is then discarded).
    fn finish(&self) -> io::Result<()> {
        Ok(())
    }
}

/// The zero-cost sink: reports `enabled() == false` and drops events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &TraceEvent) {}
}

/// A shared no-op sink; [`crate::Tracer::off`] borrows this.
pub static NOOP: NoopSink = NoopSink;

/// Writer state shared by the file-backed sinks.
struct WriterState<W> {
    writer: W,
    /// First I/O error observed, reported by `finish`.
    error: Option<io::Error>,
    /// Events written so far (drives comma placement in Chrome traces).
    count: u64,
    finished: bool,
}

impl<W: Write> WriterState<W> {
    fn write(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(bytes) {
            self.error = Some(e);
        }
    }

    fn take_result(&mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => self.writer.flush(),
        }
    }
}

/// The writer state is `Option` so `into_inner` can take it while the
/// sink still has a `Drop` impl; a `None` means the writer was moved out.
fn lock<W>(m: &Mutex<Option<WriterState<W>>>) -> std::sync::MutexGuard<'_, Option<WriterState<W>>> {
    // A panic while holding the lock can only leave behind a partially
    // written event; the stream stays usable, so ignore poisoning.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Writes each event as one JSON object per line (JSON Lines).
///
/// The schema is documented in `docs/observability.md`; every line has
/// `type` and `cat` discriminators plus the event's own fields.
pub struct JsonlSink<W: Write + Send> {
    state: Mutex<Option<WriterState<W>>>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer. Consider a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        Self {
            state: Mutex::new(Some(WriterState {
                writer,
                error: None,
                count: 0,
                finished: false,
            })),
        }
    }

    /// Number of events written so far.
    pub fn len(&self) -> u64 {
        lock(&self.state).as_ref().map_or(0, |st| st.count)
    }

    /// Whether no events have been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consume the sink and return the inner writer.
    pub fn into_inner(self) -> W {
        lock(&self.state)
            .take()
            .expect("writer present until into_inner")
            .writer
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, event: &TraceEvent) {
        if let Some(st) = lock(&self.state).as_mut() {
            // Once the writer has failed, stop paying for serialization:
            // the stream is dead and `finish` will report the error.
            if st.error.is_some() {
                return;
            }
            let mut line = event.jsonl();
            line.push('\n');
            st.write(line.as_bytes());
            st.count += 1;
        }
    }

    fn finish(&self) -> io::Result<()> {
        match lock(&self.state).as_mut() {
            Some(st) => {
                st.finished = true;
                st.take_result()
            }
            None => Ok(()),
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Writes a Chrome trace-event file: `{"traceEvents":[ ... ]}`.
///
/// Load the result in `chrome://tracing` or <https://ui.perfetto.dev>.
/// The header is written on construction and events are streamed
/// incrementally; call [`TraceSink::finish`] to write the closing
/// bracket and observe any I/O error (drop also closes the file, but
/// swallows errors).
pub struct ChromeTraceSink<W: Write + Send> {
    state: Mutex<Option<WriterState<W>>>,
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wrap a writer and emit the trace-file header.
    pub fn new(writer: W) -> Self {
        let mut st = WriterState {
            writer,
            error: None,
            count: 0,
            finished: false,
        };
        st.write(b"{\"traceEvents\":[");
        Self {
            state: Mutex::new(Some(st)),
        }
    }

    /// Number of events written so far.
    pub fn len(&self) -> u64 {
        lock(&self.state).as_ref().map_or(0, |st| st.count)
    }

    /// Whether no events have been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consume the sink and return the inner writer. Call
    /// [`TraceSink::finish`] first if the footer must be present.
    pub fn into_inner(self) -> W {
        lock(&self.state)
            .take()
            .expect("writer present until into_inner")
            .writer
    }
}

impl<W: Write + Send> TraceSink for ChromeTraceSink<W> {
    fn emit(&self, event: &TraceEvent) {
        if let Some(st) = lock(&self.state).as_mut() {
            if st.finished || st.error.is_some() {
                return;
            }
            let obj = event.chrome();
            if st.count > 0 {
                st.write(b",\n");
            }
            st.write(obj.as_bytes());
            st.count += 1;
        }
    }

    fn finish(&self) -> io::Result<()> {
        match lock(&self.state).as_mut() {
            Some(st) => {
                if !st.finished {
                    st.finished = true;
                    st.write(b"]}\n");
                }
                st.take_result()
            }
            None => Ok(()),
        }
    }
}

impl<W: Write + Send> Drop for ChromeTraceSink<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent::KernelEnd {
            kernel: 0,
            cycle: 10,
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.emit(&sample());
        assert!(NoopSink.finish().is_ok());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&sample());
        sink.emit(&sample());
        assert_eq!(sink.len(), 2);
        sink.finish().expect("vec write");
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_sink_brackets_and_commas() {
        let sink = ChromeTraceSink::new(Vec::new());
        sink.emit(&sample());
        sink.emit(&sample());
        sink.finish().expect("vec write");
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert_eq!(text.matches("\"ph\":\"E\"").count(), 2);
        // Exactly one separating comma between the two events.
        assert_eq!(text.matches(",\n").count(), 1);
    }

    #[test]
    fn empty_chrome_trace_is_still_valid() {
        let sink = ChromeTraceSink::new(Vec::new());
        sink.finish().expect("vec write");
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.trim_end(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn finish_is_idempotent_and_emit_after_finish_is_ignored() {
        let sink = ChromeTraceSink::new(Vec::new());
        sink.emit(&sample());
        sink.finish().expect("vec write");
        sink.emit(&sample());
        sink.finish().expect("vec write");
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.matches("\"ph\"").count(), 1);
        assert_eq!(text.matches("]}").count(), 1);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_latched_not_panicked() {
        let sink = ChromeTraceSink::new(FailingWriter);
        sink.emit(&sample());
        let err = sink.finish().expect_err("writer always fails");
        assert_eq!(err.to_string(), "disk full");
        // Idempotent finish after the error was taken flushes cleanly.
        assert!(sink.finish().is_ok());
    }

    #[test]
    fn jsonl_sink_latches_io_errors_and_stops_counting() {
        let sink = JsonlSink::new(FailingWriter);
        // Neither emit panics; the first failure is latched and later
        // events are dropped without being serialized.
        sink.emit(&sample());
        sink.emit(&sample());
        assert_eq!(sink.len(), 1, "events after the failure are dropped");
        let err = sink.finish().expect_err("writer always fails");
        assert_eq!(err.to_string(), "disk full");
        assert!(sink.finish().is_ok(), "error reported exactly once");
    }
}
