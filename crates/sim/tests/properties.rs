//! Property-based tests of the simulator's structural invariants.

use proptest::prelude::*;

use ggs_sim::cache::{Cache, LineState};
use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};
use ggs_sim::engine::Simulation;
use ggs_sim::noc::Mesh;
use ggs_sim::params::SystemParams;
use ggs_sim::stats::{StallBreakdown, StallClass};
use ggs_sim::trace::{KernelTrace, MicroOp};

fn small_params() -> SystemParams {
    SystemParams::default().scaled_caches(0.125)
}

/// Strategy: a small kernel of arbitrary mixed micro-ops.
fn kernels() -> impl Strategy<Value = KernelTrace> {
    let op = prop_oneof![
        (0u64..4096).prop_map(|w| MicroOp::load(w * 4)),
        (0u64..4096).prop_map(|w| MicroOp::store(w * 4)),
        (0u64..4096).prop_map(|w| MicroOp::atomic(w * 4)),
        (0u64..256).prop_map(|w| MicroOp::atomic_returning(w * 4)),
        (1u16..8).prop_map(MicroOp::compute),
    ];
    let thread = prop::collection::vec(op, 0..12);
    prop::collection::vec(thread, 1..200).prop_map(|threads| KernelTrace::new(threads, 64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every configuration executes every kernel to completion, with a
    /// fully-classified non-zero cycle count.
    #[test]
    fn all_configs_terminate(kernel in kernels()) {
        for hw in HwConfig::all() {
            let mut sim = Simulation::new(small_params(), hw);
            sim.run_kernel(&kernel);
            let stats = sim.finish();
            prop_assert!(stats.total_cycles() > 0);
            // Each SM contributes exactly total_cycles classified cycles.
            let expected = stats.total_cycles() * 15;
            prop_assert_eq!(stats.breakdown.total(), expected);
        }
    }

    /// Simulation is deterministic: identical runs produce identical
    /// statistics.
    #[test]
    fn simulation_is_deterministic(kernel in kernels()) {
        let run = || {
            let hw = HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::DrfRlx);
            let mut sim = Simulation::new(small_params(), hw);
            sim.run_kernel(&kernel);
            sim.finish()
        };
        prop_assert_eq!(run(), run());
    }

    /// Weakening the consistency model never meaningfully slows a
    /// workload down (DRF0 ≥ DRF1 ≥ DRFrlx up to a modest scheduling
    /// tolerance — reordering changes issue interleaving, which can
    /// shift bank contention and cache evictions a little either way,
    /// exactly as on real hardware).
    #[test]
    fn weaker_consistency_is_never_slower(kernel in kernels()) {
        for coh in CoherenceKind::ALL {
            let time = |m: ConsistencyModel| {
                let mut sim = Simulation::new(small_params(), HwConfig::new(coh, m));
                sim.run_kernel(&kernel);
                sim.finish().total_cycles()
            };
            let t0 = time(ConsistencyModel::Drf0);
            let t1 = time(ConsistencyModel::Drf1);
            let tr = time(ConsistencyModel::DrfRlx);
            prop_assert!(t0 * 23 >= t1 * 20, "DRF0 {t0} < DRF1 {t1}");
            prop_assert!(t1 * 23 >= tr * 20, "DRF1 {t1} < DRFrlx {tr}");
        }
    }

    /// Cache: after inserting a line it is present; capacity is never
    /// exceeded; flash invalidation leaves only owned lines.
    #[test]
    fn cache_invariants(lines in prop::collection::vec(0u64..512, 1..300)) {
        let mut c = Cache::new(8, 4);
        for (i, &l) in lines.iter().enumerate() {
            let state = if i % 3 == 0 { LineState::Owned } else { LineState::Valid };
            c.insert(l, state);
            prop_assert_eq!(c.peek(l), Some(state));
            prop_assert!(c.occupancy() <= c.capacity_lines());
        }
        c.invalidate_unowned();
        for &l in &lines {
            if let Some(s) = c.peek(l) {
                prop_assert_eq!(s, LineState::Owned);
            }
        }
    }

    /// Mesh distances form a metric (symmetry + triangle inequality) and
    /// all latencies stay within the paper's Table IV ranges.
    #[test]
    fn mesh_is_a_metric(a in 0u32..16, b in 0u32..16, c in 0u32..16) {
        let m = Mesh::new(&SystemParams::default());
        prop_assert_eq!(m.hops(a, b), m.hops(b, a));
        prop_assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
        if a < 15 && b < 15 {
            let r = m.remote_l1_latency(a, b);
            prop_assert!((35..=83).contains(&r));
        }
    }

    /// StallBreakdown arithmetic: totals are additive and fractions sum
    /// to 1 for non-empty breakdowns.
    #[test]
    fn breakdown_arithmetic(cycles in prop::collection::vec((0usize..5, 1u64..1000), 1..20)) {
        let mut b = StallBreakdown::default();
        for &(class, n) in &cycles {
            b.record(StallClass::ALL[class], n);
        }
        let frac_sum: f64 = StallClass::ALL.iter().map(|&c| b.fraction(c)).sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);
        let doubled = b + b;
        prop_assert_eq!(doubled.total(), 2 * b.total());
    }
}
