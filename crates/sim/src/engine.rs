//! The whole-GPU simulation engine: block dispatch, interleaved SM
//! execution, kernel sequencing, and statistics aggregation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::HwConfig;
use crate::mem::MemorySystem;
use crate::params::SystemParams;
use crate::sm::{Sm, Step};
use crate::stats::{ExecStats, StallClass};
use crate::trace::KernelTrace;
use ggs_trace::{TraceEvent, Tracer};

/// How far one SM may run ahead of the globally-earliest SM before
/// yielding (keeps shared-state updates near global time order while
/// amortizing scheduling overhead).
const QUANTUM_CYCLES: u64 = 256;

/// Watchdog limits on a simulation, enforced at kernel-launch
/// boundaries.
///
/// Long-running sweeps (the 36-workload study) use budgets to bound
/// non-converging dynamic workloads and oversized inputs: once a limit
/// is breached the simulation refuses further kernels instead of
/// running away, and the caller observes
/// [`Simulation::budget_exhausted`]. `None` means unlimited (the
/// default), so existing callers are unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimBudget {
    /// Maximum number of kernels (≈ algorithm iterations for the
    /// level-synchronous graph apps) the simulation may execute.
    pub max_kernels: Option<u64>,
    /// Maximum simulated GPU cycles. Checked before and after each
    /// kernel; one kernel may overshoot the limit, but no further
    /// kernel starts once it is reached.
    pub max_cycles: Option<u64>,
}

impl SimBudget {
    /// The unlimited budget (both limits absent).
    pub const UNLIMITED: SimBudget = SimBudget {
        max_kernels: None,
        max_cycles: None,
    };

    /// Whether any limit is configured.
    pub fn is_limited(&self) -> bool {
        self.max_kernels.is_some() || self.max_cycles.is_some()
    }
}

/// Which [`SimBudget`] limit a simulation ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The kernel-count limit was reached.
    Kernels {
        /// Configured limit.
        limit: u64,
        /// Kernels executed when the breach was detected.
        reached: u64,
    },
    /// The simulated-cycle limit was reached.
    Cycles {
        /// Configured limit.
        limit: u64,
        /// Simulated clock when the breach was detected.
        reached: u64,
    },
}

impl std::fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BudgetBreach::Kernels { limit, reached } => {
                write!(f, "kernel budget exhausted: {reached} of at most {limit}")
            }
            BudgetBreach::Cycles { limit, reached } => write!(
                f,
                "simulated-cycle budget exhausted: {reached} of at most {limit}"
            ),
        }
    }
}

/// A multi-kernel simulation of one workload on one hardware
/// configuration.
///
/// Cache contents, DeNovo ownership, and statistics persist across
/// [`Simulation::run_kernel`] calls, as they do on the simulated machine;
/// call [`Simulation::finish`] to retrieve the final [`ExecStats`].
///
/// See the crate-level documentation for an end-to-end example.
///
/// The lifetime parameter is the borrow of an injected
/// [`ggs_trace::TraceSink`]; [`Simulation::new`] leaves tracing off and
/// the lifetime unconstrained.
#[derive(Debug)]
pub struct Simulation<'t> {
    params: SystemParams,
    hw: HwConfig,
    mem: MemorySystem<'t>,
    stats: ExecStats,
    clock: u64,
    tracer: Tracer<'t>,
    budget: SimBudget,
    breach: Option<BudgetBreach>,
}

impl<'t> Simulation<'t> {
    /// Creates a simulation of `params` hardware under configuration
    /// `hw`, with tracing off.
    pub fn new(params: SystemParams, hw: HwConfig) -> Self {
        Self::with_tracer(params, hw, Tracer::off())
    }

    /// Creates a simulation with an injected trace sink handle. The
    /// engine, every SM, and the memory system emit structured events to
    /// it (see [`ggs_trace::TraceEvent`] for the schema).
    pub fn with_tracer(params: SystemParams, hw: HwConfig, tracer: Tracer<'t>) -> Self {
        let mem = MemorySystem::with_tracer(&params, hw, tracer);
        Self {
            params,
            hw,
            mem,
            stats: ExecStats::default(),
            clock: 0,
            tracer,
            budget: SimBudget::UNLIMITED,
            breach: None,
        }
    }

    /// Installs a watchdog budget. Limits apply to the simulation's
    /// cumulative kernel count and clock (not per kernel), take effect
    /// from the next [`Simulation::run_kernel`] call, and replace any
    /// previously-set budget (a previously-latched breach is kept).
    pub fn set_budget(&mut self, budget: SimBudget) {
        self.budget = budget;
    }

    /// The configured watchdog budget (unlimited by default).
    pub fn budget(&self) -> SimBudget {
        self.budget
    }

    /// Whether a budget limit has been breached. Once set, every
    /// subsequent [`Simulation::run_kernel`] call is ignored, so partial
    /// statistics stay valid for reporting.
    pub fn budget_exhausted(&self) -> bool {
        self.breach.is_some()
    }

    /// The first budget breach observed, if any.
    pub fn budget_breach(&self) -> Option<BudgetBreach> {
        self.breach
    }

    /// Latches a breach if the budget is exceeded at the current clock /
    /// kernel count. Called at kernel boundaries.
    fn check_budget(&mut self) {
        if self.breach.is_some() {
            return;
        }
        if let Some(limit) = self.budget.max_kernels {
            if self.stats.kernels >= limit {
                self.breach = Some(BudgetBreach::Kernels {
                    limit,
                    reached: self.stats.kernels,
                });
                return;
            }
        }
        if let Some(limit) = self.budget.max_cycles {
            if self.clock >= limit {
                self.breach = Some(BudgetBreach::Cycles {
                    limit,
                    reached: self.clock,
                });
            }
        }
    }

    /// The injected trace handle (off unless constructed via
    /// [`Simulation::with_tracer`]).
    pub fn tracer(&self) -> Tracer<'t> {
        self.tracer
    }

    /// The hardware configuration under simulation.
    pub fn hw(&self) -> HwConfig {
        self.hw
    }

    /// Registers a named address region for per-data-structure
    /// attribution (GSI-style; see [`crate::stats::RegionStats`]).
    pub fn register_region(&mut self, name: impl Into<String>, base: u64, bytes: u64) {
        self.mem.register_region(name, base, bytes);
    }

    /// Per-region attribution collected so far, as `(name, stats)`
    /// pairs in base-address order.
    pub fn region_stats(&self) -> Vec<(String, crate::stats::RegionStats)> {
        self.mem.region_stats()
    }

    /// Reconfigures the hardware point between kernels (flexible
    /// coherence/consistency hardware, as the paper's Spandex-based
    /// outlook envisions). Takes effect from the next
    /// [`Simulation::run_kernel`] call; switching coherence protocols
    /// relinquishes DeNovo ownership state.
    pub fn reconfigure(&mut self, hw: HwConfig) {
        self.hw = hw;
        self.mem.reconfigure(hw);
    }

    /// The system parameters under simulation.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Executes one kernel launch to completion.
    ///
    /// Empty kernels (no threads) are ignored entirely.
    pub fn run_kernel(&mut self, kernel: &KernelTrace) {
        if kernel.num_threads() == 0 {
            return;
        }
        self.check_budget();
        if self.breach.is_some() {
            return;
        }
        let kernel_seq = self.stats.kernels;
        self.stats.kernels += 1;
        if self.tracer.enabled() {
            // Round boundary: the pre-launch clock marks where the host
            // submitted this iteration's kernel.
            self.tracer.emit(&TraceEvent::Iteration {
                round: kernel_seq,
                cycle: self.clock,
            });
        }
        let counters_before = self.mem.counters;
        let flits_before = self.mem.noc_flit_total();

        // Kernel launch overhead: all SMs idle.
        let launch = self.params.kernel_launch_cycles;
        self.clock += launch;
        self.stats
            .breakdown
            .record(StallClass::Idle, launch * self.params.num_sms as u64);

        // Launch acquire: self-invalidate every L1 (owned DeNovo lines
        // survive inside `MemorySystem`).
        self.mem.begin_kernel();

        let start = self.clock;
        let num_blocks = kernel.num_blocks();
        if self.tracer.enabled() {
            self.tracer.emit(&TraceEvent::KernelBegin {
                kernel: kernel_seq,
                cycle: start,
                blocks: num_blocks,
                threads: kernel.num_threads(),
            });
        }
        let tb = kernel.tb_size() as u64;
        // Pre-slice blocks to hand to SMs.
        let threads: Vec<crate::trace::ThreadsSlice<'_>> = (0..num_blocks)
            .map(|b| {
                let lo = (b * tb) as usize;
                let hi = ((b + 1) * tb).min(kernel.num_threads()) as usize;
                kernel.threads_slice(lo, hi)
            })
            .collect();

        let mut sms: Vec<Sm<'_>> = (0..self.params.num_sms)
            .map(|id| {
                Sm::new(
                    id,
                    start,
                    self.hw.consistency,
                    self.params.warp_size,
                    self.params.line_bytes,
                    self.params.max_blocks_per_sm,
                    self.params.scheduler,
                )
                .with_tracer(self.tracer)
            })
            .collect();

        let mut next_block = 0usize;
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

        // Initial block distribution, round-robin over SMs.
        'fill: loop {
            let mut any = false;
            for sm in sms.iter_mut() {
                if next_block >= threads.len() {
                    break 'fill;
                }
                if sm.has_capacity() {
                    sm.assign_block(threads[next_block]);
                    next_block += 1;
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        for sm in &sms {
            heap.push(Reverse((sm.now, sm_id(sm))));
        }

        let mut finish_times = vec![0u64; sms.len()];
        let mut done = vec![false; sms.len()];
        while let Some(Reverse((t, id))) = heap.pop() {
            let idx = id as usize;
            if done[idx] {
                continue;
            }
            let sm = &mut sms[idx];
            if sm.now != t {
                // Stale entry; re-queue at the true time.
                heap.push(Reverse((sm.now, id)));
                continue;
            }
            let horizon = t + QUANTUM_CYCLES;
            loop {
                // Feed new blocks whenever capacity frees up.
                while sm.has_capacity() && next_block < threads.len() {
                    sm.assign_block(threads[next_block]);
                    next_block += 1;
                }
                match sm.step(&mut self.mem) {
                    Step::Issued | Step::Waited => {
                        if sm.now > horizon {
                            heap.push(Reverse((sm.now, id)));
                            break;
                        }
                    }
                    Step::Drained => {
                        if next_block < threads.len() {
                            continue; // more blocks to fetch
                        }
                        finish_times[idx] = sm.finish_time(&self.mem);
                        done[idx] = true;
                        break;
                    }
                }
            }
        }

        let kernel_end = finish_times
            .iter()
            .copied()
            .max()
            .unwrap_or(start)
            .max(self.mem.global_drain())
            .max(start);

        // Aggregate per-SM breakdowns plus end-of-kernel idle time.
        for (i, sm) in sms.iter().enumerate() {
            self.stats.breakdown += sm.stats;
            let fin = finish_times[i].max(sm.now);
            // Cycles between an SM's own completion and the kernel end
            // are idle; cycles between `now` and its own outstanding
            // completions are sync drain.
            if finish_times[i] > sm.now {
                self.stats
                    .breakdown
                    .record(StallClass::Sync, finish_times[i] - sm.now);
            }
            self.stats
                .breakdown
                .record(StallClass::Idle, kernel_end - fin);
        }

        self.clock = kernel_end;
        self.stats.total_cycles = self.clock;
        self.stats.mem = self.mem.counters;

        if self.tracer.enabled() {
            // Per-kernel counter deltas (the memory system accumulates
            // across kernels) plus the end-of-kernel marker.
            let d = self.mem.counters.delta(&counters_before);
            self.tracer.emit(&TraceEvent::CacheCounters {
                kernel: kernel_seq,
                cycle: kernel_end,
                l1_hits: d.l1_hits,
                l1_misses: d.l1_misses,
                l2_hits: d.l2_hits,
                l2_misses: d.l2_misses,
                l1_atomics: d.l1_atomics,
                l2_atomics: d.l2_atomics,
                registrations: d.registrations,
                remote_transfers: d.remote_transfers,
                invalidations: d.invalidations,
            });
            self.tracer.emit(&TraceEvent::NocTotals {
                kernel: kernel_seq,
                cycle: kernel_end,
                line_transfers: d.noc_line_transfers,
                control_messages: d.noc_control_messages,
                flits: self.mem.noc_flit_total().saturating_sub(flits_before),
            });
            self.tracer.emit(&TraceEvent::KernelEnd {
                kernel: kernel_seq,
                cycle: kernel_end,
            });
        }
        // Re-check after the kernel so an overshoot is visible to the
        // caller immediately, not only on the next launch attempt.
        self.check_budget();
    }

    /// Read-only view of the statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Consumes the simulation and returns the final statistics.
    pub fn finish(self) -> ExecStats {
        self.stats
    }
}

/// Protocol invariant checking (`check` feature): forwarding to
/// [`MemorySystem`]'s checker so tools never need the memory system
/// directly. See [`crate::check`].
#[cfg(feature = "check")]
impl Simulation<'_> {
    /// Enables the protocol invariant checker for all subsequent
    /// kernels.
    pub fn enable_protocol_checker(&mut self) {
        self.mem.enable_protocol_checker();
    }

    /// Drains the protocol violations recorded so far.
    pub fn take_protocol_violations(&mut self) -> Vec<crate::check::ProtocolViolation> {
        self.mem.take_protocol_violations()
    }

    /// Audits the full cache/ownership state at the current simulated
    /// cycle (per-access checks only cover touched lines).
    pub fn audit_protocol(&mut self) {
        self.mem.audit(self.clock);
    }

    /// Fault injection for negative tests: see
    /// [`MemorySystem::debug_force_owned`].
    pub fn debug_force_owned(&mut self, sm: u32, line: u64) {
        self.mem.debug_force_owned(sm, line);
    }

    /// Fault injection for negative tests: see
    /// [`MemorySystem::debug_skip_next_invalidation`].
    pub fn debug_skip_next_invalidation(&mut self) {
        self.mem.debug_skip_next_invalidation();
    }
}

fn sm_id(sm: &Sm<'_>) -> u32 {
    // Sm ids are assigned 0..num_sms in order; recover from stats-free
    // accessor to avoid widening Sm's public API.
    sm.id()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoherenceKind, ConsistencyModel};
    use crate::trace::MicroOp;

    fn hw(c: CoherenceKind, m: ConsistencyModel) -> HwConfig {
        HwConfig::new(c, m)
    }

    fn compute_kernel(threads: usize, ops: usize) -> KernelTrace {
        KernelTrace::new(vec![vec![MicroOp::compute(2); ops]; threads], 256)
    }

    #[test]
    fn tracer_emits_kernel_lifecycle_events() {
        use ggs_trace::{JsonlSink, Tracer};

        let sink = JsonlSink::new(Vec::new());
        {
            let mut sim = Simulation::with_tracer(
                SystemParams::default(),
                hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
                Tracer::new(&sink, 100),
            );
            // Loads so the cache counters are non-trivial.
            let threads = (0..256u64)
                .map(|t| vec![MicroOp::load(t * 4), MicroOp::compute(4)])
                .collect();
            sim.run_kernel(&KernelTrace::new(threads, 256));
            sim.finish();
        }
        let text = String::from_utf8(sink.into_inner()).expect("jsonl is utf-8");
        for kind in [
            "iteration",
            "kernel_begin",
            "kernel_end",
            "cache_counters",
            "noc_totals",
        ] {
            assert!(text.contains(kind), "missing event kind {kind}:\n{text}");
        }
    }

    #[test]
    fn empty_kernel_is_free() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&KernelTrace::new(Vec::new(), 256));
        assert_eq!(sim.finish().total_cycles(), 0);
    }

    #[test]
    fn single_block_runs_on_one_sm() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&compute_kernel(256, 4));
        let stats = sim.finish();
        assert!(stats.total_cycles() > 0);
        assert!(stats.breakdown.get(StallClass::Busy) > 0);
        // 14 of 15 SMs were idle the whole kernel.
        assert!(stats.breakdown.get(StallClass::Idle) > 0);
    }

    #[test]
    fn more_blocks_take_longer() {
        let run = |blocks: usize| {
            let mut sim = Simulation::new(
                SystemParams::default(),
                hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
            );
            sim.run_kernel(&compute_kernel(256 * blocks, 16));
            sim.finish().total_cycles()
        };
        // Compare past the fixed kernel-launch overhead.
        let launch = SystemParams::default().kernel_launch_cycles;
        let t15 = run(15) - launch;
        let t150 = run(150) - launch;
        assert!(t150 > t15 * 5, "t15={t15} t150={t150}");
    }

    #[test]
    fn blocks_spread_over_sms() {
        // 15 blocks of heavy compute should take barely longer than 1.
        let run = |blocks: usize| {
            let mut sim = Simulation::new(
                SystemParams::default(),
                hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
            );
            sim.run_kernel(&compute_kernel(256 * blocks, 64));
            sim.finish().total_cycles()
        };
        let t1 = run(1);
        let t15 = run(15);
        assert!(
            t15 < t1 * 2,
            "parallel blocks should overlap: t1={t1} t15={t15}"
        );
    }

    #[test]
    fn kernel_budget_stops_further_launches() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.set_budget(SimBudget {
            max_kernels: Some(2),
            max_cycles: None,
        });
        for _ in 0..10 {
            sim.run_kernel(&compute_kernel(256, 4));
        }
        assert!(sim.budget_exhausted());
        assert!(matches!(
            sim.budget_breach(),
            Some(BudgetBreach::Kernels { limit: 2, .. })
        ));
        assert_eq!(sim.stats().kernels, 2, "third and later launches ignored");
    }

    #[test]
    fn cycle_budget_latches_after_overshooting_kernel() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.set_budget(SimBudget {
            max_kernels: None,
            max_cycles: Some(1),
        });
        sim.run_kernel(&compute_kernel(256, 4));
        // The first kernel runs (budget checked at launch, clock was 0)
        // and overshoots; the breach is latched at its end.
        assert_eq!(sim.stats().kernels, 1);
        assert!(sim.budget_exhausted());
        let clock_after = sim.stats().total_cycles();
        sim.run_kernel(&compute_kernel(256, 4));
        assert_eq!(sim.stats().kernels, 1);
        assert_eq!(sim.stats().total_cycles(), clock_after);
    }

    #[test]
    fn unlimited_budget_never_breaches() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        assert!(!SimBudget::UNLIMITED.is_limited());
        for _ in 0..4 {
            sim.run_kernel(&compute_kernel(256, 2));
        }
        assert!(!sim.budget_exhausted());
        assert!(sim.budget_breach().is_none());
        assert_eq!(sim.stats().kernels, 4);
    }

    #[test]
    fn budget_breach_display_names_the_limit() {
        let k = BudgetBreach::Kernels {
            limit: 5,
            reached: 5,
        };
        assert!(k.to_string().contains("kernel budget"));
        let c = BudgetBreach::Cycles {
            limit: 100,
            reached: 250,
        };
        assert!(c.to_string().contains("cycle budget"));
    }

    #[test]
    fn stats_accumulate_across_kernels() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&compute_kernel(256, 4));
        let t1 = sim.stats().total_cycles();
        sim.run_kernel(&compute_kernel(256, 4));
        let t2 = sim.stats().total_cycles();
        assert!(t2 > t1);
        assert_eq!(sim.stats().kernels, 2);
    }

    #[test]
    fn many_blocks_refill_in_waves() {
        // 64 blocks over 15 SMs with capacity 8: every block must run.
        let kernel = compute_kernel(256 * 64, 2);
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&kernel);
        let stats = sim.finish();
        // Busy cycles equal the total number of issued warp instructions:
        // 64 blocks x 8 warps x 2 slots.
        assert_eq!(stats.breakdown.get(StallClass::Busy), 64 * 8 * 2);
    }

    #[test]
    fn reconfigure_between_kernels_changes_behavior() {
        let atomic_kernel = KernelTrace::new(
            (0..256u64).map(|t| vec![MicroOp::atomic(t * 4)]).collect(),
            256,
        );
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf1),
        );
        sim.run_kernel(&atomic_kernel);
        let gpu_atomics_first = sim.stats().mem.l2_atomics;
        assert!(gpu_atomics_first > 0);
        sim.reconfigure(hw(CoherenceKind::DeNovo, ConsistencyModel::Drf1));
        sim.run_kernel(&atomic_kernel);
        let stats = sim.finish();
        assert!(
            stats.mem.l1_atomics > 0,
            "DeNovo kernel executed L1 atomics"
        );
        assert_eq!(
            stats.mem.l2_atomics, gpu_atomics_first,
            "no further L2 atomics after switching to DeNovo"
        );
    }

    #[test]
    fn denovo_retains_ownership_across_kernels() {
        let store_kernel = KernelTrace::new(
            (0..256u64).map(|t| vec![MicroOp::store(t * 4)]).collect(),
            256,
        );
        let atomic_kernel = KernelTrace::new(
            (0..256u64).map(|t| vec![MicroOp::atomic(t * 4)]).collect(),
            256,
        );
        let run = |c: CoherenceKind| {
            let mut sim = Simulation::new(SystemParams::default(), hw(c, ConsistencyModel::Drf1));
            sim.run_kernel(&store_kernel);
            sim.run_kernel(&atomic_kernel);
            sim.finish()
        };
        let dn = run(CoherenceKind::DeNovo);
        let gp = run(CoherenceKind::Gpu);
        assert!(dn.mem.l1_atomics > 0, "DeNovo should hit owned lines");
        assert_eq!(gp.mem.l1_atomics, 0, "GPU coherence never does L1 atomics");
    }
}

#[cfg(test)]
mod scheduler_tests {
    use super::*;
    use crate::config::{CoherenceKind, ConsistencyModel};
    use crate::params::SchedulerPolicy;
    use crate::trace::MicroOp;

    fn run_with(policy: SchedulerPolicy) -> crate::stats::ExecStats {
        // Store-heavy DeNovo kernel on a tiny L1: stores are
        // fire-and-forget, so a warp stays ready cycle after cycle — GTO
        // streams one warp's sequential stores (the owned line stays
        // resident), while round robin interleaves all warps and thrashes
        // ownership out of the small L1.
        let threads: Vec<Vec<MicroOp>> = (0..512u64)
            .map(|t| (0..16).map(|k| MicroOp::store((t * 16 + k) * 4)).collect())
            .collect();
        let kernel = KernelTrace::new(threads, 256);
        let params = SystemParams {
            scheduler: policy,
            l1_bytes: 4096,
            l1_assoc: 4,
            ..SystemParams::default()
        };
        let mut sim = Simulation::new(
            params,
            HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::Drf1),
        );
        sim.run_kernel(&kernel);
        sim.finish()
    }

    #[test]
    fn gto_preserves_store_locality_better_than_round_robin() {
        let gto = run_with(SchedulerPolicy::GreedyThenOldest);
        let rr = run_with(SchedulerPolicy::RoundRobin);
        // Same work is issued either way; only the interleaving differs.
        assert_eq!(
            gto.breakdown.get(crate::stats::StallClass::Busy),
            rr.breakdown.get(crate::stats::StallClass::Busy)
        );
        assert!(
            gto.mem.registrations < rr.mem.registrations,
            "GTO ({}) should re-register less than RR ({})",
            gto.mem.registrations,
            rr.mem.registrations
        );
    }
}
