//! The whole-GPU simulation engine: block dispatch, event-driven SM
//! scheduling over a calendar wheel, kernel sequencing, and statistics
//! aggregation.
//!
//! # Event-driven core
//!
//! The engine does not step every SM every cycle. Each SM runs ahead on
//! its own local clock for up to `QUANTUM_CYCLES`, then *parks*: its
//! next wake-up — the earliest `ready_at` of its warps, which is a
//! memory/NoC completion time whenever every warp is memory-stalled —
//! is scheduled on a [`CalendarWheel`] at an absolute cycle. Popping
//! the wheel resumes the SM whose wake-up is earliest (ties by SM id),
//! so when every SM is parked the global clock skips directly to the
//! next ready event instead of idling through empty cycles. MSHR,
//! store-buffer, and outstanding-atomic back-pressure is tracked by the
//! [`crate::events::CompletionRing`]s inside [`MemorySystem`]; their
//! completion times are what warp `ready_at` values (and therefore SM
//! wake-ups) are made of. See `docs/performance.md` for why this
//! reproduces the stepped loop's statistics bit-exactly.

use crate::config::HwConfig;
use crate::events::CalendarWheel;
use crate::mem::MemorySystem;
use crate::params::SystemParams;
use crate::sm::{Sm, Step};
use crate::stats::{ExecStats, StallClass};
use crate::trace::KernelTrace;
use ggs_trace::{TraceEvent, Tracer};
use std::time::Instant;

/// How far one SM may run ahead of the globally-earliest SM before
/// yielding (keeps shared-state updates near global time order while
/// amortizing scheduling overhead).
const QUANTUM_CYCLES: u64 = 256;

/// How many wheel events may elapse between wall-clock deadline checks
/// (`Instant::now` is cheap but not free; a power of two keeps the
/// check branch-predictable).
const DEADLINE_CHECK_EVERY: u32 = 64;

/// Watchdog limits on a simulation.
///
/// Long-running sweeps (the 36-workload study) use budgets to bound
/// non-converging dynamic workloads and oversized inputs: once a limit
/// is breached the simulation stops *at the limit* and refuses further
/// kernels, and the caller observes [`Simulation::budget_exhausted`].
/// `None` means unlimited (the default), so existing callers are
/// unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimBudget {
    /// Maximum number of kernels (≈ algorithm iterations for the
    /// level-synchronous graph apps) the simulation may execute.
    pub max_kernels: Option<u64>,
    /// Maximum simulated GPU cycles. Enforced *exactly*: SM clocks are
    /// clamped to the limit, so the simulation stops at the breach
    /// cycle itself even though the engine skips idle cycles.
    pub max_cycles: Option<u64>,
    /// Wall-clock deadline. Checked inside the engine's event loop
    /// (every `DEADLINE_CHECK_EVERY` wheel events) and at kernel
    /// boundaries, so a hung kernel is abandoned mid-flight instead of
    /// running to completion first.
    pub deadline: Option<Instant>,
}

impl SimBudget {
    /// The unlimited budget (all limits absent).
    pub const UNLIMITED: SimBudget = SimBudget {
        max_kernels: None,
        max_cycles: None,
        deadline: None,
    };

    /// Whether any limit is configured.
    pub fn is_limited(&self) -> bool {
        self.max_kernels.is_some() || self.max_cycles.is_some() || self.deadline.is_some()
    }
}

/// Which [`SimBudget`] limit a simulation ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The kernel-count limit was reached.
    Kernels {
        /// Configured limit.
        limit: u64,
        /// Kernels executed when the breach was detected.
        reached: u64,
    },
    /// The simulated-cycle limit was reached. The clock is clamped to
    /// the limit, so `reached == limit` exactly.
    Cycles {
        /// Configured limit.
        limit: u64,
        /// Simulated clock when the breach was detected.
        reached: u64,
    },
    /// The wall-clock deadline expired.
    Deadline {
        /// Simulated clock when the deadline was observed expired.
        reached: u64,
    },
}

impl std::fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BudgetBreach::Kernels { limit, reached } => {
                write!(f, "kernel budget exhausted: {reached} of at most {limit}")
            }
            BudgetBreach::Cycles { limit, reached } => write!(
                f,
                "simulated-cycle budget exhausted: {reached} of at most {limit}"
            ),
            BudgetBreach::Deadline { reached } => write!(
                f,
                "wall-clock deadline exhausted at simulated cycle {reached}"
            ),
        }
    }
}

/// Fluent constructor for [`Simulation`]: tracer, budget, address
/// regions, and (under the `check` feature) the protocol checker are
/// all fixed before the first kernel runs, replacing the former
/// construct-then-mutate sequence.
///
/// ```
/// use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};
/// use ggs_sim::engine::{SimBudget, Simulation};
/// use ggs_sim::params::SystemParams;
///
/// let hw = HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf0);
/// let sim = Simulation::builder(SystemParams::default(), hw)
///     .budget(SimBudget {
///         max_kernels: Some(64),
///         ..SimBudget::UNLIMITED
///     })
///     .region("ranks", 0x1000, 4096)
///     .build();
/// assert!(sim.budget().is_limited());
/// ```
#[derive(Debug)]
pub struct SimulationBuilder<'t> {
    params: SystemParams,
    hw: HwConfig,
    tracer: Tracer<'t>,
    budget: SimBudget,
    regions: Vec<(String, u64, u64)>,
    #[cfg(feature = "check")]
    checker: bool,
}

impl<'t> SimulationBuilder<'t> {
    /// Injects a trace sink handle. The engine, every SM, and the
    /// memory system emit structured events to it (see
    /// [`ggs_trace::TraceEvent`] for the schema).
    pub fn tracer(mut self, tracer: Tracer<'t>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs a watchdog budget (see [`SimBudget`]). Limits apply to
    /// the simulation's cumulative kernel count and clock, not per
    /// kernel.
    pub fn budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Registers a named address region for per-data-structure
    /// attribution (GSI-style; see [`crate::stats::RegionStats`]).
    /// May be called once per region.
    pub fn region(mut self, name: impl Into<String>, base: u64, bytes: u64) -> Self {
        self.regions.push((name.into(), base, bytes));
        self
    }

    /// Enables the dynamic protocol invariant checker from the first
    /// kernel (see [`crate::check`]).
    #[cfg(feature = "check")]
    pub fn checker(mut self) -> Self {
        self.checker = true;
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation<'t> {
        let mut mem = MemorySystem::with_tracer(&self.params, self.hw, self.tracer);
        for (name, base, bytes) in self.regions {
            mem.register_region(name, base, bytes);
        }
        #[cfg(feature = "check")]
        if self.checker {
            mem.enable_protocol_checker();
        }
        Simulation {
            params: self.params,
            hw: self.hw,
            mem,
            stats: ExecStats::default(),
            clock: 0,
            tracer: self.tracer,
            budget: self.budget,
            breach: None,
        }
    }
}

/// A multi-kernel simulation of one workload on one hardware
/// configuration.
///
/// Cache contents, DeNovo ownership, and statistics persist across
/// [`Simulation::run_kernel`] calls, as they do on the simulated machine;
/// call [`Simulation::finish`] to retrieve the final [`ExecStats`].
///
/// Construct via [`Simulation::new`] (bare) or [`Simulation::builder`]
/// (tracer, budget, regions, checker). See the crate-level
/// documentation for an end-to-end example.
///
/// The lifetime parameter is the borrow of an injected
/// [`ggs_trace::TraceSink`]; [`Simulation::new`] leaves tracing off and
/// the lifetime unconstrained.
#[derive(Debug)]
pub struct Simulation<'t> {
    params: SystemParams,
    hw: HwConfig,
    mem: MemorySystem<'t>,
    stats: ExecStats,
    clock: u64,
    tracer: Tracer<'t>,
    budget: SimBudget,
    breach: Option<BudgetBreach>,
}

impl<'t> Simulation<'t> {
    /// Creates a simulation of `params` hardware under configuration
    /// `hw`, with tracing off and no budget — the same as
    /// `Simulation::builder(params, hw).build()`.
    pub fn new(params: SystemParams, hw: HwConfig) -> Self {
        Self::builder(params, hw).build()
    }

    /// Starts building a simulation of `params` hardware under
    /// configuration `hw` (see [`SimulationBuilder`]).
    pub fn builder(params: SystemParams, hw: HwConfig) -> SimulationBuilder<'t> {
        SimulationBuilder {
            params,
            hw,
            tracer: Tracer::off(),
            budget: SimBudget::UNLIMITED,
            regions: Vec::new(),
            #[cfg(feature = "check")]
            checker: false,
        }
    }

    /// Creates a simulation with an injected trace sink handle.
    #[deprecated(
        since = "0.1.0",
        note = "use `Simulation::builder(params, hw).tracer(tracer).build()`"
    )]
    pub fn with_tracer(params: SystemParams, hw: HwConfig, tracer: Tracer<'t>) -> Self {
        Self::builder(params, hw).tracer(tracer).build()
    }

    /// Installs a watchdog budget. Limits apply to the simulation's
    /// cumulative kernel count and clock (not per kernel), take effect
    /// from the next [`Simulation::run_kernel`] call, and replace any
    /// previously-set budget (a previously-latched breach is kept).
    #[deprecated(
        since = "0.1.0",
        note = "set the budget at construction: `Simulation::builder(params, hw).budget(b).build()`"
    )]
    pub fn set_budget(&mut self, budget: SimBudget) {
        self.budget = budget;
    }

    /// The configured watchdog budget (unlimited by default).
    pub fn budget(&self) -> SimBudget {
        self.budget
    }

    /// Whether a budget limit has been breached. Once set, every
    /// subsequent [`Simulation::run_kernel`] call is ignored, so partial
    /// statistics stay valid for reporting.
    pub fn budget_exhausted(&self) -> bool {
        self.breach.is_some()
    }

    /// The first budget breach observed, if any.
    pub fn budget_breach(&self) -> Option<BudgetBreach> {
        self.breach
    }

    /// Latches a breach if the budget is exceeded at the current clock /
    /// kernel count / wall time. Called at kernel boundaries (the cycle
    /// and deadline limits are additionally enforced inside the event
    /// loop, so `reached` is exact under cycle-skipping).
    fn check_budget(&mut self) {
        if self.breach.is_some() {
            return;
        }
        if let Some(limit) = self.budget.max_kernels {
            if self.stats.kernels >= limit {
                self.breach = Some(BudgetBreach::Kernels {
                    limit,
                    reached: self.stats.kernels,
                });
                return;
            }
        }
        if let Some(limit) = self.budget.max_cycles {
            if self.clock >= limit {
                self.breach = Some(BudgetBreach::Cycles {
                    limit,
                    reached: self.clock,
                });
                return;
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                self.breach = Some(BudgetBreach::Deadline {
                    reached: self.clock,
                });
            }
        }
    }

    /// The injected trace handle (off unless one was passed to
    /// [`SimulationBuilder::tracer`]).
    pub fn tracer(&self) -> Tracer<'t> {
        self.tracer
    }

    /// The hardware configuration under simulation.
    pub fn hw(&self) -> HwConfig {
        self.hw
    }

    /// Registers a named address region for per-data-structure
    /// attribution (GSI-style; see [`crate::stats::RegionStats`]).
    #[deprecated(
        since = "0.1.0",
        note = "register regions at construction: `Simulation::builder(params, hw).region(..).build()`"
    )]
    pub fn register_region(&mut self, name: impl Into<String>, base: u64, bytes: u64) {
        self.mem.register_region(name, base, bytes);
    }

    /// Per-region attribution collected so far, as `(name, stats)`
    /// pairs in base-address order.
    pub fn region_stats(&self) -> Vec<(String, crate::stats::RegionStats)> {
        self.mem.region_stats()
    }

    /// Reconfigures the hardware point between kernels (flexible
    /// coherence/consistency hardware, as the paper's Spandex-based
    /// outlook envisions). Takes effect from the next
    /// [`Simulation::run_kernel`] call; switching coherence protocols
    /// relinquishes DeNovo ownership state.
    pub fn reconfigure(&mut self, hw: HwConfig) {
        self.hw = hw;
        self.mem.reconfigure(hw);
    }

    /// The system parameters under simulation.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Executes one kernel launch to completion (or to the budget
    /// boundary, whichever comes first).
    ///
    /// Empty kernels (no threads) are ignored entirely.
    pub fn run_kernel(&mut self, kernel: &KernelTrace) {
        if kernel.num_threads() == 0 {
            return;
        }
        self.check_budget();
        if self.breach.is_some() {
            return;
        }
        let kernel_seq = self.stats.kernels;
        self.stats.kernels += 1;
        if self.tracer.enabled() {
            // Round boundary: the pre-launch clock marks where the host
            // submitted this iteration's kernel.
            self.tracer.emit(&TraceEvent::Iteration {
                round: kernel_seq,
                cycle: self.clock,
            });
        }
        let counters_before = self.mem.counters;
        let flits_before = self.mem.noc_flit_total();
        let hard_stop = self.budget.max_cycles;

        // Kernel launch overhead: all SMs idle. A cycle budget clamps
        // the launch itself — the breach cycle can fall inside it.
        let launch = self.params.kernel_launch_cycles;
        if let Some(limit) = hard_stop {
            if self.clock + launch >= limit {
                let idle = limit - self.clock;
                self.clock = limit;
                self.stats
                    .breakdown
                    .record(StallClass::Idle, idle * self.params.num_sms as u64);
                self.stats.total_cycles = self.clock;
                self.check_budget();
                return;
            }
        }
        self.clock += launch;
        self.stats
            .breakdown
            .record(StallClass::Idle, launch * self.params.num_sms as u64);

        // Launch acquire: self-invalidate every L1 (owned DeNovo lines
        // survive inside `MemorySystem`).
        self.mem.begin_kernel();

        let start = self.clock;
        let num_blocks = kernel.num_blocks();
        if self.tracer.enabled() {
            self.tracer.emit(&TraceEvent::KernelBegin {
                kernel: kernel_seq,
                cycle: start,
                blocks: num_blocks,
                threads: kernel.num_threads(),
            });
        }
        let tb = kernel.tb_size() as u64;
        // Pre-slice blocks to hand to SMs.
        let threads: Vec<crate::trace::ThreadsSlice<'_>> = (0..num_blocks)
            .map(|b| {
                let lo = (b * tb) as usize;
                let hi = ((b + 1) * tb).min(kernel.num_threads()) as usize;
                kernel.threads_slice(lo, hi)
            })
            .collect();

        let mut sms: Vec<Sm<'_>> = (0..self.params.num_sms)
            .map(|id| {
                Sm::new(
                    id,
                    start,
                    self.hw.consistency,
                    self.params.warp_size,
                    self.params.line_bytes,
                    self.params.max_blocks_per_sm,
                    self.params.scheduler,
                )
                .with_tracer(self.tracer)
                .with_hard_stop(hard_stop)
            })
            .collect();

        let mut next_block = 0usize;

        // Initial block distribution, round-robin over SMs.
        'fill: loop {
            let mut any = false;
            for sm in sms.iter_mut() {
                if next_block >= threads.len() {
                    break 'fill;
                }
                if sm.has_capacity() {
                    sm.assign_block(threads[next_block]);
                    next_block += 1;
                    any = true;
                }
            }
            if !any {
                break;
            }
        }

        // Event loop: every SM is parked on the wheel at the absolute
        // cycle of its next wake-up; popping resumes the earliest one
        // (ties by id, so the interleaving is deterministic).
        let mut wheel = CalendarWheel::new(start);
        for sm in &sms {
            wheel.schedule(sm.now, sm.id());
        }

        let deadline = self.budget.deadline;
        let mut events: u32 = 0;
        let mut deadline_hit: Option<u64> = None;
        let mut finish_times = vec![0u64; sms.len()];
        let mut done = vec![false; sms.len()];
        while let Some((t, id)) = wheel.pop() {
            if let Some(d) = deadline {
                events = events.wrapping_add(1);
                if events.is_multiple_of(DEADLINE_CHECK_EVERY) && Instant::now() >= d {
                    deadline_hit = Some(t);
                    break;
                }
            }
            let idx = id as usize;
            if done[idx] {
                continue;
            }
            let sm = &mut sms[idx];
            if sm.now != t {
                // Stale wake-up (the SM already ran past it inside an
                // earlier quantum); park it again at the true time.
                wheel.schedule(sm.now, id);
                continue;
            }
            let horizon = t + QUANTUM_CYCLES;
            loop {
                // Feed new blocks whenever capacity frees up.
                while sm.has_capacity() && next_block < threads.len() {
                    sm.assign_block(threads[next_block]);
                    next_block += 1;
                }
                match sm.step(&mut self.mem) {
                    Step::Issued | Step::Waited => {
                        if sm.now > horizon {
                            // Quantum exhausted: park until the SM's
                            // local clock, letting its peers catch up.
                            wheel.schedule(sm.now, id);
                            break;
                        }
                    }
                    Step::Stopped => {
                        // Cycle budget: the SM sits exactly on the
                        // boundary and never resumes.
                        finish_times[idx] = sm.now;
                        done[idx] = true;
                        break;
                    }
                    Step::Drained => {
                        if next_block < threads.len() {
                            continue; // more blocks to fetch
                        }
                        finish_times[idx] = sm.finish_time(&self.mem);
                        done[idx] = true;
                        break;
                    }
                }
            }
        }

        if let Some(reached) = deadline_hit {
            // Wall-clock abort mid-kernel: keep the statistics recorded
            // so far, pin the clock at the abort cycle, and latch.
            self.abort_kernel(&sms, reached, kernel_seq, &counters_before, flits_before);
            self.breach = Some(BudgetBreach::Deadline { reached });
            return;
        }

        let mut kernel_end = finish_times
            .iter()
            .copied()
            .max()
            .unwrap_or(start)
            .max(self.mem.global_drain())
            .max(start);
        if let Some(limit) = hard_stop {
            // The drain tail (outstanding memory completions) may lie
            // past the budget boundary; the budget cuts it off so the
            // breach is observed at exactly the limit.
            kernel_end = kernel_end.min(limit);
            for f in finish_times.iter_mut() {
                *f = (*f).min(limit);
            }
        }

        // Aggregate per-SM breakdowns plus end-of-kernel idle time.
        for (i, sm) in sms.iter().enumerate() {
            self.stats.breakdown += sm.stats;
            let fin = finish_times[i].max(sm.now);
            // Cycles between an SM's own completion and the kernel end
            // are idle; cycles between `now` and its own outstanding
            // completions are sync drain.
            if finish_times[i] > sm.now {
                self.stats
                    .breakdown
                    .record(StallClass::Sync, finish_times[i] - sm.now);
            }
            self.stats
                .breakdown
                .record(StallClass::Idle, kernel_end - fin);
        }

        self.clock = kernel_end;
        self.stats.total_cycles = self.clock;
        self.stats.mem = self.mem.counters;

        if self.tracer.enabled() {
            self.emit_kernel_end(kernel_seq, kernel_end, &counters_before, flits_before);
        }
        // Re-check after the kernel so a breach (now at exactly the
        // budget cycle, thanks to the clamping above) is visible to the
        // caller immediately, not only on the next launch attempt.
        self.check_budget();
    }

    /// Mid-kernel abort bookkeeping (wall-clock deadline): fold in the
    /// partial per-SM statistics and close the kernel's trace span at
    /// `reached`.
    fn abort_kernel(
        &mut self,
        sms: &[Sm<'_>],
        reached: u64,
        kernel_seq: u64,
        counters_before: &crate::stats::MemCounters,
        flits_before: u64,
    ) {
        for sm in sms {
            self.stats.breakdown += sm.stats;
        }
        self.clock = reached;
        self.stats.total_cycles = reached;
        self.stats.mem = self.mem.counters;
        if self.tracer.enabled() {
            self.emit_kernel_end(kernel_seq, reached, counters_before, flits_before);
        }
    }

    /// Per-kernel counter deltas (the memory system accumulates across
    /// kernels) plus the end-of-kernel marker.
    fn emit_kernel_end(
        &self,
        kernel_seq: u64,
        kernel_end: u64,
        counters_before: &crate::stats::MemCounters,
        flits_before: u64,
    ) {
        let d = self.mem.counters.delta(counters_before);
        self.tracer.emit(&TraceEvent::CacheCounters {
            kernel: kernel_seq,
            cycle: kernel_end,
            l1_hits: d.l1_hits,
            l1_misses: d.l1_misses,
            l2_hits: d.l2_hits,
            l2_misses: d.l2_misses,
            l1_atomics: d.l1_atomics,
            l2_atomics: d.l2_atomics,
            registrations: d.registrations,
            remote_transfers: d.remote_transfers,
            invalidations: d.invalidations,
        });
        self.tracer.emit(&TraceEvent::NocTotals {
            kernel: kernel_seq,
            cycle: kernel_end,
            line_transfers: d.noc_line_transfers,
            control_messages: d.noc_control_messages,
            flits: self.mem.noc_flit_total().saturating_sub(flits_before),
        });
        self.tracer.emit(&TraceEvent::KernelEnd {
            kernel: kernel_seq,
            cycle: kernel_end,
        });
    }

    /// Read-only view of the statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Consumes the simulation and returns the final statistics.
    pub fn finish(self) -> ExecStats {
        self.stats
    }
}

/// Protocol invariant checking (`check` feature): forwarding to
/// [`MemorySystem`]'s checker so tools never need the memory system
/// directly. See [`crate::check`].
#[cfg(feature = "check")]
impl<'t> Simulation<'t> {
    /// Enables the protocol invariant checker for all subsequent
    /// kernels (equivalent to [`SimulationBuilder::checker`]).
    pub fn enable_protocol_checker(&mut self) {
        self.mem.enable_protocol_checker();
    }

    /// Drains the protocol violations recorded so far.
    pub fn take_protocol_violations(&mut self) -> Vec<crate::check::ProtocolViolation> {
        self.mem.take_protocol_violations()
    }

    /// Audits the full cache/ownership state at the current simulated
    /// cycle (per-access checks only cover touched lines).
    pub fn audit_protocol(&mut self) {
        self.mem.audit(self.clock);
    }

    /// Fault-injection hooks for negative tests (see [`DebugHooks`]).
    pub fn debug_hooks(&mut self) -> DebugHooks<'_, 't> {
        DebugHooks { mem: &mut self.mem }
    }
}

/// Fault-injection handle for negative protocol-checker tests (`check`
/// feature only): deliberately corrupt coherence state and assert the
/// checker notices. Obtained via [`Simulation::debug_hooks`], so the
/// injection surface stays off the plain simulation API.
#[cfg(feature = "check")]
#[derive(Debug)]
pub struct DebugHooks<'a, 't> {
    mem: &'a mut MemorySystem<'t>,
}

#[cfg(feature = "check")]
impl DebugHooks<'_, '_> {
    /// Plants `line` as Owned in SM `sm`'s L1 behind the ownership
    /// registry's back: see [`MemorySystem::debug_force_owned`].
    pub fn force_owned(&mut self, sm: u32, line: u64) {
        self.mem.debug_force_owned(sm, line);
    }

    /// Makes the next acquire skip its self-invalidation: see
    /// [`MemorySystem::debug_skip_next_invalidation`].
    pub fn skip_next_invalidation(&mut self) {
        self.mem.debug_skip_next_invalidation();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoherenceKind, ConsistencyModel};
    use crate::trace::MicroOp;

    fn hw(c: CoherenceKind, m: ConsistencyModel) -> HwConfig {
        HwConfig::new(c, m)
    }

    fn compute_kernel(threads: usize, ops: usize) -> KernelTrace {
        KernelTrace::new(vec![vec![MicroOp::compute(2); ops]; threads], 256)
    }

    #[test]
    fn tracer_emits_kernel_lifecycle_events() {
        use ggs_trace::{JsonlSink, Tracer};

        let sink = JsonlSink::new(Vec::new());
        {
            let mut sim = Simulation::builder(
                SystemParams::default(),
                hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
            )
            .tracer(Tracer::new(&sink, 100))
            .build();
            // Loads so the cache counters are non-trivial.
            let threads = (0..256u64)
                .map(|t| vec![MicroOp::load(t * 4), MicroOp::compute(4)])
                .collect();
            sim.run_kernel(&KernelTrace::new(threads, 256));
            sim.finish();
        }
        let text = String::from_utf8(sink.into_inner()).expect("jsonl is utf-8");
        for kind in [
            "iteration",
            "kernel_begin",
            "kernel_end",
            "cache_counters",
            "noc_totals",
        ] {
            assert!(text.contains(kind), "missing event kind {kind}:\n{text}");
        }
    }

    #[test]
    fn deprecated_constructor_shims_still_work() {
        // The pre-builder API is kept as thin shims; behavior must be
        // identical to the builder path.
        #![allow(deprecated)]
        let mut old = Simulation::with_tracer(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
            Tracer::off(),
        );
        old.set_budget(SimBudget {
            max_kernels: Some(2),
            ..SimBudget::UNLIMITED
        });
        old.register_region("a", 0, 4096);

        let mut new = Simulation::builder(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        )
        .budget(SimBudget {
            max_kernels: Some(2),
            ..SimBudget::UNLIMITED
        })
        .region("a", 0, 4096)
        .build();

        for _ in 0..3 {
            old.run_kernel(&compute_kernel(256, 4));
            new.run_kernel(&compute_kernel(256, 4));
        }
        assert_eq!(old.budget_breach(), new.budget_breach());
        assert_eq!(old.region_stats(), new.region_stats());
        assert_eq!(old.finish().total_cycles(), new.finish().total_cycles());
    }

    #[test]
    fn empty_kernel_is_free() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&KernelTrace::new(Vec::new(), 256));
        assert_eq!(sim.finish().total_cycles(), 0);
    }

    #[test]
    fn single_block_runs_on_one_sm() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&compute_kernel(256, 4));
        let stats = sim.finish();
        assert!(stats.total_cycles() > 0);
        assert!(stats.breakdown.get(StallClass::Busy) > 0);
        // 14 of 15 SMs were idle the whole kernel.
        assert!(stats.breakdown.get(StallClass::Idle) > 0);
    }

    #[test]
    fn more_blocks_take_longer() {
        let run = |blocks: usize| {
            let mut sim = Simulation::new(
                SystemParams::default(),
                hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
            );
            sim.run_kernel(&compute_kernel(256 * blocks, 16));
            sim.finish().total_cycles()
        };
        // Compare past the fixed kernel-launch overhead.
        let launch = SystemParams::default().kernel_launch_cycles;
        let t15 = run(15) - launch;
        let t150 = run(150) - launch;
        assert!(t150 > t15 * 5, "t15={t15} t150={t150}");
    }

    #[test]
    fn blocks_spread_over_sms() {
        // 15 blocks of heavy compute should take barely longer than 1.
        let run = |blocks: usize| {
            let mut sim = Simulation::new(
                SystemParams::default(),
                hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
            );
            sim.run_kernel(&compute_kernel(256 * blocks, 64));
            sim.finish().total_cycles()
        };
        let t1 = run(1);
        let t15 = run(15);
        assert!(
            t15 < t1 * 2,
            "parallel blocks should overlap: t1={t1} t15={t15}"
        );
    }

    #[test]
    fn kernel_budget_stops_further_launches() {
        let mut sim = Simulation::builder(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        )
        .budget(SimBudget {
            max_kernels: Some(2),
            ..SimBudget::UNLIMITED
        })
        .build();
        for _ in 0..10 {
            sim.run_kernel(&compute_kernel(256, 4));
        }
        assert!(sim.budget_exhausted());
        assert!(matches!(
            sim.budget_breach(),
            Some(BudgetBreach::Kernels { limit: 2, .. })
        ));
        assert_eq!(sim.stats().kernels, 2, "third and later launches ignored");
    }

    #[test]
    fn cycle_budget_breaches_at_exactly_the_limit() {
        // The limit falls inside the kernel launch overhead: the clock
        // must stop at the limit itself, not at the end of the launch.
        let mut sim = Simulation::builder(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        )
        .budget(SimBudget {
            max_cycles: Some(1),
            ..SimBudget::UNLIMITED
        })
        .build();
        sim.run_kernel(&compute_kernel(256, 4));
        assert_eq!(sim.stats().kernels, 1);
        assert_eq!(
            sim.budget_breach(),
            Some(BudgetBreach::Cycles {
                limit: 1,
                reached: 1
            })
        );
        let clock_after = sim.stats().total_cycles();
        assert_eq!(clock_after, 1, "the clock stops exactly at the limit");
        sim.run_kernel(&compute_kernel(256, 4));
        assert_eq!(sim.stats().kernels, 1);
        assert_eq!(sim.stats().total_cycles(), clock_after);
    }

    #[test]
    fn cycle_budget_is_exact_under_cycle_skipping() {
        // Memory-bound kernel: warps stall for long latencies, so the
        // engine's stall jumps would overshoot a mid-stall limit if the
        // skip target were not clamped to the budget boundary.
        let params = SystemParams::default();
        let limit = params.kernel_launch_cycles + 150;
        let scattered_loads = KernelTrace::new(
            (0..256u64)
                .map(|t| (0..8).map(|k| MicroOp::load((t * 8 + k) * 4096)).collect())
                .collect(),
            256,
        );
        let mut sim = Simulation::builder(params, hw(CoherenceKind::Gpu, ConsistencyModel::Drf0))
            .budget(SimBudget {
                max_cycles: Some(limit),
                ..SimBudget::UNLIMITED
            })
            .build();
        sim.run_kernel(&scattered_loads);
        assert_eq!(
            sim.budget_breach(),
            Some(BudgetBreach::Cycles {
                limit,
                reached: limit
            }),
            "breach is detected at the exact breach cycle"
        );
        let stats = sim.finish();
        assert_eq!(stats.total_cycles(), limit);
    }

    #[test]
    fn expired_deadline_blocks_the_next_launch() {
        let mut sim = Simulation::builder(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        )
        .budget(SimBudget {
            deadline: Some(Instant::now()),
            ..SimBudget::UNLIMITED
        })
        .build();
        sim.run_kernel(&compute_kernel(256, 4));
        assert_eq!(sim.stats().kernels, 0, "deadline already expired");
        assert!(matches!(
            sim.budget_breach(),
            Some(BudgetBreach::Deadline { .. })
        ));
    }

    #[test]
    fn deadline_aborts_a_running_kernel() {
        // A deadline slightly in the future expires while the (large)
        // kernel is in flight; the engine must abandon it mid-kernel
        // rather than running it to completion first. The margin is
        // wall-clock-sensitive, so retry with doubling margins: too
        // tight and the launch itself is refused (kernels == 0), too
        // loose and the kernel completes (no breach).
        let kernel = compute_kernel(256 * 256, 64);
        let mut outcomes = Vec::new();
        for micros in [50u64, 200, 800, 3200, 12800] {
            let mut sim = Simulation::builder(
                SystemParams::default(),
                hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
            )
            .budget(SimBudget {
                deadline: Some(Instant::now() + std::time::Duration::from_micros(micros)),
                ..SimBudget::UNLIMITED
            })
            .build();
            sim.run_kernel(&kernel);
            let aborted_mid_kernel = sim.stats().kernels == 1
                && matches!(sim.budget_breach(), Some(BudgetBreach::Deadline { .. }));
            if aborted_mid_kernel {
                return;
            }
            outcomes.push((micros, sim.stats().kernels, sim.budget_breach()));
        }
        panic!("no margin aborted mid-kernel: {outcomes:?}");
    }

    #[test]
    fn unlimited_budget_never_breaches() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        assert!(!SimBudget::UNLIMITED.is_limited());
        for _ in 0..4 {
            sim.run_kernel(&compute_kernel(256, 2));
        }
        assert!(!sim.budget_exhausted());
        assert!(sim.budget_breach().is_none());
        assert_eq!(sim.stats().kernels, 4);
    }

    #[test]
    fn budget_breach_display_names_the_limit() {
        let k = BudgetBreach::Kernels {
            limit: 5,
            reached: 5,
        };
        assert!(k.to_string().contains("kernel budget"));
        let c = BudgetBreach::Cycles {
            limit: 100,
            reached: 100,
        };
        assert!(c.to_string().contains("cycle budget"));
        let d = BudgetBreach::Deadline { reached: 42 };
        assert!(d.to_string().contains("deadline"));
    }

    #[test]
    fn stats_accumulate_across_kernels() {
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&compute_kernel(256, 4));
        let t1 = sim.stats().total_cycles();
        sim.run_kernel(&compute_kernel(256, 4));
        let t2 = sim.stats().total_cycles();
        assert!(t2 > t1);
        assert_eq!(sim.stats().kernels, 2);
    }

    #[test]
    fn fully_stalled_sm_parks_and_is_rearmed_by_completion() {
        // One warp on one SM issues a cold load whose miss latency is
        // pushed far past the scheduling quantum, so the SM goes fully
        // memory-stalled and must park in the event wheel; only the
        // completion event re-arms it to issue its second slot. If the
        // re-arm were lost the busy count would stop at 1 and the tail
        // accounting below could not close.
        let params = SystemParams {
            mem_base_cycles: 10_000,
            ..SystemParams::default()
        };
        let launch = params.kernel_launch_cycles;
        let kernel = KernelTrace::new(
            vec![vec![MicroOp::load(0x10_000), MicroOp::compute(2)]; 32],
            32,
        );
        let mut sim =
            Simulation::builder(params, hw(CoherenceKind::Gpu, ConsistencyModel::Drf0)).build();
        sim.run_kernel(&kernel);
        let stats = sim.finish();
        let b = &stats.breakdown;
        assert_eq!(b.get(StallClass::Busy), 2, "both slots issued");
        let data = b.get(StallClass::Data);
        assert!(data >= 9_000, "park spans the miss latency, got {data}");
        // The issuing SM is never idle (it finishes last), so its
        // cycles from launch to kernel end partition exactly into
        // busy + data-stall + tail sync.
        assert_eq!(
            b.get(StallClass::Busy) + data + b.get(StallClass::Sync),
            stats.total_cycles() - launch,
        );
    }

    #[test]
    fn drained_sms_skip_clock_to_next_wheel_event() {
        // Two single-warp blocks on two SMs, each stalling far past the
        // quantum on a compute dependency. Both SMs park, the wheel
        // holds wakeups at two distinct future cycles, and with every
        // SM stalled the clock must skip straight to each event: the
        // final cycle count is exact, with no rounding to quantum or
        // sampling boundaries.
        let params = SystemParams::default();
        let launch = params.kernel_launch_cycles;
        let mut threads = vec![vec![MicroOp::compute(50_000), MicroOp::compute(2)]; 32];
        threads.extend(vec![
            vec![MicroOp::compute(60_000), MicroOp::compute(2)];
            32
        ]);
        let kernel = KernelTrace::new(threads, 32);
        let mut sim =
            Simulation::builder(params, hw(CoherenceKind::Gpu, ConsistencyModel::Drf0)).build();
        sim.run_kernel(&kernel);
        let stats = sim.finish();
        // Per SM: issue (1) + comp stall + issue (1) + 2-cycle tail;
        // the kernel ends at the slower SM's tail.
        assert_eq!(stats.total_cycles(), launch + 1 + 60_000 + 1 + 2);
        assert_eq!(stats.breakdown.get(StallClass::Busy), 4);
        assert_eq!(stats.breakdown.get(StallClass::Comp), 110_000);
    }

    #[test]
    fn many_blocks_refill_in_waves() {
        // 64 blocks over 15 SMs with capacity 8: every block must run.
        let kernel = compute_kernel(256 * 64, 2);
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf0),
        );
        sim.run_kernel(&kernel);
        let stats = sim.finish();
        // Busy cycles equal the total number of issued warp instructions:
        // 64 blocks x 8 warps x 2 slots.
        assert_eq!(stats.breakdown.get(StallClass::Busy), 64 * 8 * 2);
    }

    #[test]
    fn reconfigure_between_kernels_changes_behavior() {
        let atomic_kernel = KernelTrace::new(
            (0..256u64).map(|t| vec![MicroOp::atomic(t * 4)]).collect(),
            256,
        );
        let mut sim = Simulation::new(
            SystemParams::default(),
            hw(CoherenceKind::Gpu, ConsistencyModel::Drf1),
        );
        sim.run_kernel(&atomic_kernel);
        let gpu_atomics_first = sim.stats().mem.l2_atomics;
        assert!(gpu_atomics_first > 0);
        sim.reconfigure(hw(CoherenceKind::DeNovo, ConsistencyModel::Drf1));
        sim.run_kernel(&atomic_kernel);
        let stats = sim.finish();
        assert!(
            stats.mem.l1_atomics > 0,
            "DeNovo kernel executed L1 atomics"
        );
        assert_eq!(
            stats.mem.l2_atomics, gpu_atomics_first,
            "no further L2 atomics after switching to DeNovo"
        );
    }

    #[test]
    fn denovo_retains_ownership_across_kernels() {
        let store_kernel = KernelTrace::new(
            (0..256u64).map(|t| vec![MicroOp::store(t * 4)]).collect(),
            256,
        );
        let atomic_kernel = KernelTrace::new(
            (0..256u64).map(|t| vec![MicroOp::atomic(t * 4)]).collect(),
            256,
        );
        let run = |c: CoherenceKind| {
            let mut sim = Simulation::new(SystemParams::default(), hw(c, ConsistencyModel::Drf1));
            sim.run_kernel(&store_kernel);
            sim.run_kernel(&atomic_kernel);
            sim.finish()
        };
        let dn = run(CoherenceKind::DeNovo);
        let gp = run(CoherenceKind::Gpu);
        assert!(dn.mem.l1_atomics > 0, "DeNovo should hit owned lines");
        assert_eq!(gp.mem.l1_atomics, 0, "GPU coherence never does L1 atomics");
    }
}

#[cfg(test)]
mod scheduler_tests {
    use super::*;
    use crate::config::{CoherenceKind, ConsistencyModel};
    use crate::params::SchedulerPolicy;
    use crate::trace::MicroOp;

    fn run_with(policy: SchedulerPolicy) -> crate::stats::ExecStats {
        // Store-heavy DeNovo kernel on a tiny L1: stores are
        // fire-and-forget, so a warp stays ready cycle after cycle — GTO
        // streams one warp's sequential stores (the owned line stays
        // resident), while round robin interleaves all warps and thrashes
        // ownership out of the small L1.
        let threads: Vec<Vec<MicroOp>> = (0..512u64)
            .map(|t| (0..16).map(|k| MicroOp::store((t * 16 + k) * 4)).collect())
            .collect();
        let kernel = KernelTrace::new(threads, 256);
        let params = SystemParams {
            scheduler: policy,
            l1_bytes: 4096,
            l1_assoc: 4,
            ..SystemParams::default()
        };
        let mut sim = Simulation::new(
            params,
            HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::Drf1),
        );
        sim.run_kernel(&kernel);
        sim.finish()
    }

    #[test]
    fn gto_preserves_store_locality_better_than_round_robin() {
        let gto = run_with(SchedulerPolicy::GreedyThenOldest);
        let rr = run_with(SchedulerPolicy::RoundRobin);
        // Same work is issued either way; only the interleaving differs.
        assert_eq!(
            gto.breakdown.get(crate::stats::StallClass::Busy),
            rr.breakdown.get(crate::stats::StallClass::Busy)
        );
        assert!(
            gto.mem.registrations < rr.mem.registrations,
            "GTO ({}) should re-register less than RR ({})",
            gto.mem.registrations,
            rr.mem.registrations
        );
    }
}
