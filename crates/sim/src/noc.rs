//! 4×4 mesh network-on-chip model (the paper simulates a Garnet 4×4
//! mesh, §V-C).
//!
//! Nodes 0–14 host the GPU SMs, node 15 the CPU core; each node also
//! hosts one L2 bank (16-bank NUCA). Memory controllers sit at the four
//! corners. Latency is modeled as a base cost plus a per-hop cost over
//! the Manhattan distance, which lands every access inside the paper's
//! Table IV ranges (L2 29–61, remote L1 35–83, memory 197–261 cycles).

use crate::params::SystemParams;

/// Payload bytes carried per NoC flit (Garnet's default link width).
pub const FLIT_BYTES: u32 = 16;

/// The 4×4 mesh topology and its latency model.
///
/// The three round-trip latency functions are pure in the node pair, so
/// they are precomputed over all 16×16 node pairs at construction and
/// served from flat lookup tables on the access hot path.
#[derive(Debug, Clone)]
pub struct Mesh {
    side: u32,
    /// `nodes() - 1`; the node count is a power of two (4×4), so the
    /// hot-path node mapping is a mask instead of a `div`.
    node_mask: u32,
    l2_base: u64,
    l2_hop: u64,
    mem_base: u64,
    mem_hop: u64,
    remote_base: u64,
    remote_hop: u64,
    line_flits: u64,
    /// `l2_lat[sm_node * 16 + bank_node]`: SM-to-L2-bank round trip.
    l2_lat: [u64; 256],
    /// `mem_pen[bank_node]`: added miss penalty to the nearest MC.
    mem_pen: [u64; 16],
    /// `remote_lat[requester_node * 16 + owner_node]`: L1-to-L1 trip.
    remote_lat: [u64; 256],
}

impl Mesh {
    /// Builds the mesh from system parameters.
    pub fn new(params: &SystemParams) -> Self {
        let mut mesh = Self {
            side: 4,
            node_mask: 15,
            l2_base: params.l2_base_cycles,
            l2_hop: params.l2_hop_cycles,
            mem_base: params.mem_base_cycles,
            mem_hop: params.mem_hop_cycles,
            remote_base: params.remote_l1_base_cycles,
            remote_hop: params.remote_l1_hop_cycles,
            line_flits: (params.line_bytes.div_ceil(FLIT_BYTES) + 1) as u64,
            l2_lat: [0; 256],
            mem_pen: [0; 16],
            remote_lat: [0; 256],
        };
        for a in 0..mesh.nodes() {
            mesh.mem_pen[a as usize] =
                mesh.mem_base - mesh.l2_base + mesh.mem_hop * mesh.hops(a, mesh.nearest_mc(a));
            for b in 0..mesh.nodes() {
                let i = (a * mesh.nodes() + b) as usize;
                mesh.l2_lat[i] = mesh.l2_base + mesh.l2_hop * mesh.hops(a, b);
                mesh.remote_lat[i] = mesh.remote_base + mesh.remote_hop * mesh.hops(a, b);
            }
        }
        mesh
    }

    /// Flits needed to move one cache-line payload: one head/control
    /// flit plus `line_bytes / FLIT_BYTES` payload flits.
    pub fn line_flits(&self) -> u64 {
        self.line_flits
    }

    /// Flits per control message (requests, acks, word-sized replies):
    /// a single flit.
    pub fn control_flits(&self) -> u64 {
        1
    }

    /// Total flits implied by a traffic mix of full-line transfers and
    /// control messages.
    pub fn flit_total(&self, line_transfers: u64, control_messages: u64) -> u64 {
        line_transfers * self.line_flits() + control_messages * self.control_flits()
    }

    /// Number of mesh nodes.
    pub fn nodes(&self) -> u32 {
        self.side * self.side
    }

    /// Manhattan hop distance between two nodes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a node id is out of range.
    pub fn hops(&self, a: u32, b: u32) -> u64 {
        debug_assert!(a < self.nodes() && b < self.nodes(), "node out of range");
        let (ax, ay) = (a % self.side, a / self.side);
        let (bx, by) = (b % self.side, b / self.side);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Mesh node hosting L2 bank `bank`.
    #[inline]
    pub fn bank_node(&self, bank: u32) -> u32 {
        bank & self.node_mask
    }

    /// Mesh node hosting SM `sm` (SMs occupy nodes 0..15; the CPU takes
    /// node 15).
    #[inline]
    pub fn sm_node(&self, sm: u32) -> u32 {
        sm & self.node_mask
    }

    /// Nearest memory-controller node (corners: 0, 3, 12, 15) to `node`.
    pub fn nearest_mc(&self, node: u32) -> u32 {
        let corners = [0, self.side - 1, self.nodes() - self.side, self.nodes() - 1];
        corners
            .into_iter()
            .min_by_key(|&c| self.hops(node, c))
            .expect("corners non-empty")
    }

    /// Round-trip latency for SM `sm` to reach L2 bank `bank` and hit.
    #[inline]
    pub fn l2_latency(&self, sm: u32, bank: u32) -> u64 {
        self.l2_lat[(self.sm_node(sm) * self.nodes() + self.bank_node(bank)) as usize]
    }

    /// Additional latency when the L2 misses and bank `bank` must fetch
    /// the line from its nearest memory controller. The *total* memory
    /// latency seen by the SM is `l2_latency + mem_penalty`, which spans
    /// the paper's 197–261 cycle range.
    #[inline]
    pub fn mem_penalty(&self, bank: u32) -> u64 {
        self.mem_pen[self.bank_node(bank) as usize]
    }

    /// Round-trip latency for transferring ownership of a line from SM
    /// `owner`'s L1 to SM `requester`'s L1 (DeNovo remote L1 hit).
    #[inline]
    pub fn remote_l1_latency(&self, requester: u32, owner: u32) -> u64 {
        self.remote_lat[(self.sm_node(requester) * self.nodes() + self.sm_node(owner)) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(&SystemParams::default())
    }

    #[test]
    fn hop_distances() {
        let m = mesh();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
    }

    #[test]
    fn l2_latency_within_table_iv_range() {
        let m = mesh();
        for sm in 0..15 {
            for bank in 0..16 {
                let l = m.l2_latency(sm, bank);
                assert!((29..=61).contains(&l), "sm={sm} bank={bank} lat={l}");
            }
        }
    }

    #[test]
    fn remote_l1_latency_within_range() {
        let m = mesh();
        for a in 0..15 {
            for b in 0..15 {
                let l = m.remote_l1_latency(a, b);
                assert!((35..=83).contains(&l), "lat={l}");
            }
        }
    }

    #[test]
    fn memory_latency_within_range() {
        let m = mesh();
        for sm in 0..15 {
            for bank in 0..16 {
                let total = m.l2_latency(sm, bank) + m.mem_penalty(bank);
                assert!((197..=261).contains(&total), "total={total}");
            }
        }
    }

    #[test]
    fn nearest_mc_is_a_corner() {
        let m = mesh();
        for n in 0..16 {
            assert!([0, 3, 12, 15].contains(&m.nearest_mc(n)));
        }
        assert_eq!(m.nearest_mc(0), 0);
        assert_eq!(m.nearest_mc(7), 3);
    }

    #[test]
    fn latency_grows_with_distance() {
        let m = mesh();
        assert!(m.l2_latency(0, 15) > m.l2_latency(0, 0));
        assert!(m.remote_l1_latency(0, 14) > m.remote_l1_latency(0, 1));
    }

    #[test]
    fn latency_tables_match_hop_formula() {
        // The precomputed tables must agree with the base + hop * hops
        // formulas they replaced, for every reachable (node, node) pair.
        let m = mesh();
        let p = SystemParams::default();
        for sm in 0..15 {
            for bank in 0..16 {
                assert_eq!(
                    m.l2_latency(sm, bank),
                    p.l2_base_cycles + p.l2_hop_cycles * m.hops(m.sm_node(sm), m.bank_node(bank))
                );
            }
        }
        for bank in 0..16 {
            let bn = m.bank_node(bank);
            assert_eq!(
                m.mem_penalty(bank),
                p.mem_base_cycles - p.l2_base_cycles
                    + p.mem_hop_cycles * m.hops(bn, m.nearest_mc(bn))
            );
        }
        for a in 0..15 {
            for b in 0..15 {
                assert_eq!(
                    m.remote_l1_latency(a, b),
                    p.remote_l1_base_cycles
                        + p.remote_l1_hop_cycles * m.hops(m.sm_node(a), m.sm_node(b))
                );
            }
        }
    }

    #[test]
    fn flit_accounting() {
        let m = mesh();
        // 64-byte lines over 16-byte flits: 4 payload + 1 head flit.
        assert_eq!(m.line_flits(), 5);
        assert_eq!(m.control_flits(), 1);
        assert_eq!(m.flit_total(10, 7), 57);
        assert_eq!(m.flit_total(0, 0), 0);
    }
}
