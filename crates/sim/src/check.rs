//! Dynamic coherence-protocol invariant checking (the `check` feature).
//!
//! The simulator's two protocols maintain internal invariants that no
//! counter or timing assertion would catch if they broke — a stale line
//! surviving an acquire changes *which* accesses hit, not whether the
//! run completes. This module is an observer threaded through
//! [`crate::mem::MemorySystem`] that re-derives those invariants from
//! raw cache state after every access and records violations with
//! enough diagnostics (cycle, SM, line) to debug them:
//!
//! * **SWMR** — at most one L1 holds a line `Owned` (DeNovo's
//!   single-writer guarantee);
//! * **registry consistency** — the DeNovo ownership registry and the
//!   L1 `Owned` states agree exactly, in both directions;
//! * **GPU coherence owns nothing** — write-through L1s never hold a
//!   registered (dirty) line, so nothing can be lost past a release;
//! * **acquire leaves no stale lines** — after a self-invalidation,
//!   only `Owned` lines remain in the acquiring L1.
//!
//! The checker is compiled in only under the `check` feature and
//! enabled at runtime ([`crate::Simulation::enable_protocol_checker`]),
//! so ordinary timing runs pay nothing. Fault injectors on the
//! [`crate::DebugHooks`] handle ([`crate::DebugHooks::force_owned`],
//! [`crate::DebugHooks::skip_next_invalidation`], obtained via
//! [`crate::Simulation::debug_hooks`]) let tests prove the checker
//! actually fires — a checker that cannot fail certifies nothing.

use std::fmt;

/// Which protocol invariant a [`ProtocolViolation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// More than one L1 holds the same line in `Owned` state: the
    /// single-writer/multiple-reader guarantee is broken and stores can
    /// be silently lost.
    Swmr,
    /// The DeNovo ownership registry and the L1 `Owned` states
    /// disagree — a registered owner whose L1 does not hold the line
    /// `Owned`, or an L1 `Owned` line with no (or a different)
    /// registry entry.
    OwnerMapMismatch,
    /// An L1 holds an `Owned` line under GPU coherence. Write-through
    /// L1s never register lines, so a release cannot account for such a
    /// line and its data would escape the store-buffer drain.
    GpuOwnedLine,
    /// A `Valid` (unowned) line survived an acquire's
    /// self-invalidation and could serve stale data.
    StaleAfterAcquire,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InvariantKind::Swmr => "SWMR",
            InvariantKind::OwnerMapMismatch => "owner-map-mismatch",
            InvariantKind::GpuOwnedLine => "gpu-owned-line",
            InvariantKind::StaleAfterAcquire => "stale-after-acquire",
        })
    }
}

/// One detected protocol invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Simulated cycle of the access (or audit) that exposed the
    /// violation.
    pub cycle: u64,
    /// SM whose L1 is implicated.
    pub sm: u32,
    /// Cache line number (byte address >> line shift).
    pub line: u64,
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Human-readable specifics (other SMs involved, registry entry,
    /// line state found).
    pub detail: String,
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cycle {}] {} at SM {} line {:#x}: {}",
            self.cycle, self.kind, self.sm, self.line, self.detail
        )
    }
}

/// Mutable checker state owned by the memory system. The invariant
/// logic itself lives in `MemorySystem` (it needs the caches and the
/// ownership registry); this struct only accumulates results and holds
/// injection flags.
#[derive(Debug, Default)]
pub(crate) struct ProtocolChecker {
    /// Violations recorded since the last
    /// [`crate::mem::MemorySystem::take_protocol_violations`].
    pub(crate) violations: Vec<ProtocolViolation>,
    /// Fault injection: the next acquire skips its self-invalidation.
    pub(crate) skip_next_invalidation: bool,
    /// Cycle of the most recent checked access, used to timestamp
    /// violations found at events that carry no cycle (acquires).
    pub(crate) now: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_carries_diagnostics() {
        let v = ProtocolViolation {
            cycle: 1234,
            sm: 7,
            line: 0x40,
            kind: InvariantKind::Swmr,
            detail: "also owned by SM 3".to_owned(),
        };
        let text = v.to_string();
        assert!(text.contains("1234"), "{text}");
        assert!(text.contains("SM 7"), "{text}");
        assert!(text.contains("0x40"), "{text}");
        assert!(text.contains("SWMR"), "{text}");
        assert!(text.contains("SM 3"), "{text}");
    }

    #[test]
    fn kind_display_names_are_distinct() {
        let kinds = [
            InvariantKind::Swmr,
            InvariantKind::OwnerMapMismatch,
            InvariantKind::GpuOwnedLine,
            InvariantKind::StaleAfterAcquire,
        ];
        let names: std::collections::BTreeSet<String> =
            kinds.iter().map(|k| k.to_string()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
