//! Address-space layout helper.
//!
//! Trace generators need concrete byte addresses for the arrays a kernel
//! touches (`row_ptr`, `col_idx`, vertex properties, …). [`AddressSpace`]
//! hands out non-overlapping, line-aligned regions so different arrays
//! never alias in the simulated caches.

/// Allocator of non-overlapping array regions in the simulated address
/// space.
///
/// # Example
///
/// ```
/// use ggs_sim::layout::AddressSpace;
///
/// let mut space = AddressSpace::new(64);
/// let ranks = space.array("rank", 1000);
/// let next = space.array("rank_next", 1000);
/// assert_eq!(ranks.addr(0) % 64, 0);
/// assert!(next.addr(0) >= ranks.addr(999) + 4);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    line_bytes: u64,
    next: u64,
    regions: Vec<(String, u64, u64)>, // (name, base, bytes)
}

impl AddressSpace {
    /// Creates an empty address space whose regions are aligned to
    /// `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn new(line_bytes: u32) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        Self {
            line_bytes: line_bytes as u64,
            next: 0,
            regions: Vec::new(),
        }
    }

    /// Allocates a region for `elements` 32-bit words and returns a
    /// handle for computing element addresses.
    ///
    /// A guard line is left between consecutive regions so that arrays
    /// never share a cache line.
    pub fn array(&mut self, name: impl Into<String>, elements: u64) -> ArrayHandle {
        let bytes = elements * 4;
        let base = self.next;
        let occupied = bytes.div_ceil(self.line_bytes) * self.line_bytes;
        self.next = base + occupied + self.line_bytes;
        self.regions.push((name.into(), base, bytes));
        ArrayHandle { base, elements }
    }

    /// Total bytes allocated so far (including alignment padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.next
    }

    /// Iterates `(name, base, bytes)` of every allocated region.
    pub fn regions(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.regions.iter().map(|(n, b, s)| (n.as_str(), *b, *s))
    }
}

/// Handle to one allocated array region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHandle {
    base: u64,
    elements: u64,
}

impl ArrayHandle {
    /// Byte address of element `index`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `index` is out of bounds.
    #[inline]
    pub fn addr(&self, index: u64) -> u64 {
        debug_assert!(index < self.elements, "array index out of bounds");
        self.base + index * 4
    }

    /// Number of 32-bit elements in the region.
    pub fn len(&self) -> u64 {
        self.elements
    }

    /// `true` if the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elements == 0
    }

    /// Base byte address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut s = AddressSpace::new(64);
        let a = s.array("a", 17);
        let b = s.array("b", 17);
        let a_end = a.addr(16) + 4;
        assert!(b.addr(0) >= a_end);
        // Guard line: different cache lines entirely.
        assert_ne!(a.addr(16) / 64, b.addr(0) / 64);
    }

    #[test]
    fn regions_are_line_aligned() {
        let mut s = AddressSpace::new(64);
        let _ = s.array("a", 3);
        let b = s.array("b", 3);
        assert_eq!(b.addr(0) % 64, 0);
    }

    #[test]
    fn element_addresses_are_contiguous_words() {
        let mut s = AddressSpace::new(64);
        let a = s.array("a", 8);
        assert_eq!(a.addr(1) - a.addr(0), 4);
        assert_eq!(a.len(), 8);
        assert!(!a.is_empty());
    }

    #[test]
    fn region_listing() {
        let mut s = AddressSpace::new(64);
        let _ = s.array("rank", 10);
        let names: Vec<_> = s.regions().map(|(n, _, _)| n.to_owned()).collect();
        assert_eq!(names, ["rank"]);
        assert!(s.allocated_bytes() > 0);
    }

    #[test]
    fn empty_array() {
        let mut s = AddressSpace::new(64);
        let a = s.array("empty", 0);
        assert!(a.is_empty());
    }
}
