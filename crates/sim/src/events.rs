//! Event scheduling primitives for the event-driven engine core.
//!
//! Two calendar-queue structures back the simulator's cycle-skipping:
//!
//! * [`CalendarWheel`] — the NoC/DRAM event wheel. The engine schedules
//!   each SM's next wake-up at an absolute cycle (the earliest warp
//!   `ready_at`, which is a memory/NoC completion time when the SM is
//!   fully memory-stalled) and pops wake-ups in `(cycle, id)` order.
//!   Empty buckets are skipped through an occupancy bitmap, so when
//!   every SM is parked the clock jumps directly to the next ready
//!   event.
//! * [`CompletionRing`] — the MSHR completion ring. A capacity-bounded
//!   multiset of absolute completion times (MSHR entries, store-buffer
//!   slots, outstanding-atomic trackers): admission retires everything
//!   that completed by `now` and, when the structure is full, returns
//!   the earliest outstanding completion as the admission time.
//!
//! Both are drop-in replacements for binary heaps and are **required**
//! to reproduce the heap orderings bit-exactly: the golden 18-cell
//! statistics (`tests/golden_stats.rs`) pin every counter, so the wheel
//! must pop ties by lowest id and the ring must retire and admit at
//! exactly the cycles the heap-based `CapacityQueue` used to.
//!
//! # Layout
//!
//! A wheel holds `W` (a power of two) buckets; an event at absolute
//! cycle `t` lives in bucket `t & (W - 1)`. All buckets within the
//! active window `[cursor, cursor + W)` map to distinct slots, so no
//! per-bucket time tag is needed. Events scheduled at or beyond
//! `cursor + W` overflow into a binary heap and migrate into the wheel
//! as the cursor advances (migration happens before every pop, which
//! keeps every wheel entry at or below every overflow entry — the pop
//! never has to compare the two). A one-bit-per-bucket occupancy bitmap
//! lets the pop scan skip empty regions 64 buckets at a time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of buckets in a [`CalendarWheel`]; covers the engine's run
/// quantum and the Table IV memory round-trips without overflowing.
const WHEEL_BUCKETS: usize = 512;

/// Number of buckets in a [`CompletionRing`]; covers every single-shot
/// memory latency (chains under contention overflow to the heap).
const RING_BUCKETS: usize = 1024;

/// A calendar queue of `(absolute cycle, id)` wake-up events that pops
/// in lexicographic `(cycle, id)` order — the same order as a
/// `BinaryHeap<Reverse<(u64, u32)>>`, in O(1) amortized time per event.
#[derive(Debug)]
pub struct CalendarWheel {
    /// `WHEEL_BUCKETS` buckets of ids; bucket `t & mask` holds the
    /// events at cycle `t` for `t` within `[cursor, cursor + W)`.
    buckets: Vec<Vec<u32>>,
    mask: u64,
    /// Lower bound on every live event's cycle (monotone).
    cursor: u64,
    /// One bit per non-empty bucket, indexed by bucket number.
    occupancy: Vec<u64>,
    /// Events scheduled at `cursor + W` or beyond, migrated into the
    /// wheel as the cursor advances.
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    len: usize,
}

impl CalendarWheel {
    /// Creates an empty wheel with its cursor at cycle `start`.
    pub fn new(start: u64) -> Self {
        Self {
            buckets: vec![Vec::new(); WHEEL_BUCKETS],
            mask: (WHEEL_BUCKETS - 1) as u64,
            cursor: start,
            occupancy: vec![0; WHEEL_BUCKETS / 64],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the wheel and moves the cursor to `start` (bucket
    /// allocations are kept for reuse across kernels).
    pub fn reset(&mut self, start: u64) {
        if self.len > 0 {
            for b in &mut self.buckets {
                b.clear();
            }
            self.occupancy.fill(0);
            self.overflow.clear();
            self.len = 0;
        }
        self.cursor = start;
    }

    /// Schedules a wake-up for `id` at absolute cycle `at`. Scheduling
    /// in the past (below the last popped cycle) is clamped to the
    /// present, which keeps the pop order consistent.
    pub fn schedule(&mut self, at: u64, id: u32) {
        let at = at.max(self.cursor);
        self.len += 1;
        if at - self.cursor < WHEEL_BUCKETS as u64 {
            let b = (at & self.mask) as usize;
            self.buckets[b].push(id);
            self.occupancy[b / 64] |= 1 << (b % 64);
        } else {
            self.overflow.push(Reverse((at, id)));
        }
    }

    /// Pops the earliest event; ties at the same cycle resolve to the
    /// lowest id. Advances the cursor to the popped cycle.
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Keep the migration invariant: everything below
            // `cursor + W` lives in the wheel, so a non-empty wheel
            // always holds the global minimum.
            while let Some(&Reverse((t, _))) = self.overflow.peek() {
                if t - self.cursor < WHEEL_BUCKETS as u64 {
                    let Reverse((t, id)) = self.overflow.pop().expect("peeked");
                    let b = (t & self.mask) as usize;
                    self.buckets[b].push(id);
                    self.occupancy[b / 64] |= 1 << (b % 64);
                } else {
                    break;
                }
            }
            if let Some(b) = self.first_occupied() {
                let t = self.time_of(b);
                // Lowest-id tie-break within the bucket (buckets are
                // small: one entry per parked SM at most).
                let (pos, &id) = self.buckets[b]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &id)| id)
                    .expect("occupied bucket is non-empty");
                self.buckets[b].swap_remove(pos);
                if self.buckets[b].is_empty() {
                    self.occupancy[b / 64] &= !(1 << (b % 64));
                }
                self.len -= 1;
                self.cursor = t;
                return Some((t, id));
            }
            // Wheel empty, overflow not: jump the cursor to the
            // overflow minimum and let migration place it.
            let &Reverse((t, _)) = self.overflow.peek().expect("len > 0");
            self.cursor = t;
        }
    }

    /// First occupied bucket in window order (nearest future cycle).
    fn first_occupied(&self) -> Option<usize> {
        let start = (self.cursor & self.mask) as usize;
        // The window wraps at `start`: scan `[start, W)` then
        // `[0, start)`, adjusting the first word for the offset.
        let words = self.occupancy.len();
        let (w0, bit0) = (start / 64, start % 64);
        let first = self.occupancy[w0] & (!0u64 << bit0);
        if first != 0 {
            return Some(w0 * 64 + first.trailing_zeros() as usize);
        }
        for i in 1..words {
            let w = (w0 + i) % words;
            if self.occupancy[w] != 0 {
                return Some(w * 64 + self.occupancy[w].trailing_zeros() as usize);
            }
        }
        let tail = self.occupancy[w0] & !(!0u64 << bit0);
        if tail != 0 {
            return Some(w0 * 64 + tail.trailing_zeros() as usize);
        }
        None
    }

    /// Absolute cycle of bucket `b` under the current cursor.
    fn time_of(&self, b: usize) -> u64 {
        let offset = (b as u64).wrapping_sub(self.cursor) & self.mask;
        self.cursor + offset
    }
}

/// A capacity-bounded multiset of absolute completion times: the MSHR
/// completion ring (also used for store-buffer slots and
/// outstanding-atomic trackers).
///
/// Semantics match the heap-based capacity queue it replaces exactly:
/// [`CompletionRing::admit_at`] first retires every completion at or
/// before `now`, then returns `now` if a slot is free, otherwise
/// removes and returns the earliest outstanding completion (the cycle
/// at which the next slot frees up).
#[derive(Debug)]
pub struct CompletionRing {
    /// Completion counts per bucket for cycles in `[cursor, cursor + W)`.
    counts: Vec<u32>,
    mask: u64,
    /// No bucketed completion is below `cursor` (monotone; tracks the
    /// largest retirement cycle seen).
    cursor: u64,
    occupancy: Vec<u64>,
    /// Completions at `cursor + W` or beyond.
    overflow: BinaryHeap<Reverse<u64>>,
    /// Completions pushed *below* the cursor (an SM running behind the
    /// ring's high-water `now` — rare, but must retire exactly).
    early: BinaryHeap<Reverse<u64>>,
    /// Live completions across buckets, overflow, and early.
    outstanding: usize,
    capacity: usize,
    /// Latest completion ever enqueued (for drains).
    high_water: u64,
}

impl CompletionRing {
    /// Creates an empty ring admitting at most `capacity` outstanding
    /// completions.
    pub fn new(capacity: usize) -> Self {
        Self {
            counts: vec![0; RING_BUCKETS],
            mask: (RING_BUCKETS - 1) as u64,
            cursor: 0,
            occupancy: vec![0; RING_BUCKETS / 64],
            overflow: BinaryHeap::new(),
            early: BinaryHeap::new(),
            outstanding: 0,
            capacity,
            high_water: 0,
        }
    }

    /// Live (un-retired) completions.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Returns the time at which a free slot is available (`now` if one
    /// is free already; otherwise the earliest outstanding completion,
    /// which is removed).
    ///
    /// Retirement of completed entries is *lazy*: `outstanding` may
    /// overcount until the ring looks full, because completed-but-
    /// unretired entries only ever make the count too high. If even the
    /// stale count is under capacity a slot is certainly free, so the
    /// common (uncontended) admit skips the retirement sweep entirely;
    /// only an apparently-full ring pays for `CompletionRing::retire`
    /// and re-checks. The admitted time is identical to eager
    /// retirement in every case.
    pub fn admit_at(&mut self, now: u64) -> u64 {
        if self.outstanding < self.capacity {
            return now;
        }
        self.retire(now);
        if self.outstanding < self.capacity {
            now
        } else {
            let t = self.pop_min().expect("full ring is non-empty");
            t.max(now)
        }
    }

    /// Records a transaction completing at `completion`.
    pub fn push(&mut self, completion: u64) {
        self.high_water = self.high_water.max(completion);
        self.outstanding += 1;
        if completion < self.cursor {
            self.early.push(Reverse(completion));
        } else if completion - self.cursor < RING_BUCKETS as u64 {
            let b = (completion & self.mask) as usize;
            self.counts[b] += 1;
            self.occupancy[b / 64] |= 1 << (b % 64);
        } else {
            self.overflow.push(Reverse(completion));
        }
    }

    /// Time by which every outstanding entry has completed.
    pub fn drain_time(&self) -> u64 {
        self.high_water
    }

    /// Removes every completion at or before `now` and advances the
    /// cursor past them.
    fn retire(&mut self, now: u64) {
        while let Some(&Reverse(t)) = self.early.peek() {
            if t <= now {
                self.early.pop();
                self.outstanding -= 1;
            } else {
                break;
            }
        }
        if now < self.cursor {
            return;
        }
        // Clear occupied buckets in `[cursor, now]`, window-ordered.
        while let Some(b) = self.first_occupied() {
            let t = self.time_of(b);
            if t > now {
                break;
            }
            self.outstanding -= self.counts[b] as usize;
            self.counts[b] = 0;
            self.occupancy[b / 64] &= !(1 << (b % 64));
            self.cursor = t;
        }
        self.cursor = now + 1;
        // The advanced cursor widens the window: migrate overflow
        // completions that now fit (or retire them outright).
        while let Some(&Reverse(t)) = self.overflow.peek() {
            if t <= now {
                self.overflow.pop();
                self.outstanding -= 1;
            } else if t - self.cursor < RING_BUCKETS as u64 {
                self.overflow.pop();
                let b = (t & self.mask) as usize;
                self.counts[b] += 1;
                self.occupancy[b / 64] |= 1 << (b % 64);
            } else {
                break;
            }
        }
    }

    /// Removes and returns the earliest outstanding completion.
    fn pop_min(&mut self) -> Option<u64> {
        if self.outstanding == 0 {
            return None;
        }
        let wheel_min = self.first_occupied().map(|b| self.time_of(b));
        let early_min = self.early.peek().map(|&Reverse(t)| t);
        let over_min = self.overflow.peek().map(|&Reverse(t)| t);
        // `early` sits below the cursor and the migration in `retire`
        // keeps the wheel minimum below the overflow front, but a push
        // after the last retire can land anywhere — compare all three.
        let min = [early_min, wheel_min, over_min]
            .into_iter()
            .flatten()
            .min()
            .expect("outstanding > 0");
        self.outstanding -= 1;
        if early_min == Some(min) {
            self.early.pop();
        } else if wheel_min == Some(min) {
            let b = (min & self.mask) as usize;
            self.counts[b] -= 1;
            if self.counts[b] == 0 {
                self.occupancy[b / 64] &= !(1 << (b % 64));
            }
        } else {
            self.overflow.pop();
        }
        Some(min)
    }

    fn first_occupied(&self) -> Option<usize> {
        let start = (self.cursor & self.mask) as usize;
        let words = self.occupancy.len();
        let (w0, bit0) = (start / 64, start % 64);
        let first = self.occupancy[w0] & (!0u64 << bit0);
        if first != 0 {
            return Some(w0 * 64 + first.trailing_zeros() as usize);
        }
        for i in 1..words {
            let w = (w0 + i) % words;
            if self.occupancy[w] != 0 {
                return Some(w * 64 + self.occupancy[w].trailing_zeros() as usize);
            }
        }
        let tail = self.occupancy[w0] & !(!0u64 << bit0);
        if tail != 0 {
            return Some(w0 * 64 + tail.trailing_zeros() as usize);
        }
        None
    }

    fn time_of(&self, b: usize) -> u64 {
        let offset = (b as u64).wrapping_sub(self.cursor) & self.mask;
        self.cursor + offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model for the wheel: a plain binary heap.
    #[derive(Default)]
    struct HeapWheel(BinaryHeap<Reverse<(u64, u32)>>);

    impl HeapWheel {
        fn schedule(&mut self, at: u64, id: u32) {
            self.0.push(Reverse((at, id)));
        }
        fn pop(&mut self) -> Option<(u64, u32)> {
            self.0.pop().map(|Reverse(e)| e)
        }
    }

    /// Reference model for the ring: the heap-based capacity queue the
    /// ring replaced (verbatim semantics).
    struct HeapQueue {
        heap: BinaryHeap<Reverse<u64>>,
        capacity: usize,
        high_water: u64,
    }

    impl HeapQueue {
        fn new(capacity: usize) -> Self {
            Self {
                heap: BinaryHeap::new(),
                capacity,
                high_water: 0,
            }
        }
        fn admit_at(&mut self, now: u64) -> u64 {
            while let Some(&Reverse(t)) = self.heap.peek() {
                if t <= now {
                    self.heap.pop();
                } else {
                    break;
                }
            }
            if self.heap.len() < self.capacity {
                now
            } else {
                let Reverse(t) = self.heap.pop().expect("full");
                t.max(now)
            }
        }
        fn push(&mut self, completion: u64) {
            self.high_water = self.high_water.max(completion);
            self.heap.push(Reverse(completion));
        }
    }

    /// Deterministic pseudo-random stream (splitmix64).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn same_cycle_events_pop_in_id_order() {
        let mut w = CalendarWheel::new(100);
        // Insertion order scrambled; same cycle must pop lowest id
        // first — the engine's SM interleaving depends on it.
        w.schedule(107, 9);
        w.schedule(107, 2);
        w.schedule(107, 14);
        w.schedule(107, 0);
        assert_eq!(w.pop(), Some((107, 0)));
        assert_eq!(w.pop(), Some((107, 2)));
        assert_eq!(w.pop(), Some((107, 9)));
        assert_eq!(w.pop(), Some((107, 14)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn wheel_wraps_around_bucket_boundary() {
        // Cycles straddling a multiple of the bucket count land in
        // wrapped bucket indices; order must still come out by cycle.
        let near_wrap = 3 * WHEEL_BUCKETS as u64 - 2;
        let mut w = CalendarWheel::new(near_wrap);
        for (i, dt) in [0u64, 1, 2, 3, 5, 100].iter().enumerate() {
            w.schedule(near_wrap + dt, i as u32);
        }
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push(e);
        }
        let cycles: Vec<u64> = out.iter().map(|&(t, _)| t).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted, "pops come out in cycle order");
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], (near_wrap, 0));
        assert_eq!(out[5], (near_wrap + 100, 5));
    }

    #[test]
    fn far_future_events_overflow_and_migrate() {
        let mut w = CalendarWheel::new(0);
        w.schedule(10 * WHEEL_BUCKETS as u64, 1); // overflow
        w.schedule(3, 2); // wheel
        assert_eq!(w.pop(), Some((3, 2)));
        assert_eq!(w.pop(), Some((10 * WHEEL_BUCKETS as u64, 1)));
        // After the cursor advanced, near events re-use migrated space.
        w.schedule(10 * WHEEL_BUCKETS as u64 + 7, 3);
        assert_eq!(w.pop(), Some((10 * WHEEL_BUCKETS as u64 + 7, 3)));
    }

    #[test]
    fn wheel_matches_heap_on_random_workload() {
        let mut w = CalendarWheel::new(0);
        let mut h = HeapWheel::default();
        let mut rng = Rng(7);
        let mut clock = 0u64;
        for i in 0..10_000u32 {
            // Mixed schedule/pop traffic with occasional far-future
            // events (overflow) and same-cycle collisions.
            if !rng.next().is_multiple_of(3) {
                let dt = match rng.next() % 10 {
                    0 => rng.next() % 5_000, // far future
                    _ => rng.next() % 300,   // typical memory latency
                };
                w.schedule(clock + dt, i % 16);
                h.schedule(clock + dt, i % 16);
            } else {
                let a = w.pop();
                let b = h.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    clock = t;
                }
            }
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn ring_admits_immediately_until_full() {
        let mut r = CompletionRing::new(2);
        assert_eq!(r.admit_at(10), 10);
        r.push(50);
        assert_eq!(r.admit_at(11), 11);
        r.push(60);
        // Full: the next admission waits for the earliest completion.
        assert_eq!(r.admit_at(12), 50);
        r.push(70);
        assert_eq!(r.drain_time(), 70);
    }

    #[test]
    fn ring_retires_completions_at_admission() {
        let mut r = CompletionRing::new(1);
        r.push(30);
        // At cycle 31 the single slot has retired: admission is free.
        assert_eq!(r.admit_at(31), 31);
        assert_eq!(r.outstanding(), 0);
    }

    #[test]
    fn ring_handles_out_of_order_admission_times() {
        // SMs run ahead of each other, so `now` is not monotone across
        // admissions; completions may even land below an earlier `now`.
        let mut r = CompletionRing::new(1);
        assert_eq!(r.admit_at(1000), 1000);
        r.push(500); // below the ring's high-water `now`
        assert_eq!(r.admit_at(600), 600, "the 500 completion has retired");
        r.push(650);
        assert_eq!(r.admit_at(620), 650, "full: wait for the live entry");
    }

    #[test]
    fn ring_matches_heap_queue_on_random_workload() {
        for cap in [1usize, 2, 16, 128] {
            let mut r = CompletionRing::new(cap);
            let mut q = HeapQueue::new(cap);
            let mut rng = Rng(cap as u64);
            let mut now = 0u64;
            for _ in 0..10_000 {
                // Non-monotone `now` (SMs interleave out of order) and
                // completions from nearby to far-future (chains).
                now = now.saturating_add(rng.next() % 50).saturating_sub(8);
                let a = r.admit_at(now);
                let b = q.admit_at(now);
                assert_eq!(a, b, "admission diverged at now={now} cap={cap}");
                let completion = a + rng.next() % 4_000;
                r.push(completion);
                q.push(completion);
                assert_eq!(r.drain_time(), q.high_water);
                // The ring retires lazily, so its raw count may
                // transiently overcount; after an explicit sweep at
                // `now` both sides must agree on live entries.
                r.retire(now);
                while q.heap.peek().is_some_and(|&Reverse(t)| t <= now) {
                    q.heap.pop();
                }
                assert_eq!(r.outstanding(), q.heap.len());
            }
        }
    }
}
