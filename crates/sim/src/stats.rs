//! Execution statistics and the paper's stall-classification taxonomy.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Classification of a GPU-core cycle, following the stall taxonomy of
/// Alsop et al. used by the paper (§V-C):
///
/// * **Busy** — at least one instruction issued.
/// * **Comp** — waiting for a computation unit or a computation result.
/// * **Data** — waiting for a non-atomic memory operation (or a full
///   store buffer / MSHR on a data access).
/// * **Sync** — waiting for an atomic operation, a fence/flush, or a
///   barrier.
/// * **Idle** — the core has no work while the kernel is still running
///   elsewhere (includes kernel-launch gaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallClass {
    /// At least one instruction issued this cycle.
    Busy,
    /// Waiting on a computation unit or result.
    Comp,
    /// Waiting on a non-atomic memory operation.
    Data,
    /// Waiting on an atomic operation, flush, or barrier.
    Sync,
    /// No runnable work while other cores still execute the kernel.
    Idle,
}

impl StallClass {
    /// All five classes in display order.
    pub const ALL: [StallClass; 5] = [
        StallClass::Busy,
        StallClass::Comp,
        StallClass::Data,
        StallClass::Sync,
        StallClass::Idle,
    ];

    /// Static display name, used as the stall-sample trace-event label.
    pub fn name(self) -> &'static str {
        match self {
            StallClass::Busy => "Busy",
            StallClass::Comp => "Comp",
            StallClass::Data => "Data",
            StallClass::Sync => "Sync",
            StallClass::Idle => "Idle",
        }
    }
}

impl fmt::Display for StallClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class cycle counts for one SM or aggregated over the GPU.
///
/// # Example
///
/// ```
/// use ggs_sim::stats::{StallBreakdown, StallClass};
///
/// let mut b = StallBreakdown::default();
/// b.record(StallClass::Busy, 10);
/// b.record(StallClass::Sync, 5);
/// assert_eq!(b.total(), 15);
/// assert_eq!(b.get(StallClass::Sync), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    cycles: [u64; 5],
}

impl StallBreakdown {
    /// Records `cycles` of the given class.
    pub fn record(&mut self, class: StallClass, cycles: u64) {
        self.cycles[class as usize] += cycles;
    }

    /// Cycle count of one class.
    pub fn get(&self, class: StallClass) -> u64 {
        self.cycles[class as usize]
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of the total attributed to `class` (0 when empty).
    pub fn fraction(&self, class: StallClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(class) as f64 / total as f64
        }
    }

    /// Iterates `(class, cycles)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (StallClass, u64)> + '_ {
        StallClass::ALL.into_iter().map(|c| (c, self.get(c)))
    }
}

impl Add for StallBreakdown {
    type Output = StallBreakdown;

    fn add(mut self, rhs: StallBreakdown) -> StallBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for StallBreakdown {
    fn add_assign(&mut self, rhs: StallBreakdown) {
        for i in 0..5 {
            self.cycles[i] += rhs.cycles[i];
        }
    }
}

impl fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "busy={} comp={} data={} sync={} idle={}",
            self.get(StallClass::Busy),
            self.get(StallClass::Comp),
            self.get(StallClass::Data),
            self.get(StallClass::Sync),
            self.get(StallClass::Idle),
        )
    }
}

/// Aggregate result of a simulation: GPU execution time and where the
/// cycles went, plus memory-system event counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// GPU execution time in cycles (sum over kernels of the slowest
    /// SM's completion, plus kernel launch gaps).
    pub total_cycles: u64,
    /// Per-class breakdown summed over SMs (each SM contributes
    /// `total_cycles` cycles, classified).
    pub breakdown: StallBreakdown,
    /// Number of kernels executed.
    pub kernels: u64,
    /// Memory-system event counters.
    pub mem: MemCounters,
}

impl ExecStats {
    /// GPU execution time in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Normalized per-class fractions of all SM-cycles.
    pub fn stall_fractions(&self) -> [(StallClass, f64); 5] {
        StallClass::ALL.map(|c| (c, self.breakdown.fraction(c)))
    }
}

/// Per-region (per data structure) memory access attribution, in the
/// spirit of the GPU Stall Inspector (Alsop et al., ISPASS 2016) the
/// paper's methodology builds on: which array a workload's memory
/// traffic and latency actually go to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Non-atomic load transactions touching the region.
    pub loads: u64,
    /// Store transactions touching the region.
    pub stores: u64,
    /// Atomic operations touching the region.
    pub atomics: u64,
    /// L1 hits among the loads.
    pub l1_hits: u64,
    /// Stores satisfied locally (DeNovo owned-line writes; write-through
    /// GPU stores never hit).
    pub store_hits: u64,
    /// Atomics satisfied locally (DeNovo owned-line atomics; GPU atomics
    /// always execute at the L2).
    pub atomic_hits: u64,
    /// Summed completion latency (cycles) of all accesses to the
    /// region; divide by the access count for the average.
    pub total_latency: u64,
}

impl RegionStats {
    /// Total accesses of any kind.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores + self.atomics
    }

    /// Average latency per access (0 when the region was never
    /// touched).
    pub fn avg_latency(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }
}

/// Counters of memory-system events, useful for tests, model threshold
/// calibration, and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// L1 data-load hits.
    pub l1_hits: u64,
    /// L1 data-load misses.
    pub l1_misses: u64,
    /// L2 hits (on L1 misses and write-throughs needing data).
    pub l2_hits: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
    /// Atomics executed at the L2 (GPU coherence, or unowned DeNovo).
    pub l2_atomics: u64,
    /// Atomics executed locally at the L1 (DeNovo owned lines).
    pub l1_atomics: u64,
    /// DeNovo ownership registrations (L1 obtained ownership).
    pub registrations: u64,
    /// Ownership transfers that came from another SM's L1.
    pub remote_transfers: u64,
    /// Stores written through to L2 (GPU coherence).
    pub write_throughs: u64,
    /// L1 lines invalidated by acquire self-invalidations.
    pub invalidations: u64,
    /// Accesses delayed because the MSHR was full.
    pub mshr_stalls: u64,
    /// Stores delayed because the store buffer was full.
    pub store_buffer_stalls: u64,
    /// Cache-line-sized payloads moved across the NoC (fills,
    /// write-throughs, ownership transfers, writebacks).
    pub noc_line_transfers: u64,
    /// Word-sized / control messages across the NoC (atomic
    /// requests+replies, registration handshakes, invalidations sent).
    pub noc_control_messages: u64,
}

impl MemCounters {
    /// Field-wise difference against an `earlier` snapshot of the same
    /// monotonically increasing counters (the engine uses this for
    /// per-kernel trace deltas). Saturates rather than wrapping if a
    /// snapshot from a different run is passed.
    pub fn delta(&self, earlier: &MemCounters) -> MemCounters {
        MemCounters {
            l1_hits: self.l1_hits.saturating_sub(earlier.l1_hits),
            l1_misses: self.l1_misses.saturating_sub(earlier.l1_misses),
            l2_hits: self.l2_hits.saturating_sub(earlier.l2_hits),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            l2_atomics: self.l2_atomics.saturating_sub(earlier.l2_atomics),
            l1_atomics: self.l1_atomics.saturating_sub(earlier.l1_atomics),
            registrations: self.registrations.saturating_sub(earlier.registrations),
            remote_transfers: self
                .remote_transfers
                .saturating_sub(earlier.remote_transfers),
            write_throughs: self.write_throughs.saturating_sub(earlier.write_throughs),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            mshr_stalls: self.mshr_stalls.saturating_sub(earlier.mshr_stalls),
            store_buffer_stalls: self
                .store_buffer_stalls
                .saturating_sub(earlier.store_buffer_stalls),
            noc_line_transfers: self
                .noc_line_transfers
                .saturating_sub(earlier.noc_line_transfers),
            noc_control_messages: self
                .noc_control_messages
                .saturating_sub(earlier.noc_control_messages),
        }
    }
}

impl AddAssign for MemCounters {
    fn add_assign(&mut self, rhs: MemCounters) {
        self.l1_hits += rhs.l1_hits;
        self.l1_misses += rhs.l1_misses;
        self.l2_hits += rhs.l2_hits;
        self.l2_misses += rhs.l2_misses;
        self.l2_atomics += rhs.l2_atomics;
        self.l1_atomics += rhs.l1_atomics;
        self.registrations += rhs.registrations;
        self.remote_transfers += rhs.remote_transfers;
        self.write_throughs += rhs.write_throughs;
        self.invalidations += rhs.invalidations;
        self.mshr_stalls += rhs.mshr_stalls;
        self.store_buffer_stalls += rhs.store_buffer_stalls;
        self.noc_line_transfers += rhs.noc_line_transfers;
        self.noc_control_messages += rhs.noc_control_messages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = StallBreakdown::default();
        b.record(StallClass::Busy, 3);
        b.record(StallClass::Busy, 2);
        b.record(StallClass::Idle, 5);
        assert_eq!(b.get(StallClass::Busy), 5);
        assert_eq!(b.total(), 10);
        assert!((b.fraction(StallClass::Idle) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn breakdown_addition() {
        let mut a = StallBreakdown::default();
        a.record(StallClass::Data, 4);
        let mut b = StallBreakdown::default();
        b.record(StallClass::Data, 6);
        b.record(StallClass::Sync, 1);
        let c = a + b;
        assert_eq!(c.get(StallClass::Data), 10);
        assert_eq!(c.get(StallClass::Sync), 1);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(StallBreakdown::default().fraction(StallClass::Busy), 0.0);
    }

    #[test]
    fn iter_covers_all_classes() {
        let b = StallBreakdown::default();
        assert_eq!(b.iter().count(), 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(StallClass::Sync.to_string(), "Sync");
        let mut b = StallBreakdown::default();
        b.record(StallClass::Comp, 1);
        assert!(b.to_string().contains("comp=1"));
    }

    #[test]
    fn mem_counters_accumulate() {
        let mut a = MemCounters::default();
        let b = MemCounters {
            l1_hits: 2,
            registrations: 3,
            ..MemCounters::default()
        };
        a += b;
        assert_eq!(a.l1_hits, 2);
        assert_eq!(a.registrations, 3);
    }

    #[test]
    fn mem_counters_delta_subtracts_and_saturates() {
        let earlier = MemCounters {
            l1_hits: 5,
            l2_misses: 2,
            ..MemCounters::default()
        };
        let later = MemCounters {
            l1_hits: 9,
            l2_misses: 2,
            ..MemCounters::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.l1_hits, 4);
        assert_eq!(d.l2_misses, 0);
        // Swapped arguments saturate instead of wrapping.
        assert_eq!(earlier.delta(&later).l1_hits, 0);
    }

    #[test]
    fn stall_class_names_match_display() {
        for class in StallClass::ALL {
            assert_eq!(class.name(), class.to_string());
        }
    }
}
