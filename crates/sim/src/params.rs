//! Simulated system parameters (the paper's Table IV).

use std::fmt;

/// Validation failure from [`SystemParamsBuilder::build`] or one of the
/// fallible `try_*` constructors in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// A count or size parameter that must be ≥ 1 was zero.
    NonPositive(&'static str),
    /// A parameter that must be a power of two was not.
    NotPowerOfTwo(&'static str),
    /// A cache scale factor was zero, negative, or non-finite.
    BadScale(f64),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::NonPositive(what) => write!(f, "{what} must be positive"),
            ParamsError::NotPowerOfTwo(what) => {
                write!(f, "{what} must be a power of two")
            }
            ParamsError::BadScale(factor) => {
                write!(f, "scale factor must be positive and finite, got {factor}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// Warp scheduling policy of each SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest (GPGPU-Sim's GTO, the default): keep issuing
    /// from the current warp until it stalls, then move on. Maximizes
    /// intra-warp locality.
    #[default]
    GreedyThenOldest,
    /// Loose round-robin: rotate to the next ready warp after every
    /// issue. Maximizes latency overlap at the cost of locality.
    RoundRobin,
}

/// Parameters of the simulated heterogeneous system.
///
/// Defaults reproduce the paper's Table IV:
///
/// | Parameter | Value |
/// |---|---|
/// | GPU CUs (SMs) | 15 |
/// | L1 size (8-way) | 32 KB per SM |
/// | L2 size (16 banks, NUCA) | 4 MB shared |
/// | Store buffer | 128 entries |
/// | L1 MSHRs | 128 entries |
/// | L1 hit latency | 1 cycle |
/// | Remote L1 hit latency | 35–83 cycles |
/// | L2 hit latency | 29–61 cycles |
/// | Memory latency | 197–261 cycles |
///
/// The latency *ranges* come from NUCA/mesh distance; [`crate::noc::Mesh`]
/// converts hop counts into concrete latencies inside these ranges.
///
/// [`SystemParams::scaled_caches`] shrinks the cache capacities for runs
/// on scaled-down inputs, so that the paper's volume classification
/// (working set vs. cache capacity) is preserved — see DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// Number of GPU cores (CUs/SMs).
    pub num_sms: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Threads per thread block.
    pub tb_size: u32,
    /// Maximum thread blocks resident on one SM.
    pub max_blocks_per_sm: u32,

    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Per-SM L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// Shared L2 capacity in bytes (all banks together).
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// Number of L2 banks (one per mesh node).
    pub l2_banks: u32,

    /// L1 MSHR entries per SM.
    pub mshr_entries: u32,
    /// Store buffer entries per SM.
    pub store_buffer_entries: u32,

    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// Minimum L2 hit latency (grows with mesh hops).
    pub l2_base_cycles: u64,
    /// Additional L2 latency per mesh hop.
    pub l2_hop_cycles: u64,
    /// Minimum memory latency (grows with mesh hops).
    pub mem_base_cycles: u64,
    /// Additional memory latency per mesh hop (SM→bank and bank→MC).
    pub mem_hop_cycles: u64,
    /// Minimum remote-L1 (ownership transfer) latency.
    pub remote_l1_base_cycles: u64,
    /// Additional remote-L1 latency per mesh hop.
    pub remote_l1_hop_cycles: u64,

    /// L2 bank service occupancy per atomic operation (the RMW unit is
    /// pipelined across different words).
    pub l2_atomic_occupancy: u64,
    /// L2 directory service occupancy per DeNovo ownership registration
    /// (tag lookup + state update + invalidation + data reply).
    pub registration_occupancy: u64,
    /// L1 service occupancy per locally-executed (owned) atomic.
    pub l1_atomic_occupancy: u64,
    /// Read-modify-write latency of an atomic once it reaches its
    /// execution point (added on top of the network/cache latency).
    pub atomic_rmw_cycles: u64,

    /// Fixed cost charged between kernel launches (CPU-side launch and
    /// synchronization overhead), accounted as Idle time.
    pub kernel_launch_cycles: u64,

    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self {
            num_sms: 15,
            warp_size: 32,
            tb_size: 256,
            max_blocks_per_sm: 8,

            line_bytes: 64,
            l1_bytes: 32 * 1024,
            l1_assoc: 8,
            l2_bytes: 4 * 1024 * 1024,
            l2_assoc: 16,
            l2_banks: 16,

            mshr_entries: 128,
            store_buffer_entries: 128,

            l1_hit_cycles: 1,
            l2_base_cycles: 29,
            l2_hop_cycles: 5,
            mem_base_cycles: 197,
            mem_hop_cycles: 6,
            remote_l1_base_cycles: 35,
            remote_l1_hop_cycles: 8,

            l2_atomic_occupancy: 2,
            registration_occupancy: 4,
            l1_atomic_occupancy: 2,
            atomic_rmw_cycles: 6,

            kernel_launch_cycles: 2_000,
            scheduler: SchedulerPolicy::default(),
        }
    }
}

impl SystemParams {
    /// Returns the parameters with L1/L2 capacities multiplied by
    /// `factor`, keeping at least one set per cache.
    ///
    /// Used when simulating scale-reduced inputs: the paper's *volume*
    /// classification compares working-set size against cache capacity,
    /// so scaling both by the same factor preserves every class.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite. Prefer
    /// [`SystemParams::try_scaled_caches`] on paths that must not panic.
    pub fn scaled_caches(self, factor: f64) -> Self {
        self.try_scaled_caches(factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SystemParams::scaled_caches`]: rejects
    /// non-finite or non-positive factors instead of panicking.
    pub fn try_scaled_caches(mut self, factor: f64) -> Result<Self, ParamsError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(ParamsError::BadScale(factor));
        }
        let min_l1 = (self.line_bytes * self.l1_assoc) as u64;
        let min_l2 = (self.line_bytes * self.l2_assoc) as u64 * self.l2_banks as u64;
        self.l1_bytes = (((self.l1_bytes as f64 * factor) as u64) / min_l1).max(1) * min_l1;
        self.l2_bytes = (((self.l2_bytes as f64 * factor) as u64) / min_l2).max(1) * min_l2;
        Ok(self)
    }

    /// Start a fluent, validated builder seeded with the Table IV
    /// defaults.
    ///
    /// # Example
    ///
    /// ```
    /// use ggs_sim::SystemParams;
    ///
    /// let params = SystemParams::builder()
    ///     .num_sms(8)
    ///     .tb_size(128)
    ///     .scaled_caches(0.25)
    ///     .build()
    ///     .expect("valid parameters");
    /// assert_eq!(params.num_sms, 8);
    /// assert!(SystemParams::builder().line_bytes(48).build().is_err());
    /// ```
    pub fn builder() -> SystemParamsBuilder {
        SystemParamsBuilder {
            params: SystemParams::default(),
            scale: None,
        }
    }

    /// Check the structural invariants the simulator relies on.
    pub fn validate(&self) -> Result<(), ParamsError> {
        for (value, what) in [
            (self.num_sms, "num_sms"),
            (self.warp_size, "warp_size"),
            (self.tb_size, "tb_size"),
            (self.max_blocks_per_sm, "max_blocks_per_sm"),
            (self.line_bytes, "line_bytes"),
            (self.l1_assoc, "l1_assoc"),
            (self.l2_assoc, "l2_assoc"),
            (self.l2_banks, "l2_banks"),
            (self.mshr_entries, "mshr_entries"),
            (self.store_buffer_entries, "store_buffer_entries"),
        ] {
            if value == 0 {
                return Err(ParamsError::NonPositive(what));
            }
        }
        if self.l1_bytes == 0 {
            return Err(ParamsError::NonPositive("l1_bytes"));
        }
        if self.l2_bytes == 0 {
            return Err(ParamsError::NonPositive("l2_bytes"));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ParamsError::NotPowerOfTwo("line_bytes"));
        }
        Ok(())
    }

    /// Number of warps per thread block.
    pub fn warps_per_block(&self) -> u32 {
        self.tb_size.div_ceil(self.warp_size)
    }

    /// L1 capacity in kilobytes (used by the volume classifier).
    pub fn l1_kb(&self) -> f64 {
        self.l1_bytes as f64 / 1024.0
    }

    /// L2 capacity in kilobytes (used by the volume classifier).
    pub fn l2_kb(&self) -> f64 {
        self.l2_bytes as f64 / 1024.0
    }
}

/// Fluent, validated constructor for [`SystemParams`], created by
/// [`SystemParams::builder`]. Unset fields keep their Table IV default.
#[derive(Debug, Clone)]
pub struct SystemParamsBuilder {
    params: SystemParams,
    scale: Option<f64>,
}

macro_rules! builder_setter {
    ($(#[$doc:meta] $name:ident: $ty:ty),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(mut self, value: $ty) -> Self {
                self.params.$name = value;
                self
            }
        )*
    };
}

impl SystemParamsBuilder {
    builder_setter! {
        /// Number of GPU cores (CUs/SMs).
        num_sms: u32,
        /// Threads per warp.
        warp_size: u32,
        /// Threads per thread block.
        tb_size: u32,
        /// Maximum thread blocks resident on one SM.
        max_blocks_per_sm: u32,
        /// Cache line size in bytes (must be a power of two).
        line_bytes: u32,
        /// Per-SM L1 data cache capacity in bytes.
        l1_bytes: u64,
        /// L1 associativity.
        l1_assoc: u32,
        /// Shared L2 capacity in bytes.
        l2_bytes: u64,
        /// L2 associativity.
        l2_assoc: u32,
        /// Number of L2 banks.
        l2_banks: u32,
        /// L1 MSHR entries per SM.
        mshr_entries: u32,
        /// Store buffer entries per SM.
        store_buffer_entries: u32,
        /// Fixed cost charged between kernel launches.
        kernel_launch_cycles: u64,
        /// Warp scheduling policy.
        scheduler: SchedulerPolicy,
    }

    /// Scale L1/L2 capacities by `factor` (applied after the explicit
    /// sizes, validated in [`SystemParamsBuilder::build`]).
    pub fn scaled_caches(mut self, factor: f64) -> Self {
        self.scale = Some(factor);
        self
    }

    /// Validate and produce the parameters.
    pub fn build(self) -> Result<SystemParams, ParamsError> {
        self.params.validate()?;
        match self.scale {
            Some(factor) => self.params.try_scaled_caches(factor),
            None => Ok(self.params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let p = SystemParams::default();
        assert_eq!(p.num_sms, 15);
        assert_eq!(p.l1_bytes, 32 * 1024);
        assert_eq!(p.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(p.mshr_entries, 128);
        assert_eq!(p.store_buffer_entries, 128);
        assert_eq!(p.l1_hit_cycles, 1);
        assert_eq!(p.l2_base_cycles, 29);
        assert_eq!(p.mem_base_cycles, 197);
        assert_eq!(p.remote_l1_base_cycles, 35);
    }

    #[test]
    fn latency_ranges_match_table_iv() {
        // Max manhattan distance on a 4x4 mesh is 6 hops.
        let p = SystemParams::default();
        assert!(p.l2_base_cycles + 6 * p.l2_hop_cycles <= 61);
        assert!(p.remote_l1_base_cycles + 6 * p.remote_l1_hop_cycles == 83);
        assert!(p.mem_base_cycles + 9 * p.mem_hop_cycles <= 261);
    }

    #[test]
    fn scaling_shrinks_caches_proportionally() {
        let p = SystemParams::default().scaled_caches(0.125);
        assert_eq!(p.l1_bytes, 4 * 1024);
        assert_eq!(p.l2_bytes, 512 * 1024);
    }

    #[test]
    fn scaling_never_drops_below_one_set() {
        let p = SystemParams::default().scaled_caches(1e-9);
        assert!(p.l1_bytes >= (p.line_bytes * p.l1_assoc) as u64);
        assert!(p.l2_bytes >= (p.line_bytes * p.l2_assoc * p.l2_banks) as u64);
    }

    #[test]
    fn warps_per_block() {
        assert_eq!(SystemParams::default().warps_per_block(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaling_rejects_zero() {
        let _ = SystemParams::default().scaled_caches(0.0);
    }

    #[test]
    fn try_scaled_caches_reports_bad_factors() {
        assert_eq!(
            SystemParams::default().try_scaled_caches(0.0),
            Err(ParamsError::BadScale(0.0))
        );
        assert!(SystemParams::default().try_scaled_caches(f64::NAN).is_err());
        assert!(SystemParams::default().try_scaled_caches(0.5).is_ok());
    }

    #[test]
    fn builder_defaults_match_struct_defaults() {
        let built = SystemParams::builder().build().expect("defaults are valid");
        assert_eq!(built, SystemParams::default());
    }

    #[test]
    fn builder_applies_setters_and_scaling() {
        let p = SystemParams::builder()
            .num_sms(4)
            .tb_size(64)
            .scheduler(SchedulerPolicy::RoundRobin)
            .scaled_caches(0.125)
            .build()
            .expect("valid");
        assert_eq!(p.num_sms, 4);
        assert_eq!(p.tb_size, 64);
        assert_eq!(p.scheduler, SchedulerPolicy::RoundRobin);
        assert_eq!(p.l1_bytes, 4 * 1024);
    }

    #[test]
    fn builder_rejects_invalid_parameters() {
        assert_eq!(
            SystemParams::builder().warp_size(0).build(),
            Err(ParamsError::NonPositive("warp_size"))
        );
        assert_eq!(
            SystemParams::builder().line_bytes(48).build(),
            Err(ParamsError::NotPowerOfTwo("line_bytes"))
        );
        assert_eq!(
            SystemParams::builder().scaled_caches(-1.0).build(),
            Err(ParamsError::BadScale(-1.0))
        );
        let err = ParamsError::NonPositive("tb_size");
        assert!(err.to_string().contains("tb_size must be positive"));
    }
}
