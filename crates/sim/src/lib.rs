//! Cycle-approximate simulator of a tightly-integrated, coherent CPU-GPU
//! system, reproducing the platform of *Specializing Coherence,
//! Consistency, and Push/Pull for GPU Graph Analytics* (ISPASS 2020).
//!
//! The paper's authors used a GEMS + Simics + GPGPU-Sim + Garnet stack
//! (§V-C); neither that stack nor hardware with configurable coherence
//! exists to run against, so this crate implements the mechanisms that
//! drive the paper's results from scratch:
//!
//! * a GPU of 15 single-issue SMs executing 32-lane warps from 256-thread
//!   blocks, with greedy-then-oldest scheduling and per-warp memory
//!   coalescing ([`engine`], [`sm`]);
//! * a memory hierarchy with per-SM L1s, a 16-bank NUCA L2 spread over a
//!   4×4 mesh NoC, MSHRs, and store buffers, using the paper's Table IV
//!   latencies ([`mem`], [`cache`], [`noc`]);
//! * two coherence protocols — conventional **GPU coherence**
//!   (write-through L1, flash self-invalidation at acquires, atomics at
//!   the L2) and **DeNovo** (ownership registration at the L1, owned
//!   lines survive synchronization, atomics at the L1) ([`mem`]);
//! * three consistency models — **DRF0** (every atomic is a paired
//!   acquire/release), **DRF1** (unpaired atomics overlap data accesses
//!   but stay SC with respect to each other), and **DRFrlx** (relaxed
//!   atomics also overlap each other, exposing MLP) ([`config`]);
//! * the stall-classification methodology of Alsop et al. used by the
//!   paper's Figure 5 (Busy / Comp / Data / Sync / Idle) ([`stats`]).
//!
//! Workloads are expressed as per-thread micro-op traces ([`trace`])
//! produced by the `ggs-apps` crate; the address layout helper
//! ([`layout`]) keeps the two crates agreeing on where each array lives.
//!
//! # Example
//!
//! ```
//! use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};
//! use ggs_sim::engine::Simulation;
//! use ggs_sim::params::SystemParams;
//! use ggs_sim::trace::{KernelTrace, MicroOp};
//!
//! // One thread block; every thread loads one word then computes.
//! let threads = (0..256u64)
//!     .map(|t| vec![MicroOp::load(t * 4), MicroOp::compute(8)])
//!     .collect();
//! let kernel = KernelTrace::new(threads, 256);
//!
//! let hw = HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf0);
//! let mut sim = Simulation::new(SystemParams::default(), hw);
//! sim.run_kernel(&kernel);
//! let stats = sim.finish();
//! assert!(stats.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
#[cfg(feature = "check")]
pub mod check;
pub mod config;
pub mod engine;
pub mod events;
pub mod layout;
pub mod mem;
pub mod noc;
pub mod params;
pub mod sm;
pub mod stats;
pub mod trace;

#[cfg(feature = "check")]
pub use check::{InvariantKind, ProtocolViolation};
pub use config::{CoherenceKind, ConsistencyModel, HwConfig};
#[cfg(feature = "check")]
pub use engine::DebugHooks;
pub use engine::{BudgetBreach, SimBudget, Simulation, SimulationBuilder};
pub use ggs_trace::{TraceEvent, TraceSink, Tracer};
pub use params::{ParamsError, SystemParams, SystemParamsBuilder};
pub use stats::{ExecStats, StallBreakdown, StallClass};
pub use trace::{KernelTrace, MicroOp};
