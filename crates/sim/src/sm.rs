//! The SM (GPU core) model: warps, lockstep slot execution with
//! coalescing, consistency-model ordering, and greedy-then-oldest
//! scheduling with stall classification.

use crate::config::ConsistencyModel;
use crate::mem::MemorySystem;
use crate::params::SchedulerPolicy;
use crate::stats::{StallBreakdown, StallClass};
use crate::trace::{MicroOp, ThreadsSlice};
use ggs_trace::{TraceEvent, Tracer};

/// One 32-lane warp executing its lanes' micro-op streams in lockstep
/// slots.
#[derive(Debug)]
struct Warp<'k> {
    lanes: ThreadsSlice<'k>,
    block: usize,
    slot: usize,
    max_len: usize,
    ready_at: u64,
    /// Why `ready_at` is in the future (classification of a wait on this
    /// warp).
    blocked: StallClass,
    /// Completion time of this warp's most recent atomic (DRF1 program
    /// order between atomics).
    last_atomic_done: u64,
    finished: bool,
}

impl<'k> Warp<'k> {
    fn new(lanes: ThreadsSlice<'k>, block: usize, at: u64) -> Self {
        let max_len = lanes.iter().map(|l| l.len()).max().unwrap_or(0);
        Self {
            finished: max_len == 0,
            lanes,
            block,
            slot: 0,
            max_len,
            ready_at: at,
            blocked: StallClass::Idle,
            last_atomic_done: 0,
        }
    }
}

#[derive(Debug)]
struct BlockState {
    warps_left: u32,
}

/// One streaming multiprocessor: resident warps, a load-store unit, and
/// the issue scheduler.
#[derive(Debug)]
pub struct Sm<'k> {
    id: u32,
    /// Local clock in cycles.
    pub now: u64,
    lsu_free: u64,
    warps: Vec<Warp<'k>>,
    /// Flat mirror of each warp's `ready_at`, with finished warps pinned
    /// to `u64::MAX`. The scheduler scan in [`Sm::step`] runs every
    /// simulated cycle and only needs (ready, index); keeping those in a
    /// dense array avoids striding over the full `Warp` structs.
    ready: Vec<u64>,
    /// Count of unfinished resident warps (`ready` entries below
    /// `u64::MAX`).
    live: usize,
    blocks: Vec<BlockState>,
    resident_blocks: u32,
    max_blocks: u32,
    warp_size: u32,
    line_mask: u64,
    consistency: ConsistencyModel,
    scheduler: SchedulerPolicy,
    rr: usize,
    /// Cycle classification accumulated so far.
    pub stats: StallBreakdown,
    /// Latest completion time of any transaction this SM issued
    /// (outstanding stores/atomics at kernel end).
    pub last_completion: u64,
    /// Latest `ready_at` of a warp that retired its final slot (tail
    /// pipeline latency still in flight when the warp finished).
    tail: u64,
    /// Hard simulated-cycle boundary (`u64::MAX` = none): the SM never
    /// advances `now` past it, so a cycle budget is breached at the
    /// exact budget cycle even when the stall jump would skip over it.
    hard_stop: u64,
    /// Injected trace sink handle; off by default.
    tracer: Tracer<'k>,
    /// Start cycle of the last stall sample emitted (stride sampling).
    last_sample: u64,
    /// Reusable per-issue gather buffers (taken out for the duration of
    /// each [`Sm::issue`] call so no allocation happens per
    /// instruction).
    scratch_loads: Vec<u64>,
    scratch_stores: Vec<u64>,
    scratch_atomics: Vec<(u64, bool)>,
}

/// Result of one scheduler step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Issued one warp instruction (one Busy cycle consumed).
    Issued,
    /// No warp was ready; the clock jumped forward over classified stall
    /// cycles.
    Waited,
    /// Every resident warp has finished; the SM needs a new block (or is
    /// done).
    Drained,
    /// The SM reached its hard stop (cycle-budget boundary): its clock
    /// sits exactly on the boundary and it must not run further.
    Stopped,
}

impl<'k> Sm<'k> {
    /// Creates an SM with its clock at `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        start: u64,
        consistency: ConsistencyModel,
        warp_size: u32,
        line_bytes: u32,
        max_blocks: u32,
        scheduler: SchedulerPolicy,
    ) -> Self {
        Self {
            id,
            now: start,
            lsu_free: 0,
            warps: Vec::new(),
            ready: Vec::new(),
            live: 0,
            blocks: Vec::new(),
            resident_blocks: 0,
            max_blocks,
            warp_size,
            line_mask: !(line_bytes as u64 - 1),
            consistency,
            scheduler,
            rr: 0,
            stats: StallBreakdown::default(),
            last_completion: 0,
            tail: 0,
            hard_stop: u64::MAX,
            tracer: Tracer::off(),
            last_sample: 0,
            scratch_loads: Vec::new(),
            scratch_stores: Vec::new(),
            scratch_atomics: Vec::new(),
        }
    }

    /// Attach a trace sink handle (stall samples and acquire/release
    /// events); returns the SM for builder-style chaining.
    pub fn with_tracer(mut self, tracer: Tracer<'k>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs a hard simulated-cycle boundary (a cycle budget): the SM
    /// parks at `stop` instead of issuing or jumping past it, and
    /// [`Sm::step`] reports [`Step::Stopped`] once `now` reaches it.
    pub fn with_hard_stop(mut self, stop: Option<u64>) -> Self {
        self.hard_stop = stop.unwrap_or(u64::MAX);
        self
    }

    /// This SM's id (its index among the GPU's cores).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// `true` if another thread block can be made resident.
    pub fn has_capacity(&self) -> bool {
        self.resident_blocks < self.max_blocks
    }

    /// Number of unfinished resident warps.
    pub fn live_warps(&self) -> usize {
        self.live
    }

    /// Makes a thread block resident, splitting its threads into warps.
    ///
    /// # Panics
    ///
    /// Panics if the SM has no block capacity left.
    pub fn assign_block(&mut self, threads: ThreadsSlice<'k>) {
        assert!(self.has_capacity(), "SM {} has no block capacity", self.id);
        let block_idx = self.blocks.len();
        let mut warps_in_block = 0;
        let n = threads.len();
        let ws = self.warp_size as usize;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + ws).min(n);
            let w = Warp::new(threads.slice(lo, hi), block_idx, self.now);
            lo = hi;
            if w.finished {
                self.ready.push(u64::MAX);
            } else {
                warps_in_block += 1;
                self.live += 1;
                self.ready.push(w.ready_at);
            }
            self.warps.push(w);
        }
        self.blocks.push(BlockState {
            warps_left: warps_in_block,
        });
        if warps_in_block > 0 {
            self.resident_blocks += 1;
        }
    }

    /// Runs one scheduler step against the shared memory system.
    pub fn step(&mut self, mem: &mut MemorySystem) -> Step {
        if self.live == 0 {
            return Step::Drained;
        }
        if self.now >= self.hard_stop {
            return Step::Stopped;
        }
        let n = self.ready.len();
        let now = self.now;
        // Issue scan over the flat ready mirror: the first warp at or
        // past the scheduler cursor whose `ready_at` has arrived wins.
        // Finished warps sit at `u64::MAX`, so they skip naturally.
        // The stall jump (taken only if both scan halves fail) needs
        // the lexicographic `(ready_at, idx)` minimum, so each half
        // also tracks its min as it fails — fused here to keep this to
        // two passes total instead of three.
        let start = self.rr % n;
        let mut hit = None;
        let (mut min_hi, mut argmin_hi) = (u64::MAX, 0usize);
        for (w, &r) in self.ready[start..].iter().enumerate() {
            if r <= now {
                hit = Some(start + w);
                break;
            }
            if r < min_hi {
                min_hi = r;
                argmin_hi = start + w;
            }
        }
        let (mut min_lo, mut argmin_lo) = (u64::MAX, 0usize);
        if hit.is_none() {
            for (w, &r) in self.ready[..start].iter().enumerate() {
                if r <= now {
                    hit = Some(w);
                    break;
                }
                if r < min_lo {
                    min_lo = r;
                    argmin_lo = w;
                }
            }
        }
        if let Some(idx) = hit {
            // Greedy-then-oldest keeps the cursor on the issuing warp
            // (issue again next cycle while it stays ready); round robin
            // rotates past it.
            self.rr = match self.scheduler {
                SchedulerPolicy::GreedyThenOldest => idx,
                SchedulerPolicy::RoundRobin => (idx + 1) % n,
            };
            self.issue(idx, mem);
            self.stats.record(StallClass::Busy, 1);
            self.now += 1;
            return Step::Issued;
        }
        // Nothing ready: jump to the earliest unfinished warp. The
        // tie-break is on *array* index (first index at the minimum
        // `ready_at`), so the chosen stall class is independent of the
        // cursor position: the low half's indices precede the high
        // half's, so on a tie the low half wins.
        let (t, i) = if min_lo <= min_hi {
            (min_lo, argmin_lo)
        } else {
            (min_hi, argmin_hi)
        };
        let class = self.warps[i].blocked;
        debug_assert!(t > self.now);
        // A cycle budget clamps the jump: account the stall only up to
        // the boundary and park exactly on it.
        let (t, stopped) = if t >= self.hard_stop {
            (self.hard_stop, true)
        } else {
            (t, false)
        };
        self.stats.record(class, t - self.now);
        // Sampled stall-transition event: at most one per stride window
        // per SM, so hot stalls stay bounded in the trace.
        if self.tracer.enabled() && self.now >= self.last_sample + self.tracer.stride() {
            self.last_sample = self.now;
            self.tracer.emit(&TraceEvent::StallSample {
                sm: self.id,
                cycle: self.now,
                class: class.name(),
                cycles: t - self.now,
            });
        }
        self.now = t;
        if stopped {
            Step::Stopped
        } else {
            Step::Waited
        }
    }

    /// Executes the next slot of warp `idx`.
    fn issue(&mut self, idx: usize, mem: &mut MemorySystem) {
        let slot = self.warps[idx].slot;
        let now = self.now;

        // Gather this slot's per-lane ops into the reusable scratch
        // buffers (taken out so the warp borrow below stays legal).
        let mut load_lines = std::mem::take(&mut self.scratch_loads);
        let mut store_lines = std::mem::take(&mut self.scratch_stores);
        let mut atomics = std::mem::take(&mut self.scratch_atomics);
        load_lines.clear();
        store_lines.clear();
        atomics.clear();
        let mut comp_cycles: u64 = 0;
        for lane in self.warps[idx].lanes.iter() {
            if let Some(op) = lane.get(slot) {
                match *op {
                    MicroOp::Load { addr } => load_lines.push(addr & self.line_mask),
                    MicroOp::Store { addr } => store_lines.push(addr & self.line_mask),
                    MicroOp::Atomic {
                        addr,
                        returns_value,
                    } => atomics.push((addr, returns_value)),
                    MicroOp::Compute { cycles } => comp_cycles = comp_cycles.max(cycles as u64),
                }
            }
        }
        // Coalesce data accesses: one transaction per unique line.
        // Lanes walk mostly-ascending addresses, so the gathered lines
        // are usually already sorted — check before paying for a sort.
        if !load_lines.is_sorted() {
            load_lines.sort_unstable();
        }
        load_lines.dedup();
        if !store_lines.is_sorted() {
            store_lines.sort_unstable();
        }
        store_lines.dedup();
        let mut ready = now + 1;
        let mut blocked = StallClass::Comp;
        let raise = |r: u64, c: StallClass, ready: &mut u64, blocked: &mut StallClass| {
            if r > *ready {
                *ready = r;
                *blocked = c;
            }
        };

        if comp_cycles > 0 {
            raise(
                now + 1 + comp_cycles,
                StallClass::Comp,
                &mut ready,
                &mut blocked,
            );
        }

        if !load_lines.is_empty() {
            let start = now.max(self.lsu_free);
            self.lsu_free = start + load_lines.len() as u64;
            let mut done = 0;
            for &line in &load_lines {
                let acc = mem.load(self.id, line, start);
                done = done.max(acc.complete_at);
            }
            self.last_completion = self.last_completion.max(done);
            // Loads are blocking (their values feed the next op).
            raise(done, StallClass::Data, &mut ready, &mut blocked);
        }

        if !store_lines.is_empty() {
            let start = now.max(self.lsu_free);
            self.lsu_free = start + store_lines.len() as u64;
            let mut proceed = 0;
            for &line in &store_lines {
                let acc = mem.store(self.id, line, start);
                proceed = proceed.max(acc.proceed_at);
                self.last_completion = self.last_completion.max(acc.complete_at);
            }
            // Stores only block on buffer back-pressure.
            raise(proceed, StallClass::Data, &mut ready, &mut blocked);
        }

        if !atomics.is_empty() {
            self.issue_atomics(idx, &atomics, &mut ready, &mut blocked, mem);
        }

        self.scratch_loads = load_lines;
        self.scratch_stores = store_lines;
        self.scratch_atomics = atomics;

        let w = &mut self.warps[idx];
        w.ready_at = ready;
        w.blocked = blocked;
        w.slot += 1;
        if w.slot >= w.max_len {
            w.finished = true;
            let tail = w.ready_at;
            let b = w.block;
            self.ready[idx] = u64::MAX;
            self.live -= 1;
            self.tail = self.tail.max(tail);
            self.blocks[b].warps_left -= 1;
            if self.blocks[b].warps_left == 0 {
                self.resident_blocks -= 1;
            }
        } else {
            self.ready[idx] = ready;
        }
    }

    fn issue_atomics(
        &mut self,
        idx: usize,
        atomics: &[(u64, bool)],
        ready: &mut u64,
        blocked: &mut StallClass,
        mem: &mut MemorySystem,
    ) {
        let now = self.now;
        let any_returns = atomics.iter().any(|&(_, r)| r);
        let raise = |r: u64, c: StallClass, ready: &mut u64, blocked: &mut StallClass| {
            if r > *ready {
                *ready = r;
                *blocked = c;
            }
        };

        // Ordering constraints before issue (shared predicates on
        // ConsistencyModel keep this in lockstep with ggs-check).
        let issue_from = if self.consistency.atomic_is_fence() {
            // Paired atomic: release (drain own writes) + acquire
            // (self-invalidate) around it.
            let drain = mem.release_drain(self.id);
            mem.acquire(self.id);
            if self.tracer.enabled() {
                self.tracer.emit(&TraceEvent::AcquireRelease {
                    sm: self.id,
                    cycle: now,
                    drain_to: drain,
                });
            }
            now.max(drain)
        } else if self.consistency.atomics_program_ordered() {
            // Program order between atomics: wait for this warp's
            // previous atomic.
            now.max(self.warps[idx].last_atomic_done)
        } else {
            now
        };
        if issue_from > now {
            raise(issue_from, StallClass::Sync, ready, blocked);
        }

        // One outstanding-atomic tracker per warp atomic instruction;
        // back-pressure bounds DRFrlx MLP.
        let admitted = mem.atomic_slot_admit(self.id, issue_from);
        // LSU occupancy: one transaction per lane (atomics to the same
        // word are distinct RMWs and serialize downstream).
        let start = admitted.max(self.lsu_free);
        self.lsu_free = start + atomics.len() as u64;

        let mut done = 0;
        let mut proceed = start + 1;
        for &(addr, _) in atomics {
            let acc = mem.atomic(self.id, addr, start);
            done = done.max(acc.complete_at);
            proceed = proceed.max(acc.proceed_at);
        }
        mem.atomic_slot_complete(self.id, done);
        self.last_completion = self.last_completion.max(done);
        self.warps[idx].last_atomic_done = done;

        // Paired or value-returning atomics block the warp until the
        // value is back; fire-and-forget unpaired atomics only wait for
        // issue back-pressure.
        if self.consistency.atomic_blocks_warp(any_returns) {
            raise(done, StallClass::Sync, ready, blocked);
        } else {
            raise(proceed, StallClass::Sync, ready, blocked);
        }
    }

    /// The time at which this SM finished all its issued work, including
    /// outstanding transactions and its store-buffer drain.
    pub fn finish_time(&self, mem: &MemorySystem) -> u64 {
        self.now
            .max(self.last_completion)
            .max(self.tail)
            .max(mem.release_drain(self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoherenceKind, HwConfig};
    use crate::params::SystemParams;
    use crate::trace::KernelTrace;

    /// Leaks `threads` as a block view with a `'static` lifetime (test
    /// convenience standing in for the engine's borrow of a kernel).
    fn leak_block(threads: Vec<Vec<MicroOp>>) -> ThreadsSlice<'static> {
        let kt: &'static KernelTrace = Box::leak(Box::new(KernelTrace::new(threads, 256)));
        kt.threads_slice(0, kt.num_threads() as usize)
    }

    fn setup(consistency: ConsistencyModel) -> (MemorySystem<'static>, Sm<'static>) {
        let params = SystemParams::default();
        let mem = MemorySystem::new(&params, HwConfig::new(CoherenceKind::Gpu, consistency));
        let sm = Sm::new(
            0,
            0,
            consistency,
            32,
            64,
            8,
            SchedulerPolicy::GreedyThenOldest,
        );
        (mem, sm)
    }

    fn run_to_completion(sm: &mut Sm<'_>, mem: &mut MemorySystem) -> u64 {
        loop {
            match sm.step(mem) {
                Step::Drained => return sm.finish_time(mem),
                _ => continue,
            }
        }
    }

    #[test]
    fn empty_sm_drains_immediately() {
        let (mut mem, mut sm) = setup(ConsistencyModel::Drf1);
        assert_eq!(sm.step(&mut mem), Step::Drained);
    }

    #[test]
    fn compute_only_warp_is_comp_bound() {
        let threads: Vec<Vec<MicroOp>> = vec![vec![MicroOp::compute(10); 4]; 32];
        let (mut mem, mut sm) = setup(ConsistencyModel::Drf1);
        let threads_static = leak_block(threads);
        sm.assign_block(threads_static);
        let t = run_to_completion(&mut sm, &mut mem);
        assert!(t >= 40, "4 slots x 10 cycles");
        assert!(sm.stats.get(StallClass::Comp) > 0);
        assert_eq!(sm.stats.get(StallClass::Data), 0);
    }

    #[test]
    fn coalesced_loads_are_one_transaction() {
        // All 32 lanes load consecutive words in one line.
        let threads: Vec<Vec<MicroOp>> = (0..32).map(|i| vec![MicroOp::load(i * 4)]).collect();
        let (mut mem, mut sm) = setup(ConsistencyModel::Drf1);
        let threads_static = leak_block(threads);
        sm.assign_block(threads_static);
        run_to_completion(&mut sm, &mut mem);
        assert_eq!(
            mem.counters.l1_misses, 2,
            "32 consecutive words span exactly two 64-byte lines"
        );
    }

    #[test]
    fn scattered_loads_are_many_transactions() {
        let threads: Vec<Vec<MicroOp>> =
            (0..32u64).map(|i| vec![MicroOp::load(i * 4096)]).collect();
        let (mut mem, mut sm) = setup(ConsistencyModel::Drf1);
        let threads_static = leak_block(threads);
        sm.assign_block(threads_static);
        run_to_completion(&mut sm, &mut mem);
        assert_eq!(mem.counters.l1_misses, 32);
    }

    #[test]
    fn drf1_serializes_atomics_drfrlx_overlaps() {
        // One lane issuing 8 atomics to different lines.
        let mk = || -> ThreadsSlice<'static> {
            let threads: Vec<Vec<MicroOp>> =
                vec![(0..8u64).map(|i| MicroOp::atomic(i * 4096)).collect()];
            leak_block(threads)
        };
        let (mut mem1, mut sm1) = setup(ConsistencyModel::Drf1);
        sm1.assign_block(mk());
        let t1 = run_to_completion(&mut sm1, &mut mem1);

        let (mut memr, mut smr) = setup(ConsistencyModel::DrfRlx);
        smr.assign_block(mk());
        let tr = run_to_completion(&mut smr, &mut memr);

        assert!(
            tr * 3 < t1,
            "DRFrlx ({tr}) should be much faster than DRF1 ({t1})"
        );
        assert!(sm1.stats.get(StallClass::Sync) > smr.stats.get(StallClass::Sync));
    }

    #[test]
    fn drf0_is_slower_than_drf1_for_atomics() {
        let mk = || -> ThreadsSlice<'static> {
            let threads: Vec<Vec<MicroOp>> = vec![(0..8u64)
                .flat_map(|i| [MicroOp::load(0x100000), MicroOp::atomic(i * 4096)])
                .collect()];
            leak_block(threads)
        };
        let (mut mem0, mut sm0) = setup(ConsistencyModel::Drf0);
        sm0.assign_block(mk());
        let t0 = run_to_completion(&mut sm0, &mut mem0);

        let (mut mem1, mut sm1) = setup(ConsistencyModel::Drf1);
        sm1.assign_block(mk());
        let t1 = run_to_completion(&mut sm1, &mut mem1);

        assert!(t0 > t1, "DRF0 ({t0}) should be slower than DRF1 ({t1})");
        // DRF0 invalidates at every atomic: the repeated loads never hit.
        assert!(mem0.counters.l1_hits < mem1.counters.l1_hits);
    }

    #[test]
    fn returning_atomics_block_even_under_drfrlx() {
        let mk = |returns: bool| -> ThreadsSlice<'static> {
            let op = |i: u64| {
                if returns {
                    MicroOp::atomic_returning(i * 4096)
                } else {
                    MicroOp::atomic(i * 4096)
                }
            };
            let threads: Vec<Vec<MicroOp>> = vec![(0..8u64).map(op).collect()];
            leak_block(threads)
        };
        let (mut mem_a, mut sm_a) = setup(ConsistencyModel::DrfRlx);
        sm_a.assign_block(mk(true));
        let t_ret = run_to_completion(&mut sm_a, &mut mem_a);

        let (mut mem_b, mut sm_b) = setup(ConsistencyModel::DrfRlx);
        sm_b.assign_block(mk(false));
        let t_fire = run_to_completion(&mut sm_b, &mut mem_b);

        assert!(
            t_ret > t_fire * 2,
            "returning atomics ({t_ret}) must serialize vs fire-and-forget ({t_fire})"
        );
    }

    #[test]
    fn block_capacity_tracking() {
        let threads: Vec<Vec<MicroOp>> = vec![vec![MicroOp::compute(1)]; 256];
        let threads_static = leak_block(threads);
        let (mut mem, mut sm) = setup(ConsistencyModel::Drf1);
        for _ in 0..8 {
            assert!(sm.has_capacity());
            sm.assign_block(threads_static);
        }
        assert!(!sm.has_capacity());
        run_to_completion(&mut sm, &mut mem);
        assert!(sm.has_capacity(), "capacity frees after blocks finish");
    }

    #[test]
    fn divergent_lane_lengths_finish_together() {
        // Lane 0 has 100 ops; others 1 op. Warp finishes at slot 100.
        let mut threads: Vec<Vec<MicroOp>> = vec![vec![MicroOp::compute(1)]; 32];
        threads[0] = vec![MicroOp::compute(1); 100];
        let threads_static = leak_block(threads);
        let (mut mem, mut sm) = setup(ConsistencyModel::Drf1);
        sm.assign_block(threads_static);
        let t = run_to_completion(&mut sm, &mut mem);
        assert!(t >= 100, "warp runs as long as its longest lane");
    }
}
