//! Hardware configuration vocabulary: coherence protocols and memory
//! consistency models (the two hardware dimensions of the paper's design
//! space, Table I).

use std::fmt;
use std::str::FromStr;

/// Cache coherence protocol (§II-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoherenceKind {
    /// Conventional software-driven GPU coherence: write-through L1s,
    /// flash self-invalidation of the L1 at synchronization reads, store
    /// buffer flush at synchronization writes, and all atomics executed
    /// at the shared L2.
    Gpu,
    /// DeNovo coherence: stores and atomics obtain *ownership*
    /// (registration) at the L1; owned lines are exempt from
    /// self-invalidation and flushes, and atomics to owned lines execute
    /// locally at the L1.
    DeNovo,
}

impl CoherenceKind {
    /// Both protocols, in the paper's presentation order.
    pub const ALL: [CoherenceKind; 2] = [CoherenceKind::Gpu, CoherenceKind::DeNovo];

    /// The single-letter code used in the paper's configuration names
    /// (`G` or `D`, the middle letter of e.g. `SGR`).
    pub fn letter(self) -> char {
        match self {
            CoherenceKind::Gpu => 'G',
            CoherenceKind::DeNovo => 'D',
        }
    }
}

impl fmt::Display for CoherenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceKind::Gpu => f.write_str("GPU"),
            CoherenceKind::DeNovo => f.write_str("DeNovo"),
        }
    }
}

/// Memory consistency model from the data-race-free family (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsistencyModel {
    /// DRF0: every atomic is a paired acquire + release — it orders all
    /// data accesses around it (blocking), invalidates the L1, and
    /// flushes the store buffer.
    Drf0,
    /// DRF1: *unpaired* atomics may be overlapped with data accesses and
    /// skip the invalidate/flush, but execute in program order with
    /// respect to other atomics (at most one outstanding atomic per
    /// warp).
    Drf1,
    /// DRFrlx: relaxed atomics may additionally be overlapped with each
    /// other, exposing intra-thread memory-level parallelism (bounded
    /// only by MSHR capacity).
    DrfRlx,
}

impl ConsistencyModel {
    /// All three models, weakest-ordering last.
    pub const ALL: [ConsistencyModel; 3] = [
        ConsistencyModel::Drf0,
        ConsistencyModel::Drf1,
        ConsistencyModel::DrfRlx,
    ];

    /// The single-character code used in the paper's configuration names
    /// (`0`, `1`, or `R`, the final letter of e.g. `SGR`).
    pub fn letter(self) -> char {
        match self {
            ConsistencyModel::Drf0 => '0',
            ConsistencyModel::Drf1 => '1',
            ConsistencyModel::DrfRlx => 'R',
        }
    }

    /// `true` if atomics must also act as acquire/release fences (DRF0).
    pub fn atomics_are_paired(self) -> bool {
        matches!(self, ConsistencyModel::Drf0)
    }

    /// `true` if atomics may overlap each other (DRFrlx).
    pub fn atomics_overlap(self) -> bool {
        matches!(self, ConsistencyModel::DrfRlx)
    }

    /// `true` if an atomic acts as a full fence at issue — release
    /// (store-buffer drain) plus acquire (L1 self-invalidation). This
    /// is the DRF0 pairing; DRF1/DRFrlx atomics are unpaired and fence
    /// nothing.
    ///
    /// Shared by the timing model ([`crate::sm`]) and the `ggs-check`
    /// analyzer so both agree on which `MicroOp::Atomic` ops
    /// synchronize.
    pub fn atomic_is_fence(self) -> bool {
        self.atomics_are_paired()
    }

    /// `true` if atomics issue in program order with respect to the
    /// warp's previous atomic (DRF0 and DRF1; DRFrlx lets them
    /// overlap).
    pub fn atomics_program_ordered(self) -> bool {
        !self.atomics_overlap()
    }

    /// `true` if an atomic instruction blocks its warp until the value
    /// is back: always under DRF0 (paired), and under DRF1/DRFrlx only
    /// when the op is value-returning (`MicroOp::atomic_returning`) —
    /// a fire-and-forget `MicroOp::atomic` retires as soon as it is
    /// admitted.
    ///
    /// This single predicate is what makes `atomic` vs
    /// `atomic_returning` mean the same thing to the simulator's warp
    /// scheduler and to the race checker's synchronization analysis.
    pub fn atomic_blocks_warp(self, returns_value: bool) -> bool {
        self.atomics_are_paired() || returns_value
    }
}

impl fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyModel::Drf0 => f.write_str("DRF0"),
            ConsistencyModel::Drf1 => f.write_str("DRF1"),
            ConsistencyModel::DrfRlx => f.write_str("DRFrlx"),
        }
    }
}

/// A hardware configuration point: one coherence protocol plus one
/// consistency model (the hardware half of the paper's 12-point design
/// space).
///
/// # Example
///
/// ```
/// use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};
///
/// let hw = HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::Drf1);
/// assert_eq!(hw.code(), "D1");
/// assert_eq!("D1".parse::<HwConfig>().unwrap(), hw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HwConfig {
    /// Coherence protocol.
    pub coherence: CoherenceKind,
    /// Consistency model.
    pub consistency: ConsistencyModel,
}

impl HwConfig {
    /// Creates a configuration point.
    pub fn new(coherence: CoherenceKind, consistency: ConsistencyModel) -> Self {
        Self {
            coherence,
            consistency,
        }
    }

    /// All six hardware points (2 coherence × 3 consistency).
    pub fn all() -> impl Iterator<Item = HwConfig> {
        CoherenceKind::ALL.into_iter().flat_map(|c| {
            ConsistencyModel::ALL
                .into_iter()
                .map(move |m| HwConfig::new(c, m))
        })
    }

    /// Two-character code, e.g. `"GR"` for GPU coherence + DRFrlx.
    pub fn code(self) -> String {
        format!("{}{}", self.coherence.letter(), self.consistency.letter())
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.coherence, self.consistency)
    }
}

/// Error parsing a hardware configuration code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHwConfigError(String);

impl fmt::Display for ParseHwConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid hardware config {:?} (expected <G|D><0|1|R>, e.g. \"GR\")",
            self.0
        )
    }
}

impl std::error::Error for ParseHwConfigError {}

impl FromStr for HwConfig {
    type Err = ParseHwConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseHwConfigError(s.to_owned());
        let mut chars = s.chars();
        let (Some(c), Some(m), None) = (chars.next(), chars.next(), chars.next()) else {
            return Err(err());
        };
        let coherence = match c.to_ascii_uppercase() {
            'G' => CoherenceKind::Gpu,
            'D' => CoherenceKind::DeNovo,
            _ => return Err(err()),
        };
        let consistency = match m.to_ascii_uppercase() {
            '0' => ConsistencyModel::Drf0,
            '1' => ConsistencyModel::Drf1,
            'R' => ConsistencyModel::DrfRlx,
            _ => return Err(err()),
        };
        Ok(HwConfig::new(coherence, consistency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_hardware_points() {
        assert_eq!(HwConfig::all().count(), 6);
    }

    #[test]
    fn codes_roundtrip() {
        for hw in HwConfig::all() {
            let parsed: HwConfig = hw.code().parse().unwrap();
            assert_eq!(parsed, hw);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("XR".parse::<HwConfig>().is_err());
        assert!("G".parse::<HwConfig>().is_err());
        assert!("GRR".parse::<HwConfig>().is_err());
        assert!("G2".parse::<HwConfig>().is_err());
    }

    #[test]
    fn consistency_predicates() {
        assert!(ConsistencyModel::Drf0.atomics_are_paired());
        assert!(!ConsistencyModel::Drf1.atomics_are_paired());
        assert!(ConsistencyModel::DrfRlx.atomics_overlap());
        assert!(!ConsistencyModel::Drf1.atomics_overlap());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::DrfRlx).to_string(),
            "GPU+DRFrlx"
        );
    }
}
