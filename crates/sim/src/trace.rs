//! The micro-op trace format kernels are expressed in.
//!
//! Applications compile each GPU kernel into one micro-op stream per
//! thread. The simulator executes threads in 32-lane warps: at *slot*
//! `k`, a warp executes op `k` of every lane that still has ops left
//! (shorter lanes simply become inactive — this models loop-trip-count
//! divergence, the dominant divergence in vertex-centric graph kernels).

/// One micro-operation of a GPU thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Non-atomic load of one 32-bit word. Loads are *blocking*: graph
    /// kernels consume a load's value immediately (pointer chasing), so
    /// the warp waits for completion before its next slot.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// Non-atomic store of one 32-bit word. Stores retire through the
    /// store buffer (GPU coherence) or ownership registration (DeNovo)
    /// and do not block the warp unless back-pressure applies.
    Store {
        /// Byte address.
        addr: u64,
    },
    /// Atomic read-modify-write on one 32-bit word. Ordering and overlap
    /// are governed by the configured consistency model, except that
    /// *value-returning* atomics always block the warp (their result
    /// feeds control flow, as in Connected Components).
    Atomic {
        /// Byte address.
        addr: u64,
        /// `true` if the program consumes the returned value.
        returns_value: bool,
    },
    /// `cycles` of arithmetic occupying the warp's compute pipeline.
    Compute {
        /// Pipeline occupancy in cycles.
        cycles: u16,
    },
}

impl MicroOp {
    /// Convenience constructor for a blocking load.
    pub fn load(addr: u64) -> Self {
        MicroOp::Load { addr }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: u64) -> Self {
        MicroOp::Store { addr }
    }

    /// Convenience constructor for a non-value-returning atomic
    /// (e.g. `atomicAdd` used as a reduction).
    pub fn atomic(addr: u64) -> Self {
        MicroOp::Atomic {
            addr,
            returns_value: false,
        }
    }

    /// Convenience constructor for a value-returning atomic
    /// (e.g. `atomicCAS` whose result drives control flow).
    pub fn atomic_returning(addr: u64) -> Self {
        MicroOp::Atomic {
            addr,
            returns_value: true,
        }
    }

    /// Convenience constructor for a compute burst.
    pub fn compute(cycles: u16) -> Self {
        MicroOp::Compute { cycles }
    }

    /// The byte address touched, if this is a memory operation.
    pub fn address(&self) -> Option<u64> {
        match *self {
            MicroOp::Load { addr } | MicroOp::Store { addr } | MicroOp::Atomic { addr, .. } => {
                Some(addr)
            }
            MicroOp::Compute { .. } => None,
        }
    }
}

/// The per-thread micro-op streams of one kernel launch.
///
/// Thread `i` belongs to thread block `i / tb_size`; blocks are
/// dispatched to SMs in order as resources free up.
///
/// # Example
///
/// ```
/// use ggs_sim::trace::{KernelTrace, MicroOp};
///
/// let threads = vec![vec![MicroOp::load(0)], vec![MicroOp::compute(4)]];
/// let k = KernelTrace::new(threads, 256);
/// assert_eq!(k.num_threads(), 2);
/// assert_eq!(k.num_blocks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    threads: Vec<Vec<MicroOp>>,
    tb_size: u32,
}

impl KernelTrace {
    /// Creates a kernel trace.
    ///
    /// # Panics
    ///
    /// Panics if `tb_size` is zero. Prefer [`KernelTrace::try_new`] on
    /// paths that must not panic.
    pub fn new(threads: Vec<Vec<MicroOp>>, tb_size: u32) -> Self {
        Self::try_new(threads, tb_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`KernelTrace::new`]: rejects a zero
    /// `tb_size` instead of panicking.
    pub fn try_new(
        threads: Vec<Vec<MicroOp>>,
        tb_size: u32,
    ) -> Result<Self, crate::params::ParamsError> {
        if tb_size == 0 {
            return Err(crate::params::ParamsError::NonPositive("tb_size"));
        }
        Ok(Self { threads, tb_size })
    }

    /// Number of threads (may be less than `num_blocks * tb_size` in the
    /// final block).
    pub fn num_threads(&self) -> u64 {
        self.threads.len() as u64
    }

    /// Thread block size this kernel was generated for.
    pub fn tb_size(&self) -> u32 {
        self.tb_size
    }

    /// Number of thread blocks.
    pub fn num_blocks(&self) -> u64 {
        (self.threads.len() as u64).div_ceil(self.tb_size as u64)
    }

    /// The micro-op stream of one thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn thread(&self, thread: u64) -> &[MicroOp] {
        &self.threads[thread as usize]
    }

    /// A contiguous slice of thread streams (used by the engine to hand
    /// a thread block's threads to an SM).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn threads_slice(&self, lo: usize, hi: usize) -> &[Vec<MicroOp>] {
        &self.threads[lo..hi]
    }

    /// Total number of micro-ops across all threads.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().map(|t| t.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_rounds_up() {
        let k = KernelTrace::new(vec![Vec::new(); 257], 256);
        assert_eq!(k.num_blocks(), 2);
    }

    #[test]
    fn addresses() {
        assert_eq!(MicroOp::load(64).address(), Some(64));
        assert_eq!(MicroOp::store(4).address(), Some(4));
        assert_eq!(MicroOp::atomic(8).address(), Some(8));
        assert_eq!(MicroOp::compute(2).address(), None);
    }

    #[test]
    fn returning_flag() {
        assert!(matches!(
            MicroOp::atomic_returning(0),
            MicroOp::Atomic {
                returns_value: true,
                ..
            }
        ));
        assert!(matches!(
            MicroOp::atomic(0),
            MicroOp::Atomic {
                returns_value: false,
                ..
            }
        ));
    }

    #[test]
    fn total_ops_sums_threads() {
        let k = KernelTrace::new(
            vec![vec![MicroOp::compute(1); 3], vec![MicroOp::compute(1); 2]],
            128,
        );
        assert_eq!(k.total_ops(), 5);
    }

    #[test]
    #[should_panic(expected = "tb_size")]
    fn zero_tb_size_rejected() {
        let _ = KernelTrace::new(Vec::new(), 0);
    }

    #[test]
    fn try_new_reports_zero_tb_size() {
        assert!(KernelTrace::try_new(Vec::new(), 0).is_err());
        assert!(KernelTrace::try_new(Vec::new(), 1).is_ok());
    }
}
