//! The micro-op trace format kernels are expressed in.
//!
//! Applications compile each GPU kernel into one micro-op stream per
//! thread. The simulator executes threads in 32-lane warps: at *slot*
//! `k`, a warp executes op `k` of every lane that still has ops left
//! (shorter lanes simply become inactive — this models loop-trip-count
//! divergence, the dominant divergence in vertex-centric graph kernels).

/// One micro-operation of a GPU thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Non-atomic load of one 32-bit word. Loads are *blocking*: graph
    /// kernels consume a load's value immediately (pointer chasing), so
    /// the warp waits for completion before its next slot.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// Non-atomic store of one 32-bit word. Stores retire through the
    /// store buffer (GPU coherence) or ownership registration (DeNovo)
    /// and do not block the warp unless back-pressure applies.
    Store {
        /// Byte address.
        addr: u64,
    },
    /// Atomic read-modify-write on one 32-bit word. Ordering and overlap
    /// are governed by the configured consistency model, except that
    /// *value-returning* atomics always block the warp (their result
    /// feeds control flow, as in Connected Components).
    Atomic {
        /// Byte address.
        addr: u64,
        /// `true` if the program consumes the returned value.
        returns_value: bool,
    },
    /// `cycles` of arithmetic occupying the warp's compute pipeline.
    Compute {
        /// Pipeline occupancy in cycles.
        cycles: u16,
    },
}

impl MicroOp {
    /// Convenience constructor for a blocking load.
    pub fn load(addr: u64) -> Self {
        MicroOp::Load { addr }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: u64) -> Self {
        MicroOp::Store { addr }
    }

    /// Convenience constructor for a non-value-returning atomic
    /// (e.g. `atomicAdd` used as a reduction).
    pub fn atomic(addr: u64) -> Self {
        MicroOp::Atomic {
            addr,
            returns_value: false,
        }
    }

    /// Convenience constructor for a value-returning atomic
    /// (e.g. `atomicCAS` whose result drives control flow).
    pub fn atomic_returning(addr: u64) -> Self {
        MicroOp::Atomic {
            addr,
            returns_value: true,
        }
    }

    /// Convenience constructor for a compute burst.
    pub fn compute(cycles: u16) -> Self {
        MicroOp::Compute { cycles }
    }

    /// The byte address touched, if this is a memory operation.
    pub fn address(&self) -> Option<u64> {
        match *self {
            MicroOp::Load { addr } | MicroOp::Store { addr } | MicroOp::Atomic { addr, .. } => {
                Some(addr)
            }
            MicroOp::Compute { .. } => None,
        }
    }
}

/// The per-thread micro-op streams of one kernel launch.
///
/// Thread `i` belongs to thread block `i / tb_size`; blocks are
/// dispatched to SMs in order as resources free up.
///
/// Internally the streams live in one flat op arena plus a cumulative
/// offset table (thread `i` is `ops[offsets[i]..offsets[i + 1]]`), so a
/// trace costs two allocations regardless of thread count and the
/// simulator walks contiguous memory.
///
/// # Example
///
/// ```
/// use ggs_sim::trace::{KernelTrace, MicroOp};
///
/// let threads = vec![vec![MicroOp::load(0)], vec![MicroOp::compute(4)]];
/// let k = KernelTrace::new(threads, 256);
/// assert_eq!(k.num_threads(), 2);
/// assert_eq!(k.num_blocks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    /// Every thread's ops, concatenated in thread order.
    ops: Vec<MicroOp>,
    /// `num_threads + 1` cumulative offsets into `ops`.
    offsets: Vec<u32>,
    tb_size: u32,
}

impl KernelTrace {
    /// Creates a kernel trace.
    ///
    /// # Panics
    ///
    /// Panics if `tb_size` is zero. Prefer [`KernelTrace::try_new`] on
    /// paths that must not panic.
    pub fn new(threads: Vec<Vec<MicroOp>>, tb_size: u32) -> Self {
        Self::try_new(threads, tb_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`KernelTrace::new`]: rejects a zero
    /// `tb_size` instead of panicking.
    pub fn try_new(
        threads: Vec<Vec<MicroOp>>,
        tb_size: u32,
    ) -> Result<Self, crate::params::ParamsError> {
        if tb_size == 0 {
            return Err(crate::params::ParamsError::NonPositive("tb_size"));
        }
        let total: usize = threads.iter().map(|t| t.len()).sum();
        let mut ops = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(threads.len() + 1);
        offsets.push(0);
        for t in &threads {
            ops.extend_from_slice(t);
            offsets.push(u32::try_from(ops.len()).expect("trace exceeds u32 op capacity"));
        }
        Ok(Self {
            ops,
            offsets,
            tb_size,
        })
    }

    /// Creates a kernel trace directly from a flat op arena and its
    /// cumulative offset table (`num_threads + 1` entries starting at 0
    /// and ending at `ops.len()`). This is the allocation-free path for
    /// trace generators that append thread streams in order.
    ///
    /// # Panics
    ///
    /// Panics if `tb_size` is zero or the offset table is malformed.
    pub fn from_flat(ops: Vec<MicroOp>, offsets: Vec<u32>, tb_size: u32) -> Self {
        assert!(tb_size > 0, "tb_size must be positive");
        assert_eq!(offsets.first(), Some(&0), "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("offsets non-empty") as usize,
            ops.len(),
            "offsets must end at ops.len()"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            ops,
            offsets,
            tb_size,
        }
    }

    /// Number of threads (may be less than `num_blocks * tb_size` in the
    /// final block).
    pub fn num_threads(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Thread block size this kernel was generated for.
    pub fn tb_size(&self) -> u32 {
        self.tb_size
    }

    /// Number of thread blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_threads().div_ceil(self.tb_size as u64)
    }

    /// The micro-op stream of one thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn thread(&self, thread: u64) -> &[MicroOp] {
        let t = thread as usize;
        &self.ops[self.offsets[t] as usize..self.offsets[t + 1] as usize]
    }

    /// A contiguous view of thread streams `lo..hi` (used by the engine
    /// to hand a thread block's threads to an SM).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn threads_slice(&self, lo: usize, hi: usize) -> ThreadsSlice<'_> {
        ThreadsSlice {
            ops: &self.ops,
            offsets: &self.offsets[lo..=hi],
        }
    }

    /// Total number of micro-ops across all threads.
    pub fn total_ops(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Heap bytes held by the trace's op arena and offset table
    /// (capacity, not length — what the allocator actually committed).
    /// Capacity-bounded trace caches use this for their memory
    /// accounting.
    pub fn heap_bytes(&self) -> u64 {
        (self.ops.capacity() * std::mem::size_of::<MicroOp>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// A borrowed, copyable view of a contiguous range of a kernel's thread
/// streams (a thread block, or a warp's lanes within one). Threads index
/// into the kernel's shared flat op arena, so slicing never allocates.
#[derive(Debug, Clone, Copy)]
pub struct ThreadsSlice<'k> {
    ops: &'k [MicroOp],
    /// `len() + 1` cumulative offsets into `ops` for this view's
    /// threads.
    offsets: &'k [u32],
}

impl<'k> ThreadsSlice<'k> {
    /// Number of threads in the view.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if the view holds no threads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The micro-op stream of thread `i` of the view.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn thread(&self, i: usize) -> &'k [MicroOp] {
        &self.ops[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Sub-view of threads `lo..hi` (e.g. one warp's lanes).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> ThreadsSlice<'k> {
        ThreadsSlice {
            ops: self.ops,
            offsets: &self.offsets[lo..=hi],
        }
    }

    /// Iterates over the view's thread streams in order.
    pub fn iter(&self) -> impl Iterator<Item = &'k [MicroOp]> + '_ {
        let ops = self.ops;
        self.offsets
            .windows(2)
            .map(move |w| &ops[w[0] as usize..w[1] as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_rounds_up() {
        let k = KernelTrace::new(vec![Vec::new(); 257], 256);
        assert_eq!(k.num_blocks(), 2);
    }

    #[test]
    fn addresses() {
        assert_eq!(MicroOp::load(64).address(), Some(64));
        assert_eq!(MicroOp::store(4).address(), Some(4));
        assert_eq!(MicroOp::atomic(8).address(), Some(8));
        assert_eq!(MicroOp::compute(2).address(), None);
    }

    #[test]
    fn returning_flag() {
        assert!(matches!(
            MicroOp::atomic_returning(0),
            MicroOp::Atomic {
                returns_value: true,
                ..
            }
        ));
        assert!(matches!(
            MicroOp::atomic(0),
            MicroOp::Atomic {
                returns_value: false,
                ..
            }
        ));
    }

    #[test]
    fn total_ops_sums_threads() {
        let k = KernelTrace::new(
            vec![vec![MicroOp::compute(1); 3], vec![MicroOp::compute(1); 2]],
            128,
        );
        assert_eq!(k.total_ops(), 5);
    }

    #[test]
    #[should_panic(expected = "tb_size")]
    fn zero_tb_size_rejected() {
        let _ = KernelTrace::new(Vec::new(), 0);
    }

    #[test]
    fn try_new_reports_zero_tb_size() {
        assert!(KernelTrace::try_new(Vec::new(), 0).is_err());
        assert!(KernelTrace::try_new(Vec::new(), 1).is_ok());
    }
}
