//! Set-associative cache tag model with LRU replacement.
//!
//! Tracks only tags and line states (contents are irrelevant to timing).
//! Used for both the per-SM L1s and the shared banked L2.
//!
//! # Hot-path layout
//!
//! This type sits on the innermost loop of the simulator, so its state
//! is stored as flat parallel arrays of packed bytes rather than
//! `Option<LineState>` values, and flash self-invalidation is O(1): the
//! cache keeps a monotonically increasing *epoch*, every `Valid` fill
//! records the epoch it happened in, and [`Cache::invalidate_unowned`]
//! simply bumps the epoch. A `Valid` way whose recorded epoch predates
//! the current one is *stale* and treated exactly like an empty way
//! everywhere (lookup miss, preferred eviction victim, not resident).
//! `Owned` ways ignore the epoch, which is precisely the DeNovo
//! exemption from self-invalidation.

/// State of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Present and readable; will be discarded by self-invalidation
    /// (GPU coherence acquires, or non-owned DeNovo lines).
    Valid,
    /// Present and *owned* (DeNovo registration): survives
    /// self-invalidation, services local atomics, and must be handed
    /// over when another core requests ownership.
    Owned,
}

/// Result of inserting a line into a full set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line number (address >> line shift) of the victim.
    pub line: u64,
    /// State the victim was in.
    pub state: LineState,
}

/// Packed per-way word: `tag << 24 | epoch << 2 | state`. The tag is
/// the line number (40 bits — addresses below 2^46 with 64-byte
/// lines), the epoch (22 bits, for `VALID` ways) is the flash-
/// invalidation generation the way was filled in, and the state sits
/// in the low 2 bits. An `OWNED` way stores epoch bits zero. Residency
/// *and* the tag match are therefore two full-word compares against
/// constants built once per probe — the whole set scan touches one
/// 64-bit word per way, so an 8-way set is a single host cache line
/// instead of the three parallel arrays it used to straddle.
const EMPTY: u64 = 0;
const VALID: u64 = 1;
const OWNED: u64 = 2;
const STATE_BITS: u32 = 2;
const EPOCH_BITS: u32 = 22;
const TAG_SHIFT: u32 = STATE_BITS + EPOCH_BITS;
/// Epoch value at which [`Cache::rescrub`] renumbers in-place (leaving
/// headroom so `epoch + 1` never overflows the field).
const EPOCH_MAX: u64 = (1 << EPOCH_BITS) - 1;
/// Largest representable line number (40 tag bits).
const TAG_LIMIT: u64 = 1 << (64 - TAG_SHIFT);

/// The packed word of a live way holding `line`: `VALID` under `epoch`,
/// or `OWNED` (whose epoch bits are zero).
#[inline]
const fn valid_word(line: u64, epoch: u64) -> u64 {
    (line << TAG_SHIFT) | (epoch << STATE_BITS) | VALID
}

#[inline]
const fn owned_word(line: u64) -> u64 {
    (line << TAG_SHIFT) | OWNED
}

#[inline]
const fn tag_of(word: u64) -> u64 {
    word >> TAG_SHIFT
}

/// A victim way reserved by a [`Cache::lookup_or_victim`] miss, to be
/// redeemed with [`Cache::fill_victim`]. A zero stamp marks a dead way
/// (no eviction on fill).
#[derive(Debug, Clone, Copy)]
pub struct VictimWay {
    way: usize,
    stamp: u64,
}

/// A set-associative tag array with LRU replacement.
///
/// Lines are identified by *line number* (byte address divided by the
/// line size); the caller performs that division so the same type serves
/// caches with different line sizes.
///
/// # Example
///
/// ```
/// use ggs_sim::cache::{Cache, LineState};
///
/// let mut c = Cache::new(2, 2); // 2 sets, 2 ways
/// assert!(c.lookup(0).is_none());
/// c.insert(0, LineState::Valid);
/// assert_eq!(c.lookup(0), Some(LineState::Valid));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    ways: usize,
    /// Per-way packed tag + epoch + state (see [`valid_word`]); a
    /// `VALID` way whose epoch predates `epoch` is stale.
    words: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    /// Current flash-invalidation epoch (starts at 1 so a live `VALID`
    /// word is never all-zero-epoch like `EMPTY`).
    epoch: u64,
    /// Number of non-stale `VALID` ways (incremental, so flash
    /// invalidation can report its count without scanning).
    valid_count: u64,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u64, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "way count must be positive");
        let n = (sets as usize) * ways;
        Self {
            sets,
            ways,
            words: vec![EMPTY; n],
            stamps: vec![0; n],
            clock: 0,
            epoch: 1,
            valid_count: 0,
        }
    }

    /// Creates a cache sized from capacity in bytes.
    ///
    /// The set count is the *largest* power of two that fits within the
    /// requested capacity (minimum 1), so the modeled cache never holds
    /// more lines than `capacity_bytes / line_bytes`. Rounding up here
    /// would silently inflate capacity by up to 2x for non-power-of-two
    /// geometries.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn with_geometry(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        let lines = capacity_bytes / line_bytes;
        let raw = (lines / ways as u64).max(1);
        // Previous power of two: 2^floor(log2(raw)).
        let sets = 1u64 << (63 - raw.leading_zeros());
        Self::new(sets, ways)
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & (self.sets - 1)) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Panics on line numbers the 40-bit packed tag cannot represent;
    /// every entry point taking a line number funnels through this so a
    /// too-large line can never silently alias a resident tag.
    #[inline]
    fn check_line(line: u64) {
        assert!(
            line < TAG_LIMIT,
            "line number {line:#x} exceeds 40 tag bits"
        );
    }

    /// Whether way `i` holds a live line (an `OWNED` way, or a `VALID`
    /// way filled in the current epoch).
    #[inline]
    fn resident(&self, i: usize) -> bool {
        let w = self.words[i];
        match w & 0b11 {
            OWNED => true,
            VALID => w == valid_word(tag_of(w), self.epoch),
            _ => false,
        }
    }

    #[inline]
    fn state_of(&self, i: usize) -> LineState {
        if self.words[i] & 0b11 == OWNED {
            LineState::Owned
        } else {
            LineState::Valid
        }
    }

    /// Finds the way within `range` holding `line`, if it is resident.
    /// Scans a subslice of packed words so the compiler drops per-way
    /// bounds checks and the whole probe is two compares per way
    /// against one loaded word (this is the innermost loop of the whole
    /// simulator).
    #[inline]
    fn find_way(&self, range: &std::ops::Range<usize>, line: u64) -> Option<usize> {
        Self::check_line(line);
        let live = valid_word(line, self.epoch);
        let owned = owned_word(line);
        let words = &self.words[range.clone()];
        for (w, &word) in words.iter().enumerate() {
            if word == live || word == owned {
                return Some(range.start + w);
            }
        }
        None
    }

    /// Looks up a line, refreshing its LRU position on hit.
    #[inline]
    pub fn lookup(&mut self, line: u64) -> Option<LineState> {
        self.clock += 1;
        let i = self.find_way(&self.set_range(line), line)?;
        self.stamps[i] = self.clock;
        Some(self.state_of(i))
    }

    /// Looks up a line without disturbing LRU state.
    pub fn peek(&self, line: u64) -> Option<LineState> {
        let i = self.find_way(&self.set_range(line), line)?;
        Some(self.state_of(i))
    }

    /// Writes `line` in `state` into way `i`, keeping the valid-way
    /// count and epoch tag coherent with the way's previous contents.
    #[inline]
    fn write_way(&mut self, i: usize, line: u64, state: LineState) {
        let w = self.words[i];
        if w & 0b11 == VALID && w == valid_word(tag_of(w), self.epoch) {
            self.valid_count -= 1;
        }
        match state {
            LineState::Valid => {
                self.words[i] = valid_word(line, self.epoch);
                self.valid_count += 1;
            }
            LineState::Owned => self.words[i] = owned_word(line),
        }
    }

    /// The hit way for `line` if resident, otherwise the LRU victim
    /// (first dead way in scan order wins; a resident way always has a
    /// non-zero stamp, so `victim_stamp == 0` marks a dead victim).
    ///
    /// The probe is two passes: a pure hit scan touching only the packed
    /// words (the common case — the L2 hits ~95% of the time — pays for
    /// no LRU stamps at all), then a victim scan over words + stamps
    /// only when the hit scan came up empty. The victim chosen is
    /// identical to a single fused pass: the hit check cannot match
    /// during the second pass, so the victim fold sees the same
    /// sequence either way.
    #[inline]
    fn find_way_or_victim(
        &self,
        range: &std::ops::Range<usize>,
        line: u64,
    ) -> (Option<usize>, usize, u64) {
        if let Some(i) = self.find_way(range, line) {
            return (Some(i), 0, u64::MAX);
        }
        let epoch_bits = self.epoch << STATE_BITS;
        let words = &self.words[range.clone()];
        let stamps = &self.stamps[range.clone()];
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (w, (&word, &st)) in words.iter().zip(stamps).enumerate() {
            let resident = word & 0b11 == OWNED
                || (word & 0b11 == VALID
                    && word & ((EPOCH_MAX << STATE_BITS) | 0b11) == epoch_bits | VALID);
            if !resident {
                if victim_stamp != 0 {
                    victim = w;
                    victim_stamp = 0;
                }
            } else if st < victim_stamp {
                victim = w;
                victim_stamp = st;
            }
        }
        (None, range.start + victim, victim_stamp)
    }

    /// Inserts (or updates) a line, returning the victim if a valid line
    /// had to be evicted.
    #[inline]
    pub fn insert(&mut self, line: u64, state: LineState) -> Option<Eviction> {
        self.clock += 1;
        let (hit, victim, victim_stamp) = self.find_way_or_victim(&self.set_range(line), line);
        if let Some(i) = hit {
            self.write_way(i, line, state);
            self.stamps[i] = self.clock;
            return None;
        }
        let evicted = (victim_stamp != 0).then(|| Eviction {
            line: tag_of(self.words[victim]),
            state: self.state_of(victim),
        });
        self.write_way(victim, line, state);
        self.stamps[victim] = self.clock;
        evicted
    }

    /// Looks up a line, refreshing its LRU position on hit; on miss,
    /// returns the victim way an immediate [`Cache::fill_victim`] would
    /// use. Splitting "probe" from "fill" lets the miss path run
    /// unrelated work (latency math, queue updates) in between without
    /// paying a second set scan — but the reservation is only valid as
    /// long as *this cache* is not otherwise mutated first.
    #[inline]
    pub fn lookup_or_victim(&mut self, line: u64) -> Result<LineState, VictimWay> {
        self.clock += 1;
        let (hit, victim, victim_stamp) = self.find_way_or_victim(&self.set_range(line), line);
        if let Some(i) = hit {
            self.stamps[i] = self.clock;
            return Ok(self.state_of(i));
        }
        Err(VictimWay {
            way: victim,
            stamp: victim_stamp,
        })
    }

    /// Fills `line` over the victim way reserved by a preceding
    /// [`Cache::lookup_or_victim`] miss, returning the eviction exactly
    /// as [`Cache::insert`] would.
    #[inline]
    pub fn fill_victim(&mut self, v: VictimWay, line: u64, state: LineState) -> Option<Eviction> {
        self.clock += 1;
        let evicted = (v.stamp != 0).then(|| Eviction {
            line: tag_of(self.words[v.way]),
            state: self.state_of(v.way),
        });
        self.write_way(v.way, line, state);
        self.stamps[v.way] = self.clock;
        evicted
    }

    /// Fused lookup-or-fill: returns `true` and refreshes LRU on hit;
    /// on miss fills the line `Valid` over the standard LRU victim and
    /// returns `false`. Behaviorally identical to a [`Cache::lookup`]
    /// miss followed by [`Cache::insert`] (with the eviction dropped),
    /// but scans the set once instead of twice — the L2 sits behind
    /// every L1 miss, so this is one of the hottest loops in the
    /// simulator.
    #[inline]
    pub fn probe_fill(&mut self, line: u64) -> bool {
        self.clock += 1;
        let (hit, victim, _) = self.find_way_or_victim(&self.set_range(line), line);
        if let Some(i) = hit {
            self.stamps[i] = self.clock;
            return true;
        }
        self.write_way(victim, line, LineState::Valid);
        self.stamps[victim] = self.clock;
        false
    }

    /// Changes the state of a resident line; no-op if absent.
    pub fn set_state(&mut self, line: u64, state: LineState) {
        if let Some(i) = self.find_way(&self.set_range(line), line) {
            self.write_way(i, line, state);
        }
    }

    /// Removes a specific line if present; returns its prior state.
    pub fn invalidate(&mut self, line: u64) -> Option<LineState> {
        let i = self.find_way(&self.set_range(line), line)?;
        let prior = self.state_of(i);
        if self.words[i] & 0b11 != OWNED {
            self.valid_count -= 1;
        }
        self.words[i] = EMPTY;
        Some(prior)
    }

    /// Flash self-invalidation: drops every [`LineState::Valid`] line,
    /// keeping [`LineState::Owned`] lines (the DeNovo exemption; GPU
    /// coherence has no owned lines, so this drops everything). Returns
    /// the number of lines invalidated. O(1): bumps the epoch so every
    /// `Valid` way goes stale at once.
    pub fn invalidate_unowned(&mut self) -> u64 {
        let n = self.valid_count;
        self.valid_count = 0;
        self.epoch += 1;
        if self.epoch == EPOCH_MAX {
            self.rescrub();
        }
        n
    }

    /// Epoch-space rollover (every `EPOCH_MAX - 1` flash
    /// invalidations): immediately after the epoch bump every `VALID`
    /// way is stale by definition, so clear them all and restart the
    /// epoch clock. Amortized to nothing; keeps the 22-bit packed
    /// epoch exact over arbitrarily long simulations.
    #[cold]
    fn rescrub(&mut self) {
        for w in &mut self.words {
            if *w & 0b11 == VALID {
                *w = EMPTY;
            }
        }
        self.epoch = 1;
    }

    /// Iterates over every resident line as `(line, state)` pairs. The
    /// order is the tag array's internal order, not insertion or LRU
    /// order. Used by the `check` feature's protocol auditor to scan L1
    /// contents without disturbing LRU state.
    pub fn resident_lines(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        (0..self.words.len())
            .filter(|&i| self.resident(i))
            .map(|i| (tag_of(self.words[i]), self.state_of(i)))
    }

    /// Number of resident lines (any state).
    pub fn occupancy(&self) -> usize {
        (0..self.words.len()).filter(|&i| self.resident(i)).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert_eq!(c.lookup(12), None);
        c.insert(12, LineState::Valid);
        assert_eq!(c.lookup(12), Some(LineState::Valid));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(1, 2);
        c.insert(0, LineState::Valid);
        c.insert(1, LineState::Valid);
        let _ = c.lookup(0); // refresh 0; 1 is now LRU
        let ev = c.insert(2, LineState::Valid).expect("eviction");
        assert_eq!(ev.line, 1);
        assert_eq!(c.lookup(0), Some(LineState::Valid));
        assert_eq!(c.lookup(1), None);
    }

    #[test]
    fn insert_prefers_empty_way() {
        let mut c = Cache::new(1, 2);
        c.insert(0, LineState::Valid);
        assert!(c.insert(1, LineState::Valid).is_none());
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = Cache::new(1, 1);
        c.insert(3, LineState::Valid);
        assert!(c.insert(3, LineState::Owned).is_none());
        assert_eq!(c.peek(3), Some(LineState::Owned));
    }

    #[test]
    fn flash_invalidation_spares_owned() {
        let mut c = Cache::new(2, 2);
        c.insert(0, LineState::Valid);
        c.insert(1, LineState::Owned);
        c.insert(2, LineState::Valid);
        assert_eq!(c.invalidate_unowned(), 2);
        assert_eq!(c.peek(0), None);
        assert_eq!(c.peek(1), Some(LineState::Owned));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn targeted_invalidation() {
        let mut c = Cache::new(2, 1);
        c.insert(5, LineState::Owned);
        assert_eq!(c.invalidate(5), Some(LineState::Owned));
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn set_state_changes_resident_line() {
        let mut c = Cache::new(2, 1);
        c.insert(4, LineState::Valid);
        c.set_state(4, LineState::Owned);
        assert_eq!(c.peek(4), Some(LineState::Owned));
        c.set_state(99, LineState::Owned); // absent: no-op
        assert_eq!(c.peek(99), None);
    }

    #[test]
    fn geometry_helper() {
        let c = Cache::with_geometry(32 * 1024, 8, 64);
        assert_eq!(c.capacity_lines(), 64 * 8);
    }

    #[test]
    fn geometry_never_exceeds_requested_capacity() {
        // Sweep power-of-two and awkward non-power-of-two geometries:
        // modeled capacity must never exceed the requested byte budget.
        for capacity in [4 * 1024u64, 24 * 1024, 48 * 1024, 96 * 1024, 512 * 1024] {
            for ways in [1usize, 4, 8, 16] {
                for line_bytes in [32u64, 64, 128] {
                    let c = Cache::with_geometry(capacity, ways, line_bytes);
                    let modeled = c.capacity_lines() as u64 * line_bytes;
                    assert!(
                        modeled <= capacity.max(ways as u64 * line_bytes),
                        "{capacity} B / {ways} ways / {line_bytes} B lines \
                         modeled {modeled} B"
                    );
                }
            }
        }
        // A 96-set geometry (48 KiB, 8 ways, 64 B) rounds DOWN to 64
        // sets, not up to 128.
        let c = Cache::with_geometry(48 * 1024, 8, 64);
        assert_eq!(c.capacity_lines(), 64 * 8);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(2, 1);
        c.insert(0, LineState::Valid); // set 0
        c.insert(1, LineState::Valid); // set 1
        assert_eq!(c.peek(0), Some(LineState::Valid));
        assert_eq!(c.peek(1), Some(LineState::Valid));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = Cache::new(3, 1);
    }

    #[test]
    fn stale_ways_behave_exactly_like_empty_ways() {
        let mut c = Cache::new(1, 2);
        c.insert(0, LineState::Valid);
        c.insert(2, LineState::Valid);
        c.invalidate_unowned();
        // Stale tags miss on lookup even though the tag bytes remain.
        assert_eq!(c.lookup(0), None);
        assert_eq!(c.peek(2), None);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.resident_lines().count(), 0);
        // Refilling prefers the first stale way and reports no eviction.
        assert!(c.insert(4, LineState::Valid).is_none());
        assert!(c.insert(6, LineState::Valid).is_none());
        assert_eq!(c.occupancy(), 2);
        // Re-invalidating an already-stale line is a no-op miss.
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn repeated_flash_invalidations_count_correctly() {
        let mut c = Cache::new(2, 2);
        c.insert(0, LineState::Valid);
        c.insert(1, LineState::Valid);
        assert_eq!(c.invalidate_unowned(), 2);
        assert_eq!(c.invalidate_unowned(), 0, "second flash finds nothing");
        c.insert(2, LineState::Valid);
        c.invalidate(2);
        assert_eq!(
            c.invalidate_unowned(),
            0,
            "targeted invalidation already discounted the line"
        );
        c.insert(3, LineState::Owned);
        assert_eq!(c.invalidate_unowned(), 0, "owned lines are exempt");
        assert_eq!(c.peek(3), Some(LineState::Owned));
    }

    #[test]
    fn lookup_or_victim_matches_lookup_then_insert() {
        let mut fused = Cache::new(2, 2);
        let mut split = Cache::new(2, 2);
        let stream = [0u64, 2, 4, 0, 6, 2, 8, 0, 4, 10, 6, 0];
        for (n, &line) in stream.iter().enumerate() {
            if n == 7 {
                fused.invalidate_unowned();
                split.invalidate_unowned();
            }
            let fused_ev = match fused.lookup_or_victim(line) {
                Ok(_) => None,
                Err(v) => fused.fill_victim(v, line, LineState::Valid),
            };
            let split_ev = match split.lookup(line) {
                Some(_) => None,
                None => split.insert(line, LineState::Valid),
            };
            assert_eq!(fused_ev, split_ev, "access #{n} line {line}");
            assert_eq!(fused.occupancy(), split.occupancy());
        }
    }

    #[test]
    fn probe_fill_matches_lookup_then_insert() {
        // Drive both implementations through an address stream that
        // exercises hits, dead-way fills, LRU evictions, and a flash
        // invalidation; externally visible behavior must be identical.
        let mut fused = Cache::new(2, 2);
        let mut split = Cache::new(2, 2);
        let stream = [0u64, 2, 4, 0, 6, 2, 8, 0, 4, 10, 6, 0];
        for (n, &line) in stream.iter().enumerate() {
            if n == 7 {
                fused.invalidate_unowned();
                split.invalidate_unowned();
            }
            let hit = fused.probe_fill(line);
            let split_hit = split.lookup(line).is_some();
            if !split_hit {
                split.insert(line, LineState::Valid);
            }
            assert_eq!(hit, split_hit, "access #{n} line {line}");
            assert_eq!(fused.occupancy(), split.occupancy());
            let mut a: Vec<_> = fused.resident_lines().collect();
            let mut b: Vec<_> = split.resident_lines().collect();
            a.sort_unstable_by_key(|&(l, _)| l);
            b.sort_unstable_by_key(|&(l, _)| l);
            assert_eq!(a, b, "contents diverged after access #{n}");
        }
    }

    #[test]
    fn owned_downgrade_then_flash() {
        let mut c = Cache::new(1, 1);
        c.insert(7, LineState::Owned);
        c.set_state(7, LineState::Valid);
        assert_eq!(c.invalidate_unowned(), 1, "downgraded line is flashable");
        assert_eq!(c.peek(7), None);
    }
}
