//! Set-associative cache tag model with LRU replacement.
//!
//! Tracks only tags and line states (contents are irrelevant to timing).
//! Used for both the per-SM L1s and the shared banked L2.

/// State of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Present and readable; will be discarded by self-invalidation
    /// (GPU coherence acquires, or non-owned DeNovo lines).
    Valid,
    /// Present and *owned* (DeNovo registration): survives
    /// self-invalidation, services local atomics, and must be handed
    /// over when another core requests ownership.
    Owned,
}

/// Result of inserting a line into a full set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line number (address >> line shift) of the victim.
    pub line: u64,
    /// State the victim was in.
    pub state: LineState,
}

/// A set-associative tag array with LRU replacement.
///
/// Lines are identified by *line number* (byte address divided by the
/// line size); the caller performs that division so the same type serves
/// caches with different line sizes.
///
/// # Example
///
/// ```
/// use ggs_sim::cache::{Cache, LineState};
///
/// let mut c = Cache::new(2, 2); // 2 sets, 2 ways
/// assert!(c.lookup(0).is_none());
/// c.insert(0, LineState::Valid);
/// assert_eq!(c.lookup(0), Some(LineState::Valid));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    ways: usize,
    tags: Vec<u64>,
    states: Vec<Option<LineState>>,
    stamps: Vec<u64>,
    clock: u64,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u64, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "way count must be positive");
        let n = (sets as usize) * ways;
        Self {
            sets,
            ways,
            tags: vec![0; n],
            states: vec![None; n],
            stamps: vec![0; n],
            clock: 0,
        }
    }

    /// Creates a cache sized from capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly into a power-of-two
    /// set count of at least 1.
    pub fn with_geometry(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        let lines = capacity_bytes / line_bytes;
        let sets = (lines / ways as u64).max(1).next_power_of_two();
        Self::new(sets, ways)
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & (self.sets - 1)) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up a line, refreshing its LRU position on hit.
    pub fn lookup(&mut self, line: u64) -> Option<LineState> {
        self.clock += 1;
        let range = self.set_range(line);
        for i in range {
            if self.states[i].is_some() && self.tags[i] == line {
                self.stamps[i] = self.clock;
                return self.states[i];
            }
        }
        None
    }

    /// Looks up a line without disturbing LRU state.
    pub fn peek(&self, line: u64) -> Option<LineState> {
        let range = self.set_range(line);
        for i in range {
            if self.states[i].is_some() && self.tags[i] == line {
                return self.states[i];
            }
        }
        None
    }

    /// Inserts (or updates) a line, returning the victim if a valid line
    /// had to be evicted.
    pub fn insert(&mut self, line: u64, state: LineState) -> Option<Eviction> {
        self.clock += 1;
        let range = self.set_range(line);
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        for i in range {
            if self.states[i].is_some() && self.tags[i] == line {
                self.states[i] = Some(state);
                self.stamps[i] = self.clock;
                return None;
            }
            if self.states[i].is_none() {
                if victim_stamp != 0 {
                    victim = i;
                    victim_stamp = 0;
                }
            } else if self.stamps[i] < victim_stamp {
                victim = i;
                victim_stamp = self.stamps[i];
            }
        }
        let evicted = self.states[victim].map(|s| Eviction {
            line: self.tags[victim],
            state: s,
        });
        self.tags[victim] = line;
        self.states[victim] = Some(state);
        self.stamps[victim] = self.clock;
        evicted
    }

    /// Changes the state of a resident line; no-op if absent.
    pub fn set_state(&mut self, line: u64, state: LineState) {
        let range = self.set_range(line);
        for i in range {
            if self.states[i].is_some() && self.tags[i] == line {
                self.states[i] = Some(state);
                return;
            }
        }
    }

    /// Removes a specific line if present; returns its prior state.
    pub fn invalidate(&mut self, line: u64) -> Option<LineState> {
        let range = self.set_range(line);
        for i in range {
            if self.states[i].is_some() && self.tags[i] == line {
                return self.states[i].take();
            }
        }
        None
    }

    /// Flash self-invalidation: drops every [`LineState::Valid`] line,
    /// keeping [`LineState::Owned`] lines (the DeNovo exemption; GPU
    /// coherence has no owned lines, so this drops everything). Returns
    /// the number of lines invalidated.
    pub fn invalidate_unowned(&mut self) -> u64 {
        let mut n = 0;
        for s in &mut self.states {
            if *s == Some(LineState::Valid) {
                *s = None;
                n += 1;
            }
        }
        n
    }

    /// Iterates over every resident line as `(line, state)` pairs. The
    /// order is the tag array's internal order, not insertion or LRU
    /// order. Used by the `check` feature's protocol auditor to scan L1
    /// contents without disturbing LRU state.
    pub fn resident_lines(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.tags
            .iter()
            .zip(&self.states)
            .filter_map(|(&tag, s)| s.map(|state| (tag, state)))
    }

    /// Number of resident lines (any state).
    pub fn occupancy(&self) -> usize {
        self.states.iter().filter(|s| s.is_some()).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert_eq!(c.lookup(12), None);
        c.insert(12, LineState::Valid);
        assert_eq!(c.lookup(12), Some(LineState::Valid));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(1, 2);
        c.insert(0, LineState::Valid);
        c.insert(1, LineState::Valid);
        let _ = c.lookup(0); // refresh 0; 1 is now LRU
        let ev = c.insert(2, LineState::Valid).expect("eviction");
        assert_eq!(ev.line, 1);
        assert_eq!(c.lookup(0), Some(LineState::Valid));
        assert_eq!(c.lookup(1), None);
    }

    #[test]
    fn insert_prefers_empty_way() {
        let mut c = Cache::new(1, 2);
        c.insert(0, LineState::Valid);
        assert!(c.insert(1, LineState::Valid).is_none());
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = Cache::new(1, 1);
        c.insert(3, LineState::Valid);
        assert!(c.insert(3, LineState::Owned).is_none());
        assert_eq!(c.peek(3), Some(LineState::Owned));
    }

    #[test]
    fn flash_invalidation_spares_owned() {
        let mut c = Cache::new(2, 2);
        c.insert(0, LineState::Valid);
        c.insert(1, LineState::Owned);
        c.insert(2, LineState::Valid);
        assert_eq!(c.invalidate_unowned(), 2);
        assert_eq!(c.peek(0), None);
        assert_eq!(c.peek(1), Some(LineState::Owned));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn targeted_invalidation() {
        let mut c = Cache::new(2, 1);
        c.insert(5, LineState::Owned);
        assert_eq!(c.invalidate(5), Some(LineState::Owned));
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn set_state_changes_resident_line() {
        let mut c = Cache::new(2, 1);
        c.insert(4, LineState::Valid);
        c.set_state(4, LineState::Owned);
        assert_eq!(c.peek(4), Some(LineState::Owned));
        c.set_state(99, LineState::Owned); // absent: no-op
        assert_eq!(c.peek(99), None);
    }

    #[test]
    fn geometry_helper() {
        let c = Cache::with_geometry(32 * 1024, 8, 64);
        assert_eq!(c.capacity_lines(), 64 * 8);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(2, 1);
        c.insert(0, LineState::Valid); // set 0
        c.insert(1, LineState::Valid); // set 1
        assert_eq!(c.peek(0), Some(LineState::Valid));
        assert_eq!(c.peek(1), Some(LineState::Valid));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = Cache::new(3, 1);
    }
}
