//! The coherent memory system: per-SM L1s, banked shared L2, MSHRs,
//! store buffers, and the two coherence protocols (GPU and DeNovo).
//!
//! Timing is *latency-oracle* style: each access computes its completion
//! time from the current cache/queue state and updates that state
//! immediately. The engine keeps SM clocks closely interleaved, so shared
//! structures (L2 tags, ownership, bank queues) are updated in
//! near-global time order.

use crate::cache::{Cache, Eviction, LineState};
#[cfg(feature = "check")]
use crate::check::{InvariantKind, ProtocolChecker, ProtocolViolation};
use crate::config::{CoherenceKind, HwConfig};
use crate::events::CompletionRing;
use crate::noc::Mesh;
use crate::params::SystemParams;
use crate::stats::{MemCounters, RegionStats};
use ggs_trace::{TraceEvent, Tracer};

/// Keys below this bound use the direct-indexed fast path of
/// [`IdTable`]: one flat `key -> id + 1` array covering every key from
/// 0, so small workloads pay a single array load and no per-page
/// indirection.
const DENSE_KEY_LIMIT: u64 = 1 << 24;

/// Page granularity of the paged middle tier (64Ki keys per page).
const PAGE_BITS: u32 = 16;

/// Slots per page of the paged tier.
const PAGE_SLOTS: usize = 1 << PAGE_BITS;

/// First page index of the paged tier (pages below this are covered by
/// the direct table).
const FIRST_PAGE: usize = (DENSE_KEY_LIMIT >> PAGE_BITS) as usize;

/// Keys below this bound (and at or above [`DENSE_KEY_LIMIT`]) use the
/// paged tier: lazily allocated 64Ki-slot pages indexed by `key >>`
/// [`PAGE_BITS`]. Large-graph address spaces (rmat16/rmat18 and beyond)
/// blow past the direct table but stay contiguous, so they touch a
/// short dense run of pages — still one array load per access after the
/// page-vector index, no hashing. Keys past this bound (pathological,
/// ~1 TiB of simulated address space) fall to the open-addressed
/// sparse tier.
const PAGED_KEY_LIMIT: u64 = 1 << 40;

/// Dense interner from 64-bit keys (line numbers, word addresses) to
/// `u32` ids, built lazily as a run touches addresses. Ids index flat
/// side tables (ownership registry, serialization chains), replacing
/// per-access `HashMap` probes with array loads on every re-visit.
///
/// Three tiers by key magnitude — direct (`< 2^24`), paged
/// (`< 2^40`), open-addressed sparse (the rest) — chosen so the id of
/// a key depends only on *first-touch order*, never on which tier
/// resolved it: golden statistics are invariant to the tier layout.
#[derive(Debug, Default)]
struct IdTable {
    /// `dense[key] == id + 1`, `0` = never interned. Grows to the
    /// largest interned key below [`DENSE_KEY_LIMIT`].
    dense: Vec<u32>,
    /// Paged tier for keys in `[`[`DENSE_KEY_LIMIT`]`, `
    /// [`PAGED_KEY_LIMIT`]`)`: `pages[key >> PAGE_BITS - FIRST_PAGE]`
    /// holds a lazily allocated 64Ki-slot `id + 1` page. The page
    /// vector grows to the highest *touched* page, so a contiguous
    /// big-graph address space costs one pointer per 64Ki keys.
    pages: Vec<Option<Box<[u32]>>>,
    /// Open-addressed fallback for keys at or above
    /// [`PAGED_KEY_LIMIT`].
    sparse: SparseIds,
    keys: Vec<u64>,
}

impl IdTable {
    fn intern(&mut self, key: u64) -> u32 {
        if key < DENSE_KEY_LIMIT {
            let k = key as usize;
            if k >= self.dense.len() {
                self.dense.resize(k + 1, 0);
            }
            if self.dense[k] == 0 {
                let id = self.keys.len() as u32;
                self.keys.push(key);
                self.dense[k] = id + 1;
            }
            return self.dense[k] - 1;
        }
        if key < PAGED_KEY_LIMIT {
            let page = (key >> PAGE_BITS) as usize - FIRST_PAGE;
            if page >= self.pages.len() {
                self.pages.resize_with(page + 1, || None);
            }
            let page =
                self.pages[page].get_or_insert_with(|| vec![0u32; PAGE_SLOTS].into_boxed_slice());
            let slot = &mut page[(key & (PAGE_SLOTS as u64 - 1)) as usize];
            if *slot == 0 {
                let id = self.keys.len() as u32;
                self.keys.push(key);
                *slot = id + 1;
            }
            return *slot - 1;
        }
        if let Some(id) = self.sparse.get(key) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.keys.push(key);
        self.sparse.insert(key, id);
        id
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        if key < DENSE_KEY_LIMIT {
            return match self.dense.get(key as usize) {
                Some(&slot) if slot != 0 => Some(slot - 1),
                _ => None,
            };
        }
        if key < PAGED_KEY_LIMIT {
            return match self
                .pages
                .get((key >> PAGE_BITS) as usize - FIRST_PAGE)
                .and_then(Option::as_deref)
            {
                Some(page) => match page[(key & (PAGE_SLOTS as u64 - 1)) as usize] {
                    0 => None,
                    slot => Some(slot - 1),
                },
                None => None,
            };
        }
        self.sparse.get(key)
    }

    #[inline]
    fn key(&self, id: u32) -> u64 {
        self.keys[id as usize]
    }
}

/// Minimal open-addressed `u64 -> u32` map (linear probing over a
/// power-of-two table, splitmix64 hash) for the sparse tier of
/// [`IdTable`]. Compared to the previous `HashMap` fallback this keeps
/// key and id in one slot (one cache line per probe) and skips the
/// `Hasher` plumbing entirely.
#[derive(Debug, Default)]
struct SparseIds {
    /// `(key, id)` slots; `id ==` [`SPARSE_EMPTY`] marks an empty slot
    /// (ids never reach `u32::MAX` — the side tables would exhaust
    /// memory long before 4 billion distinct keys).
    slots: Vec<(u64, u32)>,
    len: usize,
}

/// Empty-slot marker of [`SparseIds`].
const SPARSE_EMPTY: u32 = u32::MAX;

impl SparseIds {
    #[inline]
    fn hash(key: u64) -> u64 {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn get(&self, key: u64) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(key) as usize & mask;
        loop {
            let (k, id) = self.slots[i];
            if id == SPARSE_EMPTY {
                return None;
            }
            if k == key {
                return Some(id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a key known to be absent (callers probe with
    /// [`SparseIds::get`] first).
    fn insert(&mut self, key: u64, id: u32) {
        debug_assert_ne!(id, SPARSE_EMPTY);
        // Grow at 3/4 load so probe chains stay short.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            let cap = (self.slots.len() * 2).max(16);
            let old = std::mem::replace(&mut self.slots, vec![(0, SPARSE_EMPTY); cap]);
            for (k, v) in old {
                if v != SPARSE_EMPTY {
                    self.place(k, v);
                }
            }
        }
        self.place(key, id);
        self.len += 1;
    }

    fn place(&mut self, key: u64, id: u32) {
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(key) as usize & mask;
        while self.slots[i].1 != SPARSE_EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = (key, id);
    }
}

/// Sentinel in the dense ownership registry: line currently unowned.
const NO_OWNER: u32 = u32::MAX;

/// Kind of memory access, for per-region attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    Atomic,
}

/// Outcome of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Earliest cycle at which the issuing warp may proceed (back-pressure
    /// from MSHRs / store buffers is folded in here).
    pub proceed_at: u64,
    /// Cycle at which the transaction fully completes (data returned /
    /// write globally visible).
    pub complete_at: u64,
}

/// The coherent memory hierarchy shared by all SMs.
///
/// The lifetime parameter is the borrow of an injected
/// [`ggs_trace::TraceSink`]; constructing via [`MemorySystem::new`]
/// leaves tracing off and the lifetime unconstrained.
#[derive(Debug)]
pub struct MemorySystem<'t> {
    hw: HwConfig,
    mesh: Mesh,
    line_shift: u32,
    banks: u32,
    l2_atomic_occupancy: u64,
    registration_occupancy: u64,
    atomic_rmw: u64,
    l1_atomic_occupancy: u64,
    l1_hit: u64,

    l1: Vec<Cache>,
    l2: Cache,
    /// Dense ids for every ownership-registered line (lazily interned;
    /// never-registered lines don't enter the table, so pure-GPU runs
    /// keep it empty).
    lines: IdTable,
    /// DeNovo ownership registry, indexed by line id ([`NO_OWNER`] when
    /// unowned). Invariant: a line is registered here iff it is resident
    /// `Owned` in that SM's L1.
    owner: Vec<u32>,
    /// Line ids each SM currently owns, maintained incrementally so
    /// relinquishing all ownership (reconfigure, audits) never scans the
    /// whole registry. Removal is swap-remove via `owned_pos`.
    ///
    /// Because registration is tied to L1 residency (evicting or
    /// invalidating an `Owned` line unregisters it synchronously), each
    /// list is bounded by the SM's L1 line capacity — it never grows
    /// with the graph, only with the cache ([`owned_list_add`]
    /// debug-asserts the bound).
    ///
    /// [`owned_list_add`]: MemorySystem::owned_list_add
    owned_by_sm: Vec<Vec<u32>>,
    /// L1 line capacity per SM, bounding each `owned_by_sm` list.
    l1_capacity_lines: usize,
    /// Position of each owned line id within its owner's
    /// `owned_by_sm` list (meaningless while unowned).
    owned_pos: Vec<u32>,
    /// Per-bank next-free time (service occupancy / contention).
    bank_free: Vec<u64>,
    /// Dense ids for atomically-accessed word addresses.
    words: IdTable,
    /// Per-word atomic serialization chain, indexed by word id: epoch
    /// tag + completion of the latest atomic to the word. Entries from
    /// older epochs read as "no chain", so kernel boundaries clear the
    /// chain in O(1) by bumping `atomic_epoch`.
    atomic_chain: Vec<(u64, u64)>,
    atomic_epoch: u64,
    /// Per-line ownership-transfer chain, indexed by line id and
    /// epoch-tagged like `atomic_chain`: a line's registration cannot
    /// begin before the previous transfer of that line completed
    /// (DeNovo ping-pong serialization).
    owner_chain: Vec<(u64, u64)>,
    owner_epoch: u64,
    mshr: Vec<CompletionRing>,
    store_buf: Vec<CompletionRing>,
    /// Outstanding-atomic trackers: one entry per warp atomic
    /// instruction (the coalescing unit tracks a warp's atomic burst as
    /// one outstanding request), bounding DRFrlx memory-level
    /// parallelism.
    atomic_q: Vec<CompletionRing>,

    /// Event counters (reset by the embedding `Simulation` as needed).
    pub counters: MemCounters,
    /// Registered address regions, sorted by base, for per-data-structure
    /// attribution: `(base, end, name)`.
    regions: Vec<(u64, u64, String)>,
    region_stats: Vec<RegionStats>,
    /// Index of the last region matched by [`MemorySystem::attribute`]
    /// (one-entry cursor cache; accesses stream with high region
    /// locality).
    region_hint: usize,

    /// Injected trace sink handle; [`ggs_trace::Tracer::off`] by default.
    tracer: Tracer<'t>,
    /// Cycle of the last ownership-transfer event emitted (stride
    /// sampling bounds the trace volume of hot ping-pong lines).
    last_ownership_emit: u64,

    /// Protocol invariant observer (`check` feature): `None` until
    /// [`MemorySystem::enable_protocol_checker`] turns it on.
    #[cfg(feature = "check")]
    checker: Option<ProtocolChecker>,
}

impl<'t> MemorySystem<'t> {
    /// Builds the memory system for `params` under configuration `hw`,
    /// with tracing off.
    pub fn new(params: &SystemParams, hw: HwConfig) -> Self {
        Self::with_tracer(params, hw, Tracer::off())
    }

    /// Builds the memory system with an injected trace sink handle.
    pub fn with_tracer(params: &SystemParams, hw: HwConfig, tracer: Tracer<'t>) -> Self {
        let line_shift = params.line_bytes.trailing_zeros();
        assert!(
            params.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let n = params.num_sms as usize;
        let l1: Vec<Cache> = (0..n)
            .map(|_| {
                Cache::with_geometry(
                    params.l1_bytes,
                    params.l1_assoc as usize,
                    params.line_bytes as u64,
                )
            })
            .collect();
        let l1_capacity_lines = l1.first().map_or(1, Cache::capacity_lines);
        Self {
            hw,
            mesh: Mesh::new(params),
            line_shift,
            banks: params.l2_banks,
            l2_atomic_occupancy: params.l2_atomic_occupancy,
            registration_occupancy: params.registration_occupancy,
            atomic_rmw: params.atomic_rmw_cycles,
            l1_atomic_occupancy: params.l1_atomic_occupancy,
            l1_hit: params.l1_hit_cycles,
            l1,
            l2: Cache::with_geometry(
                params.l2_bytes,
                params.l2_assoc as usize,
                params.line_bytes as u64,
            ),
            lines: IdTable::default(),
            owner: Vec::new(),
            owned_by_sm: vec![Vec::new(); n],
            l1_capacity_lines,
            owned_pos: Vec::new(),
            bank_free: vec![0; params.l2_banks as usize],
            words: IdTable::default(),
            atomic_chain: Vec::new(),
            atomic_epoch: 0,
            owner_chain: Vec::new(),
            owner_epoch: 0,
            mshr: (0..n)
                .map(|_| CompletionRing::new(params.mshr_entries as usize))
                .collect(),
            store_buf: (0..n)
                .map(|_| CompletionRing::new(params.store_buffer_entries as usize))
                .collect(),
            atomic_q: (0..n)
                .map(|_| CompletionRing::new(params.mshr_entries as usize))
                .collect(),
            counters: MemCounters::default(),
            regions: Vec::new(),
            region_stats: Vec::new(),
            region_hint: 0,
            tracer,
            last_ownership_emit: 0,
            #[cfg(feature = "check")]
            checker: None,
        }
    }

    /// Total NoC flits implied by the traffic counters so far (full-line
    /// payloads plus single-flit control messages).
    pub fn noc_flit_total(&self) -> u64 {
        self.mesh.flit_total(
            self.counters.noc_line_transfers,
            self.counters.noc_control_messages,
        )
    }

    /// Registers a named address region `[base, base + bytes)` for
    /// per-data-structure attribution (GSI-style). Regions must not
    /// overlap; accesses outside every region are simply unattributed.
    pub fn register_region(&mut self, name: impl Into<String>, base: u64, bytes: u64) {
        self.regions.push((base, base + bytes, name.into()));
        self.regions.sort_by_key(|r| r.0);
        self.region_stats = vec![RegionStats::default(); self.regions.len()];
    }

    /// Per-region attribution collected so far, as `(name, stats)`.
    pub fn region_stats(&self) -> Vec<(String, RegionStats)> {
        self.regions
            .iter()
            .zip(&self.region_stats)
            .map(|((_, _, n), s)| (n.clone(), *s))
            .collect()
    }

    fn region_of(&self, addr: u64) -> Option<usize> {
        if self.regions.is_empty() {
            return None;
        }
        let i = self.regions.partition_point(|r| r.0 <= addr);
        if i == 0 {
            return None;
        }
        let (base, end, _) = &self.regions[i - 1];
        (addr >= *base && addr < *end).then_some(i - 1)
    }

    /// `region_of` with a one-entry cursor cache: accesses stream
    /// through one data structure at a time, so the last-matched region
    /// almost always matches again. Regions never overlap (the address
    /// space separates them with guard lines), so a bounds check against
    /// the cached region is as authoritative as the binary search.
    #[inline]
    fn region_of_cached(&mut self, addr: u64) -> Option<usize> {
        if let Some((base, end, _)) = self.regions.get(self.region_hint) {
            if addr >= *base && addr < *end {
                return Some(self.region_hint);
            }
        }
        let i = self.region_of(addr)?;
        self.region_hint = i;
        Some(i)
    }

    fn attribute(&mut self, addr: u64, kind: AccessKind, hit: bool, latency: u64) {
        if self.regions.is_empty() {
            // Unprofiled runs (the common case) skip attribution
            // entirely rather than missing the region-hint probe.
            return;
        }
        if let Some(i) = self.region_of_cached(addr) {
            let s = &mut self.region_stats[i];
            match kind {
                AccessKind::Load => {
                    s.loads += 1;
                    if hit {
                        s.l1_hits += 1;
                    }
                }
                AccessKind::Store => {
                    s.stores += 1;
                    if hit {
                        s.store_hits += 1;
                    }
                }
                AccessKind::Atomic => {
                    s.atomics += 1;
                    if hit {
                        s.atomic_hits += 1;
                    }
                }
            }
            s.total_latency += latency;
        }
    }

    /// The configured hardware point.
    pub fn hw(&self) -> HwConfig {
        self.hw
    }

    /// Reconfigures the hardware point (flexible hardware in the spirit
    /// of Spandex, which the paper points to as the mechanism an
    /// adaptive system would use). Switching away from DeNovo coherence
    /// relinquishes all L1 ownership: owned lines are written back to
    /// the L2 and the ownership registry is cleared.
    pub fn reconfigure(&mut self, hw: HwConfig) {
        if hw.coherence != self.hw.coherence {
            let mut owned: Vec<(u64, u32)> = self
                .owned_by_sm
                .iter()
                .enumerate()
                .flat_map(|(sm, ids)| ids.iter().map(move |&id| (id, sm as u32)))
                .map(|(id, sm)| (self.lines.key(id), sm))
                .collect();
            // Deterministic writeback order regardless of registry
            // iteration order.
            owned.sort_unstable();
            for (line, sm) in owned {
                self.l1[sm as usize].invalidate(line);
                // The relinquished line moves L1 -> L2; if the fill
                // displaces an L2 victim, that victim is written back to
                // memory. Both are line-sized NoC payloads.
                self.counters.noc_line_transfers += 1;
                if let Some(ev) = self.l2.insert(line, LineState::Valid) {
                    debug_assert_eq!(ev.state, LineState::Valid, "the L2 never holds Owned lines");
                    self.counters.noc_line_transfers += 1;
                }
            }
            self.owner.fill(NO_OWNER);
            for list in &mut self.owned_by_sm {
                list.clear();
            }
            self.owner_epoch += 1;
        }
        self.hw = hw;
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn bank_of(&self, line: u64) -> u32 {
        // The default 16-bank geometry takes the mask path; a runtime
        // `div` here is measurable on the access hot path.
        if self.banks.is_power_of_two() {
            (line & (self.banks as u64 - 1)) as u32
        } else {
            (line % self.banks as u64) as u32
        }
    }

    /// Interns `line`, growing the id-indexed side tables in lockstep.
    fn intern_line(&mut self, line: u64) -> u32 {
        let id = self.lines.intern(line);
        if self.owner.len() <= id as usize {
            self.owner.resize(id as usize + 1, NO_OWNER);
            self.owned_pos.resize(id as usize + 1, 0);
            self.owner_chain.resize(id as usize + 1, (0, 0));
        }
        id
    }

    /// Interns an atomic word address, growing its chain table.
    fn intern_word(&mut self, addr: u64) -> u32 {
        let id = self.words.intern(addr);
        if self.atomic_chain.len() <= id as usize {
            self.atomic_chain.resize(id as usize + 1, (0, 0));
        }
        id
    }

    /// The registered owner of `line`, ignoring the active coherence
    /// protocol (checker paths need the raw registry view).
    #[inline]
    fn registered_owner(&self, line: u64) -> Option<u32> {
        let id = self.lines.get(line)?;
        let o = self.owner[id as usize];
        (o != NO_OWNER).then_some(o)
    }

    /// The registered owner of `line` on the access hot path. Under GPU
    /// coherence the registry is provably empty (registrations only
    /// happen under DeNovo, and switching away relinquishes them), so
    /// the lookup is skipped entirely.
    #[inline]
    fn owner_of(&self, line: u64) -> Option<u32> {
        match self.hw.coherence {
            CoherenceKind::Gpu => None,
            CoherenceKind::DeNovo => self.registered_owner(line),
        }
    }

    fn owned_list_add(&mut self, sm: u32, id: u32) {
        self.owned_pos[id as usize] = self.owned_by_sm[sm as usize].len() as u32;
        self.owned_by_sm[sm as usize].push(id);
        // Registration implies L1 residency, so the list can never
        // outgrow the cache (see the `owned_by_sm` field docs). The +1
        // covers the just-registered line: its L1 fill (which evicts
        // and unregisters any displaced owned line) happens right after
        // this call.
        debug_assert!(
            self.owned_by_sm[sm as usize].len() <= self.l1_capacity_lines + 1,
            "SM {sm} owned-line list exceeded its L1 capacity"
        );
    }

    fn owned_list_remove(&mut self, sm: u32, id: u32) {
        let pos = self.owned_pos[id as usize] as usize;
        let list = &mut self.owned_by_sm[sm as usize];
        list.swap_remove(pos);
        if let Some(&moved) = list.get(pos) {
            self.owned_pos[moved as usize] = pos as u32;
        }
    }

    /// Drops `id`'s registry entry (if any) without touching any L1.
    fn unregister(&mut self, id: u32) {
        let prev = self.owner[id as usize];
        if prev != NO_OWNER {
            self.owner[id as usize] = NO_OWNER;
            self.owned_list_remove(prev, id);
        }
    }

    /// Epoch-tagged chain read: the recorded completion if it belongs to
    /// the current epoch, else "no chain".
    #[inline]
    fn chain_get(entry: (u64, u64), epoch: u64) -> u64 {
        if entry.0 == epoch {
            entry.1
        } else {
            0
        }
    }

    /// Acquires an L2 bank for `occupancy` cycles starting no earlier
    /// than `arrive`; returns the service start time.
    fn bank_service(&mut self, bank: u32, arrive: u64, occupancy: u64) -> u64 {
        let slot = &mut self.bank_free[bank as usize];
        let start = arrive.max(*slot);
        *slot = start + occupancy;
        start
    }

    /// L2 tag access for `line`; returns the latency contribution beyond
    /// the network (0 extra for a hit, the memory penalty for a miss) and
    /// fills the L2 on miss.
    fn l2_data_latency(&mut self, line: u64, bank: u32) -> u64 {
        if self.l2.probe_fill(line) {
            self.counters.l2_hits += 1;
            0
        } else {
            self.counters.l2_misses += 1;
            self.mesh.mem_penalty(bank)
        }
    }

    /// Inserts `line` into `sm`'s L1, maintaining the ownership
    /// invariant on eviction. Evicting an owned line costs a writeback
    /// transaction at the victim's home L2 bank.
    fn l1_fill(&mut self, sm: u32, line: u64, state: LineState, at: u64) {
        let ev = self.l1[sm as usize].insert(line, state);
        self.l1_evict(ev, at);
    }

    /// Handles the fallout of an L1 fill's eviction: an evicted owned
    /// line is written back (ownership returns to the L2 directory and
    /// the home bank absorbs the data).
    fn l1_evict(&mut self, ev: Option<Eviction>, at: u64) {
        if let Some(ev) = ev {
            if ev.state == LineState::Owned {
                if let Some(id) = self.lines.get(ev.line) {
                    self.unregister(id);
                }
                self.l2.insert(ev.line, LineState::Valid);
                let bank = self.bank_of(ev.line);
                self.bank_service(bank, at, 2);
                self.counters.noc_line_transfers += 1;
            }
        }
    }

    /// Revokes the previous owner's hold on line `id` (downgrade on
    /// remote registration or read), invalidating its L1 copy.
    fn revoke_owner(&mut self, id: u32) {
        let prev = self.owner[id as usize];
        if prev != NO_OWNER {
            self.owner[id as usize] = NO_OWNER;
            self.owned_list_remove(prev, id);
            self.l1[prev as usize].invalidate(self.lines.key(id));
        }
    }

    /// Non-atomic load of one coalesced line by SM `sm` issued at `at`.
    pub fn load(&mut self, sm: u32, addr: u64, at: u64) -> Access {
        let line = self.line_of(addr);
        // One fused L1 set scan serves both the hit check and (on miss)
        // the victim choice for the fill below; nothing in between
        // touches this L1, so the reservation stays valid.
        let victim = match self.l1[sm as usize].lookup_or_victim(line) {
            Ok(_) => {
                self.counters.l1_hits += 1;
                let done = at + self.l1_hit;
                self.attribute(addr, AccessKind::Load, true, done - at);
                #[cfg(feature = "check")]
                self.check_line_invariants(line, at);
                return Access {
                    proceed_at: done,
                    complete_at: done,
                };
            }
            Err(v) => v,
        };
        self.counters.l1_misses += 1;
        let start = self.mshr[sm as usize].admit_at(at);
        if start > at {
            self.counters.mshr_stalls += 1;
        }

        let complete_at = match self.owner_of(line) {
            // DeNovo: line lives in another SM's L1; fetch from there
            // (the owner keeps ownership for a read).
            Some(other) if other != sm => {
                self.counters.remote_transfers += 1;
                start + self.mesh.remote_l1_latency(sm, other)
            }
            _ => {
                let bank = self.bank_of(line);
                let net = self.mesh.l2_latency(sm, bank);
                // Reads are pipelined: one per bank per cycle.
                let svc_start = self.bank_service(bank, start + net / 2, 1);
                let extra = self.l2_data_latency(line, bank);
                svc_start + net / 2 + 1 + extra
            }
        };
        self.counters.noc_line_transfers += 1;
        self.mshr[sm as usize].push(complete_at);
        let ev = self.l1[sm as usize].fill_victim(victim, line, LineState::Valid);
        self.l1_evict(ev, at);
        self.attribute(addr, AccessKind::Load, false, complete_at - at);
        #[cfg(feature = "check")]
        self.check_line_invariants(line, at);
        Access {
            proceed_at: complete_at,
            complete_at,
        }
    }

    /// Non-atomic store of one coalesced line by SM `sm` issued at `at`.
    ///
    /// GPU coherence: write-through via the store buffer (the warp
    /// proceeds once a buffer slot is free). DeNovo: obtain ownership at
    /// the L1; the registration occupies a store-buffer slot until it
    /// completes, but the warp proceeds immediately.
    pub fn store(&mut self, sm: u32, addr: u64, at: u64) -> Access {
        let line = self.line_of(addr);
        match self.hw.coherence {
            CoherenceKind::Gpu => {
                self.counters.write_throughs += 1;
                let admit = self.store_buf[sm as usize].admit_at(at);
                if admit > at {
                    self.counters.store_buffer_stalls += 1;
                }
                let bank = self.bank_of(line);
                let net = self.mesh.l2_latency(sm, bank);
                let svc_start = self.bank_service(bank, admit + net / 2, 1);
                let extra = self.l2_data_latency(line, bank);
                let complete_at = svc_start + net / 2 + extra;
                self.counters.noc_line_transfers += 1;
                self.store_buf[sm as usize].push(complete_at);
                self.attribute(addr, AccessKind::Store, false, complete_at - at);
                #[cfg(feature = "check")]
                self.check_line_invariants(line, at);
                // Write-through updates a resident L1 copy in place (it
                // stays Valid); no allocation on miss.
                Access {
                    proceed_at: admit + 1,
                    complete_at,
                }
            }
            CoherenceKind::DeNovo => {
                if self.owner_of(line) == Some(sm) {
                    // Already owned: pure local write.
                    let done = at + self.l1_hit;
                    self.l1[sm as usize].lookup(line); // refresh LRU
                    self.attribute(addr, AccessKind::Store, true, done - at);
                    #[cfg(feature = "check")]
                    self.check_line_invariants(line, at);
                    return Access {
                        proceed_at: done,
                        complete_at: done,
                    };
                }
                let complete_at = self.register_ownership(sm, line, at);
                self.attribute(addr, AccessKind::Store, false, complete_at - at);
                #[cfg(feature = "check")]
                self.check_line_invariants(line, at);
                Access {
                    proceed_at: at + 1,
                    complete_at,
                }
            }
        }
    }

    /// Obtains DeNovo ownership of `line` for SM `sm`: a registration
    /// round-trip through the L2 directory (or the previous owner's L1),
    /// filling the line `Owned` into `sm`'s L1. Returns the completion
    /// time; the registration occupies a store-buffer slot until then.
    fn register_ownership(&mut self, sm: u32, line: u64, at: u64) -> u64 {
        self.counters.registrations += 1;
        let id = self.intern_line(line);
        let admit = self.store_buf[sm as usize].admit_at(at);
        // Transfers of the same line serialize: the directory hands a
        // line to one owner at a time (ping-pong under contention).
        let chain = Self::chain_get(self.owner_chain[id as usize], self.owner_epoch);
        let start = admit.max(chain);
        let prev = self.owner[id as usize];
        let remote = prev != NO_OWNER && prev != sm;
        if self.tracer.enabled()
            && (at >= self.last_ownership_emit + self.tracer.stride()
                || self.counters.registrations == 1)
        {
            self.last_ownership_emit = at;
            self.tracer.emit(&TraceEvent::OwnershipTransfer {
                sm,
                cycle: at,
                line,
                remote,
            });
        }
        let complete_at = if remote {
            self.counters.remote_transfers += 1;
            start + self.mesh.remote_l1_latency(sm, prev)
        } else {
            // Directory registration: same bank service cost as an
            // L2 atomic (lookup + state update + data reply).
            let bank = self.bank_of(line);
            let net = self.mesh.l2_latency(sm, bank);
            let svc_start = self.bank_service(bank, start + net / 2, self.registration_occupancy);
            let extra = self.l2_data_latency(line, bank);
            svc_start + net / 2 + extra
        };
        self.owner_chain[id as usize] = (self.owner_epoch, complete_at);
        self.counters.noc_line_transfers += 1;
        self.counters.noc_control_messages += 2; // request + ack
        self.revoke_owner(id);
        self.owner[id as usize] = sm;
        self.owned_list_add(sm, id);
        self.l1_fill(sm, line, LineState::Owned, at);
        self.store_buf[sm as usize].push(complete_at);
        complete_at
    }

    /// Atomic read-modify-write on one word by SM `sm` issued at `at`.
    ///
    /// GPU coherence: executes at the word's home L2 bank, serialized per
    /// word and contending for bank service. DeNovo: executes at the L1
    /// when owned (registering first when not), serialized per word.
    pub fn atomic(&mut self, sm: u32, addr: u64, at: u64) -> Access {
        let line = self.line_of(addr);
        match self.hw.coherence {
            CoherenceKind::Gpu => {
                self.counters.l2_atomics += 1;
                let bank = self.bank_of(line);
                let net = self.mesh.l2_latency(sm, bank);
                let wid = self.intern_word(addr) as usize;
                let chain = Self::chain_get(self.atomic_chain[wid], self.atomic_epoch);
                let svc_start =
                    self.bank_service(bank, (at + net / 2).max(chain), self.l2_atomic_occupancy);
                let extra = self.l2_data_latency(line, bank);
                let done_at_bank = svc_start + self.atomic_rmw + extra;
                self.atomic_chain[wid] = (self.atomic_epoch, done_at_bank);
                let complete_at = done_at_bank + net / 2;
                self.counters.noc_control_messages += 2; // request + reply
                self.attribute(addr, AccessKind::Atomic, false, complete_at - at);
                #[cfg(feature = "check")]
                self.check_line_invariants(line, at);
                Access {
                    proceed_at: at + 1,
                    complete_at,
                }
            }
            CoherenceKind::DeNovo => {
                let owned = self.owner_of(line) == Some(sm);
                let (base, proceed) = if owned {
                    self.l1[sm as usize].lookup(line); // refresh LRU
                    (at, at + 1)
                } else {
                    let reg_done = self.register_ownership(sm, line, at);
                    (reg_done, at + 1)
                };
                self.counters.l1_atomics += 1;
                let wid = self.intern_word(addr) as usize;
                let chain = Self::chain_get(self.atomic_chain[wid], self.atomic_epoch);
                let complete_at = base.max(chain) + self.l1_atomic_occupancy;
                self.atomic_chain[wid] = (self.atomic_epoch, complete_at);
                self.attribute(addr, AccessKind::Atomic, owned, complete_at - at);
                #[cfg(feature = "check")]
                self.check_line_invariants(line, at);
                Access {
                    proceed_at: proceed,
                    complete_at,
                }
            }
        }
    }

    /// Reserves an outstanding-atomic slot for one warp atomic
    /// instruction issued at `at`; returns the cycle the slot is
    /// available (back-pressure when all trackers are in flight).
    pub fn atomic_slot_admit(&mut self, sm: u32, at: u64) -> u64 {
        let start = self.atomic_q[sm as usize].admit_at(at);
        if start > at {
            self.counters.mshr_stalls += 1;
        }
        start
    }

    /// Records the completion time of the warp atomic instruction whose
    /// slot was reserved by [`MemorySystem::atomic_slot_admit`].
    pub fn atomic_slot_complete(&mut self, sm: u32, complete_at: u64) {
        self.atomic_q[sm as usize].push(complete_at);
    }

    /// Acquire: flash self-invalidation of SM `sm`'s L1 (owned DeNovo
    /// lines survive).
    pub fn acquire(&mut self, sm: u32) {
        #[cfg(feature = "check")]
        let skipped = self
            .checker
            .as_mut()
            .map(|c| std::mem::take(&mut c.skip_next_invalidation))
            .unwrap_or(false);
        #[cfg(not(feature = "check"))]
        let skipped = false;
        if !skipped {
            let n = self.l1[sm as usize].invalidate_unowned();
            self.counters.invalidations += n;
        }
        #[cfg(feature = "check")]
        self.check_acquire_invariants(sm);
    }

    /// Release: returns the cycle by which all of SM `sm`'s outstanding
    /// write-throughs / registrations have completed.
    pub fn release_drain(&self, sm: u32) -> u64 {
        self.store_buf[sm as usize].drain_time()
    }

    /// Cycle by which every SM's writes have drained (kernel end).
    pub fn global_drain(&self) -> u64 {
        self.store_buf
            .iter()
            .map(|b| b.drain_time())
            .max()
            .unwrap_or(0)
    }

    /// Marks a kernel boundary: clears the per-word atomic serialization
    /// chains (new kernel, new epoch) and performs the launch acquire on
    /// every SM. Cache and ownership state persist, as in the simulated
    /// machine.
    pub fn begin_kernel(&mut self) {
        // Epoch bumps retire every chain entry at once; the tables keep
        // their interned capacity for the next kernel.
        self.atomic_epoch += 1;
        self.owner_epoch += 1;
        for sm in 0..self.l1.len() as u32 {
            self.acquire(sm);
        }
    }
}

/// Protocol invariant checking (see [`crate::check`]). The invariant
/// logic lives here because it needs to peek at every L1 and the
/// ownership registry; `ProtocolChecker` only accumulates violations.
#[cfg(feature = "check")]
impl MemorySystem<'_> {
    /// Turns the protocol invariant checker on. Until this is called,
    /// the compiled-in hooks cost one branch per access.
    pub fn enable_protocol_checker(&mut self) {
        self.checker = Some(ProtocolChecker::default());
    }

    /// Drains every violation recorded since the last call (empty if
    /// the protocol behaved — or the checker was never enabled).
    pub fn take_protocol_violations(&mut self) -> Vec<ProtocolViolation> {
        self.checker
            .as_mut()
            .map(|c| std::mem::take(&mut c.violations))
            .unwrap_or_default()
    }

    /// Full-state audit at cycle `at`: re-checks every line resident in
    /// any L1 or registered in the ownership registry. Use at kernel
    /// boundaries; per-access checking already covers touched lines.
    pub fn audit(&mut self, at: u64) {
        if self.checker.is_none() {
            return;
        }
        let mut lines: Vec<u64> = self
            .owned_by_sm
            .iter()
            .flatten()
            .map(|&id| self.lines.key(id))
            .collect();
        for l1 in &self.l1 {
            lines.extend(l1.resident_lines().map(|(line, _)| line));
        }
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            self.check_line_invariants(line, at);
        }
    }

    /// Fault injection for negative tests: plants `line` as `Owned` in
    /// `sm`'s L1 *without* updating the ownership registry, so the next
    /// check of that line reports a violation (ownership-registry
    /// mismatch under DeNovo, owned-line-exists under GPU coherence,
    /// and SWMR if another L1 legitimately owns it).
    pub fn debug_force_owned(&mut self, sm: u32, line: u64) {
        self.l1[sm as usize].insert(line, LineState::Owned);
    }

    /// Fault injection for negative tests: the next acquire skips its
    /// self-invalidation, leaving stale `Valid` lines for the
    /// post-acquire check to catch. No-op unless the checker is
    /// enabled.
    pub fn debug_skip_next_invalidation(&mut self) {
        if let Some(c) = self.checker.as_mut() {
            c.skip_next_invalidation = true;
        }
    }

    /// Structural view of `sm`'s L1 state for the line containing
    /// `addr` (`None` when not resident). Used by the ggs-verify
    /// conformance bridge to compare the implementation against the
    /// timing-free protocol model step by step.
    pub fn probe_l1_state(&self, sm: u32, addr: u64) -> Option<LineState> {
        self.l1[sm as usize].peek(self.line_of(addr))
    }

    /// Raw ownership-registry entry for the line containing `addr`,
    /// ignoring the active protocol (GPU runs always report `None`).
    pub fn probe_owner(&self, addr: u64) -> Option<u32> {
        self.registered_owner(self.line_of(addr))
    }

    /// Forces the line containing `addr` out of `sm`'s L1 as if it were
    /// chosen as a capacity victim at cycle `at`: an Owned victim
    /// writes back (ownership returns to the L2 directory) exactly like
    /// a real eviction. No-op when the line is not resident. Lets the
    /// ggs-verify bridge replay witness schedules containing explicit
    /// evictions.
    pub fn debug_evict(&mut self, sm: u32, addr: u64, at: u64) {
        let line = self.line_of(addr);
        if let Some(state) = self.l1[sm as usize].invalidate(line) {
            self.l1_evict(Some(Eviction { line, state }), at);
        }
    }

    /// Checks every per-line invariant for `line` after an access at
    /// cycle `at`: SWMR, ownership-registry consistency (DeNovo), and
    /// no-owned-lines (GPU coherence). The disabled-checker case must
    /// stay an inlined branch: this hook sits on every access, and the
    /// `check` feature is compiled in whenever `ggs-check` is in the
    /// dependency graph — including the benchmark binary.
    #[inline]
    fn check_line_invariants(&mut self, line: u64, at: u64) {
        if self.checker.is_some() {
            self.check_line_invariants_enabled(line, at);
        }
    }

    #[cold]
    fn check_line_invariants_enabled(&mut self, line: u64, at: u64) {
        let owners: Vec<u32> = (0..self.l1.len() as u32)
            .filter(|&s| self.l1[s as usize].peek(line) == Some(LineState::Owned))
            .collect();
        let mut found = Vec::new();
        if owners.len() > 1 {
            found.push(ProtocolViolation {
                cycle: at,
                sm: owners[0],
                line,
                kind: InvariantKind::Swmr,
                detail: format!("line is Owned in {} L1s: SMs {owners:?}", owners.len()),
            });
        }
        match self.hw.coherence {
            CoherenceKind::Gpu => {
                for &sm in &owners {
                    found.push(ProtocolViolation {
                        cycle: at,
                        sm,
                        line,
                        kind: InvariantKind::GpuOwnedLine,
                        detail: "L1 holds an Owned line under write-through GPU coherence"
                            .to_owned(),
                    });
                }
            }
            CoherenceKind::DeNovo => {
                let registered = self.registered_owner(line);
                if let Some(reg) = registered {
                    if !owners.contains(&reg) {
                        found.push(ProtocolViolation {
                            cycle: at,
                            sm: reg,
                            line,
                            kind: InvariantKind::OwnerMapMismatch,
                            detail: format!(
                                "registry says SM {reg} owns the line, but its L1 holds it {:?}",
                                self.l1[reg as usize].peek(line)
                            ),
                        });
                    }
                }
                for &sm in &owners {
                    if registered != Some(sm) {
                        found.push(ProtocolViolation {
                            cycle: at,
                            sm,
                            line,
                            kind: InvariantKind::OwnerMapMismatch,
                            detail: format!(
                                "L1 holds the line Owned, but the registry entry is {registered:?}"
                            ),
                        });
                    }
                }
            }
        }
        let checker = self.checker.as_mut().expect("checked above");
        checker.now = checker.now.max(at);
        checker.violations.extend(found);
    }

    /// Checks the post-acquire invariant for `sm`: after
    /// self-invalidation only `Owned` lines may remain resident, so a
    /// surviving `Valid` line could serve stale data.
    fn check_acquire_invariants(&mut self, sm: u32) {
        if self.checker.is_none() {
            return;
        }
        let stale: Vec<u64> = self.l1[sm as usize]
            .resident_lines()
            .filter(|&(_, state)| state == LineState::Valid)
            .map(|(line, _)| line)
            .collect();
        let checker = self.checker.as_mut().expect("checked above");
        let now = checker.now;
        for line in stale {
            checker.violations.push(ProtocolViolation {
                cycle: now,
                sm,
                line,
                kind: InvariantKind::StaleAfterAcquire,
                detail: "Valid (unowned) line survived the acquire's self-invalidation".to_owned(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConsistencyModel;

    fn mem(coh: CoherenceKind) -> MemorySystem<'static> {
        MemorySystem::new(
            &SystemParams::default(),
            HwConfig::new(coh, ConsistencyModel::Drf1),
        )
    }

    #[test]
    fn id_table_assigns_first_touch_order_across_tiers() {
        let mut t = IdTable::default();
        // One key per tier, interleaved, then revisited: ids must follow
        // first-touch order regardless of which tier resolves the key.
        let keys = [
            7u64,                    // direct
            DENSE_KEY_LIMIT + 3,     // first paged page
            PAGED_KEY_LIMIT + 11,    // sparse
            DENSE_KEY_LIMIT * 2 + 5, // later paged page
            u64::MAX,                // sparse extreme
            8,                       // direct again
        ];
        for (expect, &k) in keys.iter().enumerate() {
            assert_eq!(t.intern(k), expect as u32, "first touch of {k:#x}");
        }
        for (expect, &k) in keys.iter().enumerate() {
            assert_eq!(t.intern(k), expect as u32, "revisit of {k:#x}");
            assert_eq!(t.get(k), Some(expect as u32));
            assert_eq!(t.key(expect as u32), k);
        }
        assert_eq!(t.get(9), None);
        assert_eq!(t.get(DENSE_KEY_LIMIT + 4), None);
        assert_eq!(t.get(PAGED_KEY_LIMIT + 12), None);
    }

    #[test]
    fn id_table_paged_tier_survives_a_dense_key_run() {
        // A contiguous big-graph address range past the direct bound:
        // every key lands in the paged tier, spanning page boundaries.
        let mut t = IdTable::default();
        let base = DENSE_KEY_LIMIT - 100;
        for i in 0..(PAGE_SLOTS as u64 * 3) {
            assert_eq!(t.intern(base + i), i as u32);
        }
        for i in (0..(PAGE_SLOTS as u64 * 3)).step_by(997) {
            assert_eq!(t.get(base + i), Some(i as u32));
            assert_eq!(t.key(i as u32), base + i);
        }
    }

    #[test]
    fn sparse_tier_grows_past_its_initial_capacity() {
        let mut t = IdTable::default();
        // Scattered huge keys force many sparse-table growths.
        for i in 0..10_000u64 {
            let key = PAGED_KEY_LIMIT + i * 0x9E37_79B9;
            assert_eq!(t.intern(key), i as u32);
        }
        for i in (0..10_000u64).step_by(271) {
            let key = PAGED_KEY_LIMIT + i * 0x9E37_79B9;
            assert_eq!(t.get(key), Some(i as u32));
        }
        assert_eq!(t.get(PAGED_KEY_LIMIT + 1), None);
    }

    #[test]
    fn load_miss_then_hit() {
        let mut m = mem(CoherenceKind::Gpu);
        let a = m.load(0, 0x1000, 0);
        assert!(a.complete_at >= 29, "first load should go to L2/memory");
        let b = m.load(0, 0x1000, a.complete_at);
        assert_eq!(b.complete_at, a.complete_at + 1, "second load is an L1 hit");
        assert_eq!(m.counters.l1_hits, 1);
        assert_eq!(m.counters.l1_misses, 1);
    }

    #[test]
    fn first_touch_pays_memory_latency() {
        let mut m = mem(CoherenceKind::Gpu);
        let a = m.load(0, 0x2000, 0);
        assert!(
            a.complete_at >= 197,
            "cold miss should include memory latency, got {}",
            a.complete_at
        );
        assert_eq!(m.counters.l2_misses, 1);
        // A different SM touching the same line now hits in L2.
        let b = m.load(1, 0x2000, 1000);
        assert!(b.complete_at - 1000 < 197, "L2 hit should be fast");
        assert_eq!(m.counters.l2_hits, 1);
    }

    #[test]
    fn gpu_acquire_invalidates_everything() {
        let mut m = mem(CoherenceKind::Gpu);
        m.load(0, 0x1000, 0);
        m.acquire(0);
        assert_eq!(m.counters.invalidations, 1);
        let again = m.load(0, 0x1000, 10_000);
        assert!(
            again.complete_at - 10_000 > 1,
            "must re-fetch after acquire"
        );
    }

    #[test]
    fn denovo_owned_lines_survive_acquire() {
        let mut m = mem(CoherenceKind::DeNovo);
        m.store(0, 0x1000, 0); // registers ownership
        m.acquire(0);
        let a = m.atomic(0, 0x1000, 10_000);
        assert_eq!(
            a.complete_at,
            10_000 + 2,
            "owned atomic should execute locally after acquire"
        );
        assert_eq!(m.counters.l1_atomics, 1);
    }

    #[test]
    fn gpu_atomics_serialize_per_word() {
        let mut m = mem(CoherenceKind::Gpu);
        let a = m.atomic(0, 0x42100, 0);
        let b = m.atomic(1, 0x42100, 0);
        assert!(
            b.complete_at >= a.complete_at + 6,
            "same-word atomics must serialize: {} then {}",
            a.complete_at,
            b.complete_at
        );
    }

    #[test]
    fn gpu_atomics_to_different_banks_overlap() {
        let mut m = mem(CoherenceKind::Gpu);
        let a = m.atomic(0, 0x0, 0);
        let b = m.atomic(0, 64, 0); // next line, different bank
                                    // Both complete in roughly one round-trip (cold-miss penalties
                                    // differ slightly per bank); far from the ~400 cycles serial
                                    // execution would take.
        assert!(b.complete_at < a.complete_at + 50);
    }

    #[test]
    fn denovo_atomic_registers_then_hits_locally() {
        let mut m = mem(CoherenceKind::DeNovo);
        let a = m.atomic(0, 0x3000, 0);
        assert!(a.complete_at >= 29, "first atomic pays registration");
        assert_eq!(m.counters.registrations, 1);
        let b = m.atomic(0, 0x3000, a.complete_at + 10);
        assert_eq!(
            b.complete_at,
            a.complete_at + 10 + 2,
            "owned atomic is local"
        );
    }

    #[test]
    fn denovo_ownership_ping_pong() {
        let mut m = mem(CoherenceKind::DeNovo);
        let a = m.atomic(0, 0x3000, 0);
        let t = a.complete_at + 10;
        let b = m.atomic(1, 0x3000, t);
        // SM1 must fetch from SM0's L1: remote transfer recorded, and the
        // latency is in the remote-L1 range rather than a local hit.
        assert_eq!(m.counters.remote_transfers, 1);
        assert!(b.complete_at - t >= 35, "remote transfer expected");
        // Ownership moved: SM1 now local, SM0 remote again.
        let c = m.atomic(1, 0x3000, b.complete_at + 5);
        assert_eq!(c.complete_at, b.complete_at + 5 + 2);
    }

    #[test]
    fn gpu_store_goes_through_buffer() {
        let mut m = mem(CoherenceKind::Gpu);
        let s = m.store(0, 0x5000, 0);
        assert_eq!(s.proceed_at, 1, "store should not block the warp");
        assert!(s.complete_at >= 14, "write-through takes L2 time");
        assert_eq!(m.counters.write_throughs, 1);
        assert!(m.release_drain(0) >= s.complete_at);
    }

    #[test]
    fn denovo_store_after_ownership_is_local() {
        let mut m = mem(CoherenceKind::DeNovo);
        let s1 = m.store(0, 0x5000, 0);
        let s2 = m.store(0, 0x5000, s1.complete_at + 1);
        assert_eq!(
            s2.complete_at,
            s1.complete_at + 1 + 1,
            "owned store is local"
        );
        assert_eq!(m.counters.registrations, 1);
    }

    #[test]
    fn store_buffer_backpressure() {
        let params = SystemParams {
            store_buffer_entries: 2,
            ..SystemParams::default()
        };
        let mut m = MemorySystem::new(
            &params,
            HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf1),
        );
        let a = m.store(0, 0x0, 0);
        let b = m.store(0, 0x100, 0);
        let c = m.store(0, 0x200, 0);
        assert_eq!(a.proceed_at, 1);
        assert_eq!(b.proceed_at, 1);
        assert!(
            c.proceed_at > 1,
            "third store must wait for a slot: {:?}",
            c
        );
    }

    #[test]
    fn mshr_backpressure() {
        let params = SystemParams {
            mshr_entries: 1,
            ..SystemParams::default()
        };
        let mut m = MemorySystem::new(
            &params,
            HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf1),
        );
        let a = m.load(0, 0x0, 0);
        let b = m.load(0, 0x1000, 0);
        assert!(b.complete_at > a.complete_at, "second miss waits for MSHR");
    }

    #[test]
    fn begin_kernel_clears_atomic_chains_and_invalidates() {
        let mut m = mem(CoherenceKind::Gpu);
        m.atomic(0, 0x100, 0);
        m.load(0, 0x4000, 0);
        m.begin_kernel();
        assert!(m.counters.invalidations >= 1);
        // Chain cleared: a new atomic at t=0 does not serialize after the
        // old one.
        let a = m.atomic(0, 0x100, 0);
        assert!(a.complete_at < 200);
    }

    #[test]
    fn region_attribution_counts_store_and_atomic_hits() {
        let mut m = mem(CoherenceKind::DeNovo);
        m.register_region("frontier", 0x0, 0x10000);
        let s1 = m.store(0, 0x1000, 0); // registration: miss
        let s2 = m.store(0, 0x1000, s1.complete_at + 1); // owned: local hit
        let a1 = m.atomic(0, 0x1000, s2.complete_at + 1); // owned: local hit
        m.load(0, 0x1000, a1.complete_at + 1); // resident: load hit
        let stats = m.region_stats();
        let (name, s) = &stats[0];
        assert_eq!(name, "frontier");
        assert_eq!((s.stores, s.store_hits), (2, 1));
        assert_eq!((s.atomics, s.atomic_hits), (1, 1));
        assert_eq!((s.loads, s.l1_hits), (1, 1));
    }

    #[test]
    fn gpu_region_attribution_has_no_store_or_atomic_hits() {
        let mut m = mem(CoherenceKind::Gpu);
        m.register_region("rank", 0x0, 0x10000);
        let s1 = m.store(0, 0x1000, 0);
        m.store(0, 0x1000, s1.complete_at + 1); // write-through again
        m.atomic(0, 0x1000, 0); // executes at the L2
        let stats = m.region_stats();
        let s = stats[0].1;
        assert_eq!((s.stores, s.store_hits), (2, 0));
        assert_eq!((s.atomics, s.atomic_hits), (1, 0));
    }

    #[test]
    fn owned_eviction_returns_ownership() {
        // Tiny L1: 1 set x 1 way = 1 line.
        let params = SystemParams {
            l1_bytes: 64,
            l1_assoc: 1,
            ..SystemParams::default()
        };
        let mut m = MemorySystem::new(
            &params,
            HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::Drf1),
        );
        m.store(0, 0x0, 0); // own line 0
        m.store(0, 0x40, 100); // evicts line 0
                               // Line 0 no longer owned: atomic from SM1 should not ping-pong.
        let before = m.counters.remote_transfers;
        m.atomic(1, 0x0, 200);
        assert_eq!(m.counters.remote_transfers, before);
    }
}

#[cfg(all(test, feature = "check"))]
mod check_tests {
    use super::*;
    use crate::check::InvariantKind;
    use crate::config::ConsistencyModel;

    fn mem(coh: CoherenceKind) -> MemorySystem<'static> {
        let mut m = MemorySystem::new(
            &SystemParams::default(),
            HwConfig::new(coh, ConsistencyModel::Drf1),
        );
        m.enable_protocol_checker();
        m
    }

    #[test]
    fn clean_denovo_traffic_reports_nothing() {
        let mut m = mem(CoherenceKind::DeNovo);
        let a = m.atomic(0, 0x100, 0);
        let b = m.atomic(1, 0x100, a.complete_at + 1); // ownership hand-off
        m.store(0, 0x200, b.complete_at + 1);
        m.load(2, 0x100, b.complete_at + 2);
        m.acquire(0);
        m.audit(b.complete_at + 10);
        assert_eq!(m.take_protocol_violations(), Vec::new());
    }

    #[test]
    fn clean_gpu_traffic_reports_nothing() {
        let mut m = mem(CoherenceKind::Gpu);
        m.load(0, 0x100, 0);
        m.store(1, 0x100, 5);
        m.atomic(2, 0x100, 10);
        m.acquire(0);
        m.audit(100);
        assert_eq!(m.take_protocol_violations(), Vec::new());
    }

    #[test]
    fn forced_ownership_breaks_registry_consistency() {
        let mut m = mem(CoherenceKind::DeNovo);
        m.debug_force_owned(1, 0x100 >> 6);
        m.load(0, 0x100, 0);
        let violations = m.take_protocol_violations();
        assert!(
            violations
                .iter()
                .any(|v| v.kind == InvariantKind::OwnerMapMismatch && v.sm == 1),
            "{violations:?}"
        );
    }

    #[test]
    fn double_ownership_breaks_swmr() {
        let mut m = mem(CoherenceKind::DeNovo);
        let a = m.store(0, 0x100, 0); // SM 0 legitimately owns the line
        m.debug_force_owned(1, 0x100 >> 6);
        m.audit(a.complete_at);
        let violations = m.take_protocol_violations();
        assert!(
            violations.iter().any(|v| v.kind == InvariantKind::Swmr),
            "{violations:?}"
        );
    }

    #[test]
    fn owned_line_under_gpu_coherence_is_flagged() {
        let mut m = mem(CoherenceKind::Gpu);
        m.debug_force_owned(0, 0x40 >> 6);
        m.audit(7);
        let violations = m.take_protocol_violations();
        assert!(
            violations
                .iter()
                .any(|v| v.kind == InvariantKind::GpuOwnedLine && v.cycle == 7),
            "{violations:?}"
        );
    }

    #[test]
    fn skipped_invalidation_leaves_stale_lines() {
        let mut m = mem(CoherenceKind::Gpu);
        m.load(0, 0x1000, 0);
        m.debug_skip_next_invalidation();
        m.acquire(0);
        let violations = m.take_protocol_violations();
        assert!(
            violations
                .iter()
                .any(|v| v.kind == InvariantKind::StaleAfterAcquire
                    && v.sm == 0
                    && v.line == 0x1000 >> 6),
            "{violations:?}"
        );
        // The *next* acquire is clean again (one-shot injection).
        m.load(0, 0x1000, 100);
        m.acquire(0);
        assert_eq!(m.take_protocol_violations(), Vec::new());
    }

    #[test]
    fn disabled_checker_records_nothing() {
        let mut m = MemorySystem::new(
            &SystemParams::default(),
            HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf1),
        );
        m.debug_force_owned(0, 1);
        m.audit(0);
        assert_eq!(m.take_protocol_violations(), Vec::new());
    }
}

#[cfg(test)]
mod traffic_tests {
    use super::*;
    use crate::config::{CoherenceKind, ConsistencyModel};

    fn mem(coh: CoherenceKind) -> MemorySystem<'static> {
        MemorySystem::new(
            &SystemParams::default(),
            HwConfig::new(coh, ConsistencyModel::Drf1),
        )
    }

    #[test]
    fn loads_count_one_line_transfer_per_miss() {
        let mut m = mem(CoherenceKind::Gpu);
        m.load(0, 0x0, 0);
        m.load(0, 0x0, 100); // hit: no new traffic
        assert_eq!(m.counters.noc_line_transfers, 1);
    }

    #[test]
    fn gpu_atomics_are_control_traffic() {
        let mut m = mem(CoherenceKind::Gpu);
        m.atomic(0, 0x100, 0);
        assert_eq!(m.counters.noc_control_messages, 2);
        assert_eq!(m.counters.noc_line_transfers, 0);
    }

    #[test]
    fn denovo_owned_atomics_generate_no_traffic() {
        let mut m = mem(CoherenceKind::DeNovo);
        let a = m.atomic(0, 0x100, 0); // registration traffic
        let after_reg = (
            m.counters.noc_line_transfers,
            m.counters.noc_control_messages,
        );
        m.atomic(0, 0x100, a.complete_at + 1); // owned: local, free
        assert_eq!(
            (
                m.counters.noc_line_transfers,
                m.counters.noc_control_messages
            ),
            after_reg
        );
    }

    #[test]
    fn write_throughs_are_line_traffic() {
        let mut m = mem(CoherenceKind::Gpu);
        m.store(0, 0x200, 0);
        assert_eq!(m.counters.noc_line_transfers, 1);
    }

    #[test]
    fn reconfigure_away_from_denovo_drops_ownership() {
        let mut m = mem(CoherenceKind::DeNovo);
        m.store(0, 0x300, 0); // owns the line
        m.reconfigure(HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf0));
        // Under GPU coherence the same address must now behave like an
        // unowned line: an atomic goes to the L2 (control traffic).
        let before = m.counters.noc_control_messages;
        m.atomic(1, 0x300, 100);
        assert_eq!(m.counters.noc_control_messages, before + 2);
        assert_eq!(m.counters.l1_atomics, 0);
    }

    #[test]
    fn reconfigure_counts_owned_writebacks_and_l2_victims() {
        // 1-line L2 so every reconfigure writeback displaces a victim.
        let params = SystemParams {
            l2_bytes: 64,
            l2_assoc: 1,
            ..SystemParams::default()
        };
        let mut m = MemorySystem::new(
            &params,
            HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::Drf1),
        );
        let s1 = m.store(0, 0x0, 0); // own line 0
        m.store(0, 0x40, s1.complete_at + 1); // own line 1
        let before = m.counters.noc_line_transfers;
        m.reconfigure(HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf0));
        // Two owned lines written back to the L2, and each fill evicts
        // the other line from the 1-line L2 (victim writeback).
        assert_eq!(m.counters.noc_line_transfers, before + 4);
    }

    #[test]
    fn reconfigure_within_same_coherence_keeps_ownership() {
        let mut m = mem(CoherenceKind::DeNovo);
        m.store(0, 0x300, 0);
        m.reconfigure(HwConfig::new(
            CoherenceKind::DeNovo,
            ConsistencyModel::DrfRlx,
        ));
        let a = m.atomic(0, 0x300, 100);
        assert_eq!(a.complete_at, 102, "still an owned local atomic");
    }
}
