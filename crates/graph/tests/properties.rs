//! Property-based tests of the graph substrate's invariants.

use proptest::prelude::*;

use ggs_graph::mtx::{read_mtx, write_mtx};
use ggs_graph::synth::{DegreeModel, SynthConfig};
use ggs_graph::{Csr, GraphBuilder};

/// Strategy: an arbitrary edge list over up to `max_v` vertices.
fn edge_lists(max_v: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_v).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    /// The builder always produces a directed symmetric graph without
    /// self-loops or duplicates, regardless of input.
    #[test]
    fn builder_normalizes_any_edge_list((n, edges) in edge_lists(64)) {
        let g = GraphBuilder::new(n).edges(edges).symmetric(true).build();
        prop_assert!(g.is_symmetric());
        prop_assert!(!g.has_self_loops());
        // No duplicates: every adjacency list is strictly increasing.
        for v in 0..n {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Degree identities: the sum of out-degrees equals the edge count,
    /// and the degree statistics bound each other.
    #[test]
    fn degree_identities((n, edges) in edge_lists(64)) {
        let g = GraphBuilder::new(n).edges(edges).build();
        let total: u64 = (0..n).map(|v| g.out_degree(v) as u64).sum();
        prop_assert_eq!(total, g.num_edges());
        let s = g.degree_stats();
        prop_assert!(s.min as f64 <= s.avg + 1e-9);
        prop_assert!(s.avg <= s.max as f64 + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Transposing twice is the identity, and the transpose preserves
    /// the edge count.
    #[test]
    fn transpose_involution((n, edges) in edge_lists(48)) {
        let g = Csr::from_edges(n, &edges);
        let tt = g.transpose().transpose();
        prop_assert_eq!(&tt, &g);
        prop_assert_eq!(g.transpose().num_edges(), g.num_edges());
    }

    /// Matrix Market write → read roundtrips any normalized graph.
    #[test]
    fn mtx_roundtrip((n, edges) in edge_lists(48)) {
        let g = GraphBuilder::new(n).edges(edges).symmetric(true).build();
        let mut buf = Vec::new();
        write_mtx(&g, &mut buf).expect("write succeeds");
        let back = read_mtx(&buf[..]).expect("parse succeeds");
        prop_assert_eq!(back, g);
    }

    /// Hashed edge weights are symmetric and within range for any graph.
    #[test]
    fn hashed_weights_invariants((n, edges) in edge_lists(48), max_w in 1u32..100) {
        let g = GraphBuilder::new(n).edges(edges).symmetric(true).build()
            .with_hashed_weights(max_w);
        for (s, t) in g.edges() {
            let i = g.neighbors(s).binary_search(&t).expect("edge exists");
            let w_st = g.edge_weights(s).expect("weighted")[i];
            prop_assert!((1..=max_w).contains(&w_st));
            let j = g.neighbors(t).binary_search(&s).expect("symmetric");
            let w_ts = g.edge_weights(t).expect("weighted")[j];
            prop_assert_eq!(w_st, w_ts);
        }
    }

    /// The synthetic generator hits its exact edge target and the
    /// normalization invariants for arbitrary small configurations.
    #[test]
    fn synth_invariants(
        n in 64u32..2048,
        avg in 1.0f64..8.0,
        p_local in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let cfg = SynthConfig::custom(
            "prop",
            n,
            avg,
            DegreeModel::log_normal(0.8),
            p_local,
        )
        .seed(seed);
        let g = cfg.generate();
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.num_edges(), cfg.target_edges());
        prop_assert!(g.is_symmetric());
        prop_assert!(!g.has_self_loops());
    }

    /// Higher locality never decreases the fraction of thread-block-local
    /// edges (monotonicity of the locality knob, coarse check).
    #[test]
    fn synth_locality_monotone(seed in 0u64..200) {
        let frac = |p_local: f64| {
            let g = SynthConfig::custom(
                "prop", 2048, 6.0, DegreeModel::constant(6, 0.0), p_local)
                .seed(seed)
                .generate();
            let local = g.edges().filter(|&(s, t)| s / 256 == t / 256).count();
            local as f64 / g.num_edges() as f64
        };
        let lo = frac(0.05);
        let hi = frac(0.9);
        prop_assert!(hi > lo, "local fraction should grow: {lo} vs {hi}");
    }
}
