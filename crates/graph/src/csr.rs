//! Compressed-sparse-row graph representation.

use crate::stats::DegreeStats;

/// Identifier of a vertex.
///
/// Vertices are dense integers `0..num_vertices`. `u32` comfortably covers
/// the paper's largest input (410 236 vertices / 6 713 648 edges) while
/// halving the memory traffic of the simulator's adjacency walks relative
/// to `usize`.
pub type VertexId = u32;

/// A directed graph in compressed-sparse-row form.
///
/// `row_ptr` has `num_vertices + 1` entries; the out-neighbors of vertex
/// `v` are `col_idx[row_ptr[v] .. row_ptr[v + 1]]`, optionally paired with
/// positive edge weights (used by SSSP).
///
/// The paper's methodology (§V-A) converts every input to a *directed,
/// symmetric* graph with self-edges removed; [`crate::GraphBuilder`]
/// performs those normalizations. `Csr` itself represents any directed
/// graph.
///
/// # Example
///
/// ```
/// use ggs_graph::Csr;
///
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    row_ptr: Vec<u32>,
    col_idx: Vec<VertexId>,
    weights: Option<Vec<u32>>,
}

impl Csr {
    /// Creates a graph from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `row_ptr` must be non-empty,
    /// non-decreasing, start at 0 and end at `col_idx.len()`; every column
    /// index must be `< row_ptr.len() - 1`; `weights`, when present, must
    /// have one entry per edge.
    pub fn from_raw_parts(
        row_ptr: Vec<u32>,
        col_idx: Vec<VertexId>,
        weights: Option<Vec<u32>>,
    ) -> Self {
        assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().expect("non-empty") as usize,
            col_idx.len(),
            "row_ptr must end at the number of edges"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        let n = (row_ptr.len() - 1) as u32;
        assert!(col_idx.iter().all(|&c| c < n), "column index out of range");
        if let Some(w) = &weights {
            assert_eq!(w.len(), col_idx.len(), "one weight per edge required");
        }
        Self {
            row_ptr,
            col_idx,
            weights,
        }
    }

    /// Creates an unweighted graph from an edge list, sorting each
    /// adjacency list by target.
    ///
    /// Duplicate edges and self-loops are kept verbatim; use
    /// [`crate::GraphBuilder`] for normalization.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: u32, edges: &[(VertexId, VertexId)]) -> Self {
        let mut counts = vec![0u32; num_vertices as usize + 1];
        for &(s, t) in edges {
            assert!(
                s < num_vertices && t < num_vertices,
                "edge endpoint out of range"
            );
            counts[s as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; edges.len()];
        let mut next = counts;
        for &(s, t) in edges {
            col_idx[next[s as usize] as usize] = t;
            next[s as usize] += 1;
        }
        for v in 0..num_vertices as usize {
            col_idx[row_ptr[v] as usize..row_ptr[v + 1] as usize].sort_unstable();
        }
        Self {
            row_ptr,
            col_idx,
            weights: None,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.row_ptr.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.col_idx.len() as u64
    }

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.row_ptr[v as usize + 1] - self.row_ptr[v as usize]
    }

    /// Out-neighbors of vertex `v`, sorted ascending when the graph was
    /// produced by [`Csr::from_edges`] or [`crate::GraphBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.col_idx[self.row_ptr[v as usize] as usize..self.row_ptr[v as usize + 1] as usize]
    }

    /// Weights of the out-edges of `v`, parallel to [`Csr::neighbors`], if
    /// the graph is weighted.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn edge_weights(&self, v: VertexId) -> Option<&[u32]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.row_ptr[v as usize] as usize..self.row_ptr[v as usize + 1] as usize])
    }

    /// Index range of `v`'s out-edges within the CSR arrays.
    ///
    /// The simulator uses these indices to derive the *addresses* of the
    /// `col_idx`/weight words a kernel touches.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<u32> {
        self.row_ptr[v as usize]..self.row_ptr[v as usize + 1]
    }

    /// The raw `row_ptr` array.
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The raw `col_idx` array.
    pub fn col_idx(&self) -> &[VertexId] {
        &self.col_idx
    }

    /// `true` if the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Attaches uniform pseudo-random weights in `1..=max_weight` derived
    /// from a deterministic hash of each edge, returning the weighted
    /// graph.
    ///
    /// Weights are a function of `(source, target)` only, so the
    /// symmetrized reverse edge `(t, s)` receives the same weight as
    /// `(s, t)` — required for SSSP on the paper's symmetric inputs.
    ///
    /// # Panics
    ///
    /// Panics if `max_weight == 0`.
    pub fn with_hashed_weights(mut self, max_weight: u32) -> Self {
        assert!(max_weight > 0, "max_weight must be positive");
        let mut w = Vec::with_capacity(self.col_idx.len());
        for v in 0..self.num_vertices() {
            for &t in self.neighbors(v) {
                let (a, b) = if v <= t { (v, t) } else { (t, v) };
                let h = splitmix64(((a as u64) << 32) | b as u64);
                w.push((h % max_weight as u64) as u32 + 1);
            }
        }
        self.weights = Some(w);
        self
    }

    /// Iterates over all directed edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Returns the transpose graph (all edges reversed).
    ///
    /// For the paper's symmetric inputs the transpose equals the graph
    /// itself; pull kernels nevertheless conceptually traverse in-edges, so
    /// the transpose is exposed for generality.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0u32; n as usize + 1];
        for &t in &self.col_idx {
            counts[t as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.col_idx.len()];
        let mut weights = self
            .weights
            .as_ref()
            .map(|_| vec![0u32; self.col_idx.len()]);
        let mut next = counts;
        for v in 0..n {
            let base = self.row_ptr[v as usize] as usize;
            for (i, &t) in self.neighbors(v).iter().enumerate() {
                let slot = next[t as usize] as usize;
                col_idx[slot] = v;
                if let (Some(w), Some(src)) = (&mut weights, &self.weights) {
                    w[slot] = src[base + i];
                }
                next[t as usize] += 1;
            }
        }
        Csr {
            row_ptr,
            col_idx,
            weights,
        }
    }

    /// `true` if for every edge `(s, t)` the reverse edge `(t, s)` exists.
    pub fn is_symmetric(&self) -> bool {
        self.edges()
            .all(|(s, t)| self.neighbors(t).binary_search(&s).is_ok())
    }

    /// `true` if any vertex has an edge to itself.
    pub fn has_self_loops(&self) -> bool {
        self.edges().any(|(s, t)| s == t)
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree (`|E| / |V|`; 0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Full degree statistics (max, average, standard deviation) as
    /// reported in the paper's Table II.
    pub fn degree_stats(&self) -> DegreeStats {
        DegreeStats::from_degrees((0..self.num_vertices()).map(|v| self.out_degree(v)))
    }
}

/// SplitMix64 hash step, used for deterministic edge weights.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Csr {
        Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
    }

    #[test]
    fn from_edges_builds_sorted_adjacency() {
        let g = Csr::from_edges(4, &[(1, 3), (1, 0), (1, 2), (0, 2)]);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn degrees_and_ranges() {
        let g = triangle();
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.edge_range(1), 2..4);
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.num_edges(), g.num_edges());
    }

    #[test]
    fn transpose_of_symmetric_graph_is_identical() {
        let g = triangle();
        assert!(g.is_symmetric());
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn symmetry_and_self_loop_detection() {
        let asym = Csr::from_edges(3, &[(0, 1)]);
        assert!(!asym.is_symmetric());
        assert!(!asym.has_self_loops());
        let looped = Csr::from_edges(2, &[(0, 0), (0, 1), (1, 0)]);
        assert!(looped.has_self_loops());
    }

    #[test]
    fn hashed_weights_are_symmetric_and_in_range() {
        let g = triangle().with_hashed_weights(16);
        for v in 0..3 {
            let ws = g.edge_weights(v).expect("weighted");
            assert!(ws.iter().all(|&w| (1..=16).contains(&w)));
        }
        // weight(s -> t) == weight(t -> s)
        let w01 = g.edge_weights(0).unwrap()[g.neighbors(0).binary_search(&1).unwrap()];
        let w10 = g.edge_weights(1).unwrap()[g.neighbors(1).binary_search(&0).unwrap()];
        assert_eq!(w01, w10);
    }

    #[test]
    fn transpose_carries_weights() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2)]).with_hashed_weights(8);
        let t = g.transpose();
        assert!(t.is_weighted());
        assert_eq!(g.edge_weights(0).unwrap()[0], t.edge_weights(1).unwrap()[0]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end")]
    fn from_raw_parts_validates_lengths() {
        let _ = Csr::from_raw_parts(vec![0, 2], vec![0], None);
    }

    #[test]
    fn edges_iterator_matches_csr() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 0)));
    }
}
